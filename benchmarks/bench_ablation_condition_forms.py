"""Design-choice ablation: other forms of pruning conditions (paper §4.3).

The paper argues its (v_end, C)-form conditions strictly generalise the
"s-only" form — conditions valid for *any* budget, i.e. exactly our
bounds with ``C_ub = +inf`` (``P_sh ⊆ P''`` with no θ cut-off).  This
bench quantifies that claim: how many of the learned bounds are finite
(usable only thanks to the budget-aware form), and how much pruning the
s-only subset would lose on the Q2 workload.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DATASETS, get_bundle, record_rows
from repro.core import PruningConditionIndex, QHLEngine
from repro.instrument import run_workload

INF = float("inf")


def s_only_subset(pruning: PruningConditionIndex) -> PruningConditionIndex:
    """The §4.3 's-only' restriction: keep only C_ub = +inf bounds."""
    restricted = PruningConditionIndex()
    for (child, v_end), bounds in pruning._conditions.items():
        infinite = {h: ub for h, ub in bounds.items() if ub == INF}
        restricted.add(child, v_end, infinite)
    return restricted


@pytest.mark.parametrize("dataset", DATASETS)
def test_ablation_condition_forms(benchmark, dataset):
    bundle = get_bundle(dataset)
    index = bundle.index
    queries = bundle.q_sets["Q2"].queries

    full_engine = index.qhl_engine()
    s_only_engine = QHLEngine(
        index.tree, index.labels, index.lca, s_only_subset(index.pruning)
    )
    s_only_engine.name = "QHL-sOnly"

    def race():
        return (
            run_workload(full_engine, queries, "Q2"),
            run_workload(s_only_engine, queries, "Q2"),
        )

    full, s_only = benchmark.pedantic(race, rounds=1, iterations=1)

    total = index.pruning.num_bounds()
    finite = sum(
        1
        for bounds in index.pruning._conditions.values()
        for ub in bounds.values()
        if ub != INF
    )
    benchmark.extra_info["finite_bounds"] = finite
    benchmark.extra_info["total_bounds"] = total
    record_rows(
        "ablation_condition_forms.txt",
        f"[{dataset}] {'form':>12} {'bounds':>7} {'hoplinks':>9} "
        f"{'concats':>9}",
        [
            f"[{dataset}] {'(v_end, C)':>12} {total:>7} "
            f"{full.avg_hoplinks:>9.1f} {full.avg_concatenations:>9.1f}",
            f"[{dataset}] {'s-only':>12} {total - finite:>7} "
            f"{s_only.avg_hoplinks:>9.1f} "
            f"{s_only.avg_concatenations:>9.1f}",
        ],
    )
    # Answers must agree; the s-only form may only prune less.
    assert s_only.avg_hoplinks >= full.avg_hoplinks
    assert full.feasible == s_only.feasible == len(queries)
