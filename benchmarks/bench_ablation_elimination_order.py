"""Design-choice ablation: elimination-order heuristic.

Not a paper figure — DESIGN.md calls out the elimination order as the
one free parameter of Algorithm 1.  The paper uses min-degree (as H2H
does); min-fill typically yields a slightly smaller treewidth at a
higher ordering cost.  This bench quantifies the trade on the NY-like
network: index build cost, treewidth/height, label size, and the query
time both indexes deliver for QHL.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import get_bundle, record_rows
from repro.core import QHLIndex
from repro.instrument import run_workload
from repro.workloads import index_queries_from_sets

STRATEGIES = ("min_degree", "min_fill")


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_ablation_elimination_order(benchmark, strategy):
    bundle = get_bundle("NY")
    index_queries = index_queries_from_sets(
        list(bundle.q_sets.values()), 1000, seed=42
    )

    index = benchmark.pedantic(
        QHLIndex.build,
        args=(bundle.network,),
        kwargs={
            "index_queries": index_queries,
            "strategy": strategy,
            "store_paths": False,
            "seed": 42,
        },
        rounds=1,
        iterations=1,
    )

    report = run_workload(
        index.qhl_engine(), bundle.q_sets["Q4"].queries, "Q4"
    )
    stats = index.stats()
    benchmark.extra_info["treewidth"] = stats.treewidth
    benchmark.extra_info["q4_ms"] = round(report.avg_ms, 4)
    record_rows(
        "ablation_elimination_order.txt",
        f"[NY] {'strategy':>11} {'width':>6} {'height':>7} "
        f"{'label KB':>9} {'build s':>8} {'Q4 query':>11}",
        [
            f"[NY] {strategy:>11} {stats.treewidth:>6} "
            f"{stats.treeheight:>7} {stats.label_bytes / 1024:>9.0f} "
            f"{stats.tree_seconds + stats.label_seconds:>8.2f} "
            f"{report.avg_ms:>8.3f} ms"
        ],
    )
    assert report.feasible == report.num_queries
