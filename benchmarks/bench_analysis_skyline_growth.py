"""Mechanism check: skyline-set growth across distance bands.

Not a paper figure — this measures the *explanation* the paper gives
for Figure 6: skyline sets grow with the s-t distance, fastest on dense
networks, which is what makes CSP-2Hop's Cartesian concatenation
collapse on long queries.  Expected shape: avg |P_st| increases
monotonically-ish from Q1 to Q5 on every dataset, with NY/COL well
above BAY.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DATASETS, get_bundle, record_rows
from repro.analysis import skyline_growth_profile


@pytest.mark.parametrize("dataset", DATASETS)
def test_skyline_growth_profile(benchmark, dataset):
    bundle = get_bundle(dataset)

    profiles = benchmark.pedantic(
        skyline_growth_profile,
        args=(bundle.network,),
        kwargs={"d_max": bundle.d_max, "num_sources": 8, "seed": 3},
        rounds=1,
        iterations=1,
    )

    rows = [f"[{dataset}] {p.row()}" for p in profiles]
    record_rows(
        "analysis_skyline_growth.txt",
        f"[{dataset}] {'band':>4}  {'distance range':>22}  {'pairs':>7}  "
        f"{'avg |P|':>8}  {'max |P|':>8}",
        rows,
    )
    benchmark.extra_info["q5_avg"] = round(profiles[-1].avg_size, 2)
    # The mechanism behind Fig. 6: long bands have larger skylines.
    sampled = [p for p in profiles if p.samples > 0]
    assert sampled[-1].avg_size >= sampled[0].avg_size
