"""Approximation knob: index size vs answer quality under skyline
truncation.

The paper keeps its index exact and pays 26-149 GB; `max_skyline` is
this repo's pressure valve for that cost.  Expected shape: tight caps
shrink the label index and introduce small weight errors plus a few
false-infeasible answers on tight budgets; loose caps converge to exact.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import get_bundle, record_rows
from repro.analysis import measure_approximation

CAPS = (2, 4, 8)


def test_approximation_tradeoff(benchmark):
    bundle = get_bundle("NY")
    queries = bundle.q_sets["Q4"].queries[:50]

    reports = benchmark.pedantic(
        measure_approximation,
        args=(bundle.network, queries, CAPS),
        kwargs={"seed": 3},
        rounds=1,
        iterations=1,
    )

    record_rows(
        "approximation_tradeoff.txt",
        f"{'cap':>6}  {'entries':>9}  {'size':>11}  "
        f"{'false-inf':>12} {'avg err':>10}  {'max err':>10}",
        [r.row() for r in reports],
    )

    exact, *truncated = reports
    assert exact.avg_weight_error == 0.0
    # Caps shrink the index monotonically...
    sizes = [r.label_entries for r in truncated]
    assert sizes == sorted(sizes)
    assert all(size < exact.label_entries for size in sizes)
    # ... and looser caps never increase the error.
    errors = [r.avg_weight_error for r in truncated]
    assert errors == sorted(errors, reverse=True)
