"""Directed-graph extension: the same QHL-vs-CSP-2Hop race, one-way
streets enabled (paper §2.3 defers the construction to [20]; the query
advantage should carry over unchanged).
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import record_rows
from repro.datasets import load_dataset
from repro.directed import DirectedQHLIndex, directed_from_undirected
from repro.graph import dijkstra
from repro.instrument import run_workload
from repro.types import CSPQuery

_CACHE: dict[str, tuple] = {}


def directed_bundle():
    cached = _CACHE.get("NY")
    if cached is not None:
        return cached
    base = load_dataset("NY", scale="benchmark").network
    network = directed_from_undirected(base, seed=77, one_way_prob=0.1)
    index = DirectedQHLIndex.build(network, num_index_queries=1500, seed=77)

    # Directed workload: mid-to-long random pairs with feasible budgets
    # (C = 1.5x the directed shortest cost distance).
    rng = random.Random(78)
    queries = []
    while len(queries) < 60:
        s = rng.randrange(network.num_vertices)
        dist = _directed_cost_distances(network, s)
        targets = [
            t for t, d in enumerate(dist)
            if t != s and d != float("inf") and d > 80
        ]
        if not targets:
            continue
        for t in rng.sample(targets, min(4, len(targets))):
            queries.append(CSPQuery(s, t, dist[t] * 1.5))
    _CACHE["NY"] = (network, index, queries[:60])
    return _CACHE["NY"]


def _directed_cost_distances(network, source):
    import heapq

    dist = [float("inf")] * network.num_vertices
    dist[source] = 0
    heap = [(0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for head, _w, c in network.out_neighbors(v):
            nd = d + c
            if nd < dist[head]:
                dist[head] = nd
                heapq.heappush(heap, (nd, head))
    return dist


@pytest.mark.parametrize("engine_name", ["QHL", "CSP-2Hop"])
def test_directed_extension(benchmark, engine_name):
    network, index, queries = directed_bundle()
    engine = (
        index.qhl_engine()
        if engine_name == "QHL"
        else index.csp2hop_engine()
    )

    report = benchmark.pedantic(
        run_workload, args=(engine, queries, "directed"),
        rounds=1, iterations=1,
    )

    benchmark.extra_info["avg_query_ms"] = round(report.avg_ms, 4)
    record_rows(
        "directed_extension.txt",
        f"[NY-directed] {'engine':>10} {'avg query':>12} {'hoplinks':>9} "
        f"{'concats':>9}",
        [
            f"[NY-directed] {engine_name:>10} {report.avg_ms:>9.3f} ms "
            f"{report.avg_hoplinks:>9.1f} {report.avg_concatenations:>9.1f}"
        ],
    )
    assert report.feasible == report.num_queries
