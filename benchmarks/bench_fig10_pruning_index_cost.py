"""Figure 10 — pruning-condition index cost, varying |Q_index|.

Paper: index time (a) and size (b) grow linearly with |Q_index| for
|Q_index| in {50k, 100k, 150k, 200k}; sizes stay within 1% of the label
index; per-|Q_index| costs are proportional to each dataset's label
sizes.

Here: the same sweep at scaled |Q_index| multiples of the benchmark
default.  Expected shape: near-linear time/size growth (sub-linear once
the frequently visited separators saturate — the paper's "bottleneck"
remark in §5.2.2), and pruning size ≪ label size.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    BENCH_QINDEX,
    DATASETS,
    get_bundle,
    record_rows,
)
from repro.core import build_pruning_index
from repro.workloads import index_queries_from_sets

MULTIPLIERS = (0.5, 1.0, 1.5, 2.0)


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("multiplier", MULTIPLIERS)
def test_fig10_pruning_index_cost(benchmark, dataset, multiplier):
    bundle = get_bundle(dataset)
    count = int(BENCH_QINDEX * multiplier)
    queries = index_queries_from_sets(
        list(bundle.q_sets.values()), count, seed=int(multiplier * 100)
    )

    index = benchmark.pedantic(
        build_pruning_index,
        args=(bundle.index.tree, bundle.index.labels, bundle.index.lca,
              queries),
        kwargs={"seed": 1},
        rounds=1,
        iterations=1,
    )

    label_bytes = bundle.index.labels.size_bytes()
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["q_index"] = count
    benchmark.extra_info["conditions"] = index.num_conditions
    benchmark.extra_info["bytes"] = index.size_bytes()
    record_rows(
        "fig10_pruning_cost.txt",
        f"[{dataset}] {'|Qindex|':>9} {'build s':>9} {'size KB':>9} "
        f"{'conds':>7} {'vs labels':>10}",
        [
            f"[{dataset}] {count:>9} {index.build_seconds:>9.3f} "
            f"{index.size_bytes() / 1024:>9.1f} {index.num_conditions:>7} "
            f"{index.size_bytes() / label_bytes:>9.1%}"
        ],
    )
    assert index.num_conditions > 0
    # The paper's headline: the additional index is a small fraction of
    # the labels.
    assert index.size_bytes() < label_bytes
