"""Figure 6 — query time varying the query set Q and the ratio r.

Paper: average query time of COLA, CSP-2Hop and QHL over 1000 queries,
for Q1..Q5 (left column) and r = 0.1..0.9 (right column) on NY, BAY,
COL.  Headline numbers: QHL ~50 µs on NY; QHL beats CSP-2Hop by up to
two orders of magnitude on COL's Q5; COLA is slowest throughout; all
engines are roughly flat in r.

Here: the same sweeps on the stand-in networks.  Expected shape:
``QHL < CSP-2Hop < COLA`` per workload; the QHL/CSP-2Hop gap widens
with the band index and is largest on COL; the r column is flat.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DATASETS, get_bundle, record_rows
from repro.instrument import run_workload

ENGINES = ("QHL", "CSP-2Hop", "COLA")
Q_SETS = ("Q1", "Q2", "Q3", "Q4", "Q5")
RATIOS = (0.1, 0.3, 0.5, 0.7, 0.9)


def engine_of(bundle, engine_name):
    if engine_name == "QHL":
        return bundle.index.qhl_engine()
    if engine_name == "CSP-2Hop":
        return bundle.index.csp2hop_engine()
    if engine_name == "COLA":
        return bundle.cola
    raise AssertionError(engine_name)


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("q_set", Q_SETS)
def test_fig6_varying_q(benchmark, dataset, engine_name, q_set):
    bundle = get_bundle(dataset)
    engine = engine_of(bundle, engine_name)
    queries = bundle.q_sets[q_set].queries

    report = benchmark.pedantic(
        run_workload,
        args=(engine, queries, q_set),
        rounds=1,
        iterations=1,
    )

    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["avg_query_ms"] = round(report.avg_ms, 4)
    record_rows(
        "fig6_varying_q.txt",
        f"[{dataset}] {'set':>4} {'engine':>10} {'avg query':>12}",
        [
            f"[{dataset}] {q_set:>4} {engine_name:>10} "
            f"{report.avg_ms:>9.3f} ms"
        ],
    )
    assert report.feasible == report.num_queries


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("ratio", RATIOS)
def test_fig6_varying_r(benchmark, dataset, engine_name, ratio):
    bundle = get_bundle(dataset)
    engine = engine_of(bundle, engine_name)
    queries = bundle.r_sets[ratio].queries

    report = benchmark.pedantic(
        run_workload,
        args=(engine, queries, f"r={ratio}"),
        rounds=1,
        iterations=1,
    )

    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["avg_query_ms"] = round(report.avg_ms, 4)
    record_rows(
        "fig6_varying_r.txt",
        f"[{dataset}] {'r':>4} {'engine':>10} {'avg query':>12}",
        [
            f"[{dataset}] {ratio:>4} {engine_name:>10} "
            f"{report.avg_ms:>9.3f} ms"
        ],
    )
    assert report.feasible == report.num_queries
