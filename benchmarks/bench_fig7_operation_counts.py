"""Figure 7 — numbers of hoplinks and path concatenations, varying Q.

Paper: per-query averages for CSP-2Hop vs QHL on NY/BAY/COL.  Key
shapes: QHL always uses fewer hoplinks (pruning conditions + smaller
initial separators); hoplink counts are flat in the distance band
(bounded by the treewidth, which ignores metrics); concatenation counts
track the query-time curves and blow up for CSP-2Hop on COL's long
bands.

COLA is omitted, as in the paper (no hoplinks / concatenations).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DATASETS, get_bundle, record_rows
from repro.instrument import run_workload

Q_SETS = ("Q1", "Q2", "Q3", "Q4", "Q5")
ENGINES = ("QHL", "CSP-2Hop")


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("engine_name", ENGINES)
def test_fig7_operation_counts(benchmark, dataset, engine_name):
    bundle = get_bundle(dataset)
    engine = (
        bundle.index.qhl_engine()
        if engine_name == "QHL"
        else bundle.index.csp2hop_engine()
    )

    def sweep():
        return [
            run_workload(engine, bundle.q_sets[name].queries, name)
            for name in Q_SETS
        ]

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for report in reports:
        benchmark.extra_info[f"{report.workload}_hoplinks"] = round(
            report.avg_hoplinks, 1
        )
        benchmark.extra_info[f"{report.workload}_concats"] = round(
            report.avg_concatenations, 1
        )
        rows.append(
            f"[{dataset}] {report.workload:>4} {engine_name:>10} "
            f"{report.avg_hoplinks:>9.1f} {report.avg_concatenations:>12.1f}"
        )
    record_rows(
        "fig7_operation_counts.txt",
        f"[{dataset}] {'set':>4} {'engine':>10} {'hoplinks':>9} "
        f"{'concats':>12}",
        rows,
    )
    assert all(r.avg_hoplinks >= 0 for r in reports)
