"""Figure 8 — ablation study on NY.

Paper: two QHL variants, compared on # path concatenations per query:

* "QHL-w/o Alg. 3" — no pruning conditions (all C_ub = 0); picks the
  cheaper of H(s)/H(t) by T(H) but never prunes.  Costs ~2x more
  concatenations on Q1/Q2; the gap narrows for long bands (larger C
  defeats more C_ub bounds).
* "QHL-w/o Alg. 4" — Cartesian concatenation instead of the two-pointer
  sweep.  Costs dramatically more (the complexity regains a multiplier).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import get_bundle, record_rows
from repro.instrument import run_workload

Q_SETS = ("Q1", "Q2", "Q3", "Q4", "Q5")

VARIANTS = {
    "QHL": dict(use_pruning_conditions=True, use_two_pointer=True),
    "QHL-noPrune": dict(use_pruning_conditions=False, use_two_pointer=True),
    "QHL-cartesian": dict(
        use_pruning_conditions=True, use_two_pointer=False
    ),
}


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_fig8_ablation_concatenations(benchmark, variant):
    bundle = get_bundle("NY")
    engine = bundle.index.qhl_engine(**VARIANTS[variant])
    engine.name = variant

    def sweep():
        return [
            run_workload(engine, bundle.q_sets[name].queries, name)
            for name in Q_SETS
        ]

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for report in reports:
        benchmark.extra_info[f"{report.workload}_concats"] = round(
            report.avg_concatenations, 1
        )
        rows.append(
            f"[NY] {report.workload:>4} {variant:>14} "
            f"{report.avg_concatenations:>12.1f} {report.avg_ms:>9.3f} ms"
        )
    record_rows(
        "fig8_ablation.txt",
        f"[NY] {'set':>4} {'variant':>14} {'concats':>12} {'avg time':>12}",
        rows,
    )
    assert all(r.feasible == r.num_queries for r in reports)
