"""Figure 9 — query time under weakly correlated weights and costs.

Paper: weights become traffic-signal indicators (edges incident to
high-degree "signal" vertices) while costs stay road lengths; query
times for the same Q/r sweeps.  QHL still wins by orders of magnitude.

Here: the :func:`traffic_signal_network` variant (positive-weight
substitution documented in repro.workloads.correlation).  The cost
metric is untouched, so the original Q/R query sets (built from cost
distances) remain valid and are reused verbatim.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DATASETS, get_bundle, record_rows
from repro.baselines import COLAEngine
from repro.core import QHLIndex
from repro.instrument import run_workload
from repro.workloads import index_queries_from_sets, traffic_signal_network

Q_SETS = ("Q1", "Q2", "Q3", "Q4", "Q5")
RATIOS = (0.1, 0.5, 0.9)
ENGINES = ("QHL", "CSP-2Hop", "COLA")

_WEAK: dict[str, tuple] = {}


def weak_bundle(name):
    """The weak-correlation index/engines for a dataset (cached)."""
    cached = _WEAK.get(name)
    if cached is not None:
        return cached
    base = get_bundle(name)
    weak_net, signals = traffic_signal_network(base.network)
    index_queries = index_queries_from_sets(
        list(base.q_sets.values()), 1000, seed=505
    )
    index = QHLIndex.build(
        weak_net, index_queries=index_queries, store_paths=False, seed=606
    )
    cola = COLAEngine(weak_net, num_parts=8, seed=707)
    _WEAK[name] = (base, weak_net, signals, index, cola)
    return _WEAK[name]


def engine_of(index, cola, engine_name):
    if engine_name == "QHL":
        return index.qhl_engine()
    if engine_name == "CSP-2Hop":
        return index.csp2hop_engine()
    return cola


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("engine_name", ENGINES)
def test_fig9_weak_correlation_varying_q(benchmark, dataset, engine_name):
    base, _net, signals, index, cola = weak_bundle(dataset)
    engine = engine_of(index, cola, engine_name)

    def sweep():
        return [
            run_workload(engine, base.q_sets[name].queries, name)
            for name in Q_SETS
        ]

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for report in reports:
        benchmark.extra_info[f"{report.workload}_ms"] = round(
            report.avg_ms, 4
        )
        rows.append(
            f"[{dataset}] {report.workload:>5} {engine_name:>10} "
            f"{report.avg_ms:>9.3f} ms"
        )
    record_rows(
        "fig9_weak_correlation.txt",
        f"[{dataset}] signals={len(signals)} {'set':>5} {'engine':>10} "
        f"{'avg query':>12}",
        rows,
    )
    assert all(r.feasible == r.num_queries for r in reports)


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("engine_name", ENGINES)
def test_fig9_weak_correlation_varying_r(benchmark, dataset, engine_name):
    base, _net, _signals, index, cola = weak_bundle(dataset)
    engine = engine_of(index, cola, engine_name)

    def sweep():
        return [
            run_workload(engine, base.r_sets[r].queries, f"r={r}")
            for r in RATIOS
        ]

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        f"[{dataset}] {report.workload:>5} {engine_name:>10} "
        f"{report.avg_ms:>9.3f} ms"
        for report in reports
    ]
    record_rows(
        "fig9_weak_correlation.txt",
        f"[{dataset}] {'r':>5} {'engine':>10} {'avg query':>12}",
        rows,
    )
    assert all(r.feasible == r.num_queries for r in reports)
