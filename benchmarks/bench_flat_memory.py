"""Memory-sharing smoke test: mmap-loaded flat index vs object graph.

The point of the version-3 flat envelope is not just fast loading — it
is that the label columns live in *file-backed, read-only pages*, so a
fork-based worker pool shares one physical copy across the supervisor
and every worker.  A pickled object graph cannot share: the first
refcount write in a child copies the page under it, so ``N`` workers
hold ``N + 1`` copies of every label tuple.

Each scenario runs in its own subprocess (clean RSS baseline):

* **object** — ``load_index`` (version-2 pickle), then a supervised
  ``execute_batch`` with forked workers;
* **flat** — ``load_flat_index`` (version-3 mmap), same batch through
  the flat engine.

The scenario reports its own peak RSS plus the largest worker peak
(``getrusage`` of SELF and CHILDREN).  ``--check`` asserts the flat
total stays below the object-graph total — the CI memory-sharing gate.

Runnable standalone (``python benchmarks/bench_flat_memory.py
[--check]``); knobs: ``REPRO_BENCH_MEM_QUERIES`` (default 300) and
``REPRO_BENCH_MEM_GRID`` (default 24, the grid side length).
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile

GRID_SIDE = int(os.environ.get("REPRO_BENCH_MEM_GRID", "24"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_MEM_QUERIES", "300"))
WORKERS = 2
SEED = 5

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_TXT = "flat_memory.txt"


def _build_files(tmpdir: str) -> tuple[str, str]:
    """Build one index, save it in both formats; returns both paths."""
    from repro.core import QHLIndex
    from repro.graph import grid_network
    from repro.storage import save_flat_index
    from repro.storage.serialize import save_index

    network = grid_network(GRID_SIDE, GRID_SIDE, seed=SEED)
    index = QHLIndex.build(
        network, num_index_queries=100, store_paths=False, seed=SEED
    )
    obj_path = os.path.join(tmpdir, "index.obj.idx")
    flat_path = os.path.join(tmpdir, "index.qflat")
    save_index(index, obj_path)
    save_flat_index(index, flat_path)
    return obj_path, flat_path


def _scenario(mode: str, path: str) -> None:
    """Child-process entry: load, run a supervised batch, report RSS."""
    if mode == "object":
        from repro.storage.serialize import load_index

        index = load_index(path)
    else:
        from repro.storage import load_flat_index

        index = load_flat_index(path)
    engine = index.qhl_engine()

    import random

    from repro.perf.batch import execute_batch

    rng = random.Random(SEED)
    n = index.network.num_vertices
    queries = [
        (rng.randrange(n), rng.randrange(n), float(10 * GRID_SIDE))
        for _ in range(NUM_QUERIES)
    ]
    report = execute_batch(engine, queries, workers=WORKERS)
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    print(json.dumps({
        "mode": mode,
        "answered": report.answered,
        "failed": report.failed,
        "self_peak_kb": self_kb,
        "worker_peak_kb": child_kb,
        "total_peak_kb": self_kb + child_kb,
    }))


def _run_scenario(mode: str, path: str) -> dict:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    extra = os.pathsep.join([src, REPO_ROOT])
    current = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{extra}{os.pathsep}{current}" if current else extra
    )
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__),
         "--scenario", mode, "--index", path],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run_benchmark() -> dict:
    from benchmarks.conftest import record_rows

    with tempfile.TemporaryDirectory() as tmpdir:
        obj_path, flat_path = _build_files(tmpdir)
        sizes = {
            "object_file_kb": os.path.getsize(obj_path) // 1024,
            "flat_file_kb": os.path.getsize(flat_path) // 1024,
        }
        object_run = _run_scenario("object", obj_path)
        flat_run = _run_scenario("flat", flat_path)

    for run in (object_run, flat_run):
        assert run["answered"] == NUM_QUERIES, run

    result = {
        "benchmark": "flat_memory_sharing",
        "grid": f"{GRID_SIDE}x{GRID_SIDE}",
        "num_queries": NUM_QUERIES,
        "workers": WORKERS,
        **sizes,
        "object": object_run,
        "flat": flat_run,
        "total_savings_kb": (
            object_run["total_peak_kb"] - flat_run["total_peak_kb"]
        ),
    }
    record_rows(
        RESULT_TXT,
        f"{'scenario':>8} {'self':>10} {'worker':>10} {'total':>10}",
        [
            f"{'object':>8} {object_run['self_peak_kb']:>7} KB "
            f"{object_run['worker_peak_kb']:>7} KB "
            f"{object_run['total_peak_kb']:>7} KB",
            f"{'flat':>8} {flat_run['self_peak_kb']:>7} KB "
            f"{flat_run['worker_peak_kb']:>7} KB "
            f"{flat_run['total_peak_kb']:>7} KB",
            f"savings {result['total_savings_kb']} KB "
            f"(files: object {sizes['object_file_kb']} KB, "
            f"flat {sizes['flat_file_kb']} KB)",
        ],
    )
    return result


def check(result: dict) -> None:
    """The CI gate: a mapped index must beat the object graph."""
    assert (
        result["flat"]["total_peak_kb"] < result["object"]["total_peak_kb"]
    ), (
        "supervised-batch peak RSS with the mmap-loaded flat index "
        f"({result['flat']['total_peak_kb']} KB) is not below the "
        f"object-graph baseline ({result['object']['total_peak_kb']} KB)"
    )


def test_flat_batch_rss_below_object_graph():
    check(run_benchmark())


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--scenario", choices=("object", "flat"))
    parser.add_argument("--index")
    parser.add_argument("--check", action="store_true")
    args = parser.parse_args()
    if args.scenario:
        _scenario(args.scenario, args.index)
    else:
        outcome = run_benchmark()
        print(json.dumps(outcome, indent=2))
        if args.check:
            check(outcome)
            print("memory-sharing check passed")
