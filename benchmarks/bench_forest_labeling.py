"""Forest labeling: the paper's §7 future-work trade-off quantified.

Partitioning the network shrinks the index and its build time but
slows queries (overlay search replaces label lookups) — the trade [20]
reports for its forest labeling.  Swept over the number of regions on
the NY-like network.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import get_bundle, record_rows
from repro.forest import ForestQHLIndex
from repro.instrument import run_workload

NUM_PARTS = (4, 8, 16)


@pytest.mark.parametrize("num_parts", NUM_PARTS)
def test_forest_labeling_tradeoff(benchmark, num_parts):
    bundle = get_bundle("NY")
    queries = bundle.q_sets["Q3"].queries[:30]

    forest = benchmark.pedantic(
        ForestQHLIndex,
        args=(bundle.network,),
        kwargs={"num_parts": num_parts, "seed": 5},
        rounds=1,
        iterations=1,
    )

    report = run_workload(forest, queries, "Q3")
    mono_size = (
        bundle.index.labels.size_bytes()
        + bundle.index.pruning.size_bytes()
    )
    benchmark.extra_info["size_kb"] = round(forest.size_bytes() / 1024, 1)
    benchmark.extra_info["q3_ms"] = round(report.avg_ms, 3)
    record_rows(
        "forest_labeling.txt",
        f"[NY] {'parts':>6} {'build s':>8} {'size KB':>8} "
        f"{'vs mono':>8} {'Q3 query':>11}",
        [
            f"[NY] {num_parts:>6} {forest.build_seconds:>8.2f} "
            f"{forest.size_bytes() / 1024:>8.0f} "
            f"{forest.size_bytes() / mono_size:>7.1%} "
            f"{report.avg_ms:>8.3f} ms"
        ],
    )
    assert report.feasible == report.num_queries


def test_forest_vs_monolithic_baseline(benchmark):
    """The monolithic row of the same table, for direct comparison."""
    bundle = get_bundle("NY")
    queries = bundle.q_sets["Q3"].queries[:30]
    engine = bundle.index.qhl_engine()

    report = benchmark.pedantic(
        run_workload, args=(engine, queries, "Q3"), rounds=1, iterations=1
    )

    mono_size = (
        bundle.index.labels.size_bytes()
        + bundle.index.pruning.size_bytes()
    )
    record_rows(
        "forest_labeling.txt",
        f"[NY] {'parts':>6} {'build s':>8} {'size KB':>8} "
        f"{'vs mono':>8} {'Q3 query':>11}",
        [
            f"[NY] {'mono':>6} {'-':>8} {mono_size / 1024:>8.0f} "
            f"{'100.0%':>8} {report.avg_ms:>8.3f} ms"
        ],
    )
    assert report.feasible == report.num_queries
