"""Index-free baselines vs the labeled engines.

Supports the paper's framing (§1, §6.2): "since it is an NP-hard
problem, these index-free solutions are unscalable to large road
networks".  We race the bi-criteria constrained Dijkstra and the
k-shortest-paths search against QHL/CSP-2Hop on a small slice of the Q3
workload (they are far too slow for the full sweep — which is the
point).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import get_bundle, record_rows
from repro.baselines import constrained_dijkstra, ksp_csp, pulse_csp
from repro.instrument import run_workload

SLICE = 15  # queries; index-free engines pay milliseconds each


class DijkstraEngine:
    name = "Dijkstra-CSP"

    def __init__(self, network):
        self._network = network

    def query(self, source, target, budget):
        return constrained_dijkstra(
            self._network, source, target, budget, want_path=False
        )


class KSPEngine:
    name = "KSP-CSP"

    def __init__(self, network):
        self._network = network

    def query(self, source, target, budget):
        return ksp_csp(
            self._network, source, target, budget, max_paths=200_000
        )


class PulseEngine:
    name = "Pulse"

    def __init__(self, network):
        self._network = network

    def query(self, source, target, budget):
        return pulse_csp(
            self._network, source, target, budget, want_path=False
        )


@pytest.mark.parametrize(
    "engine_name", ["QHL", "CSP-2Hop", "Dijkstra-CSP", "Pulse"]
)
def test_index_free_comparison(benchmark, engine_name):
    bundle = get_bundle("NY")
    queries = bundle.q_sets["Q3"].queries[:SLICE]
    if engine_name == "QHL":
        engine = bundle.index.qhl_engine()
    elif engine_name == "CSP-2Hop":
        engine = bundle.index.csp2hop_engine()
    elif engine_name == "Pulse":
        engine = PulseEngine(bundle.network)
    else:
        engine = DijkstraEngine(bundle.network)

    report = benchmark.pedantic(
        run_workload, args=(engine, queries, "Q3"), rounds=1, iterations=1
    )

    benchmark.extra_info["avg_query_ms"] = round(report.avg_ms, 4)
    record_rows(
        "index_free_baselines.txt",
        f"[NY] {'engine':>13} {'avg query':>12}  (Q3 slice of {SLICE})",
        [f"[NY] {engine_name:>13} {report.avg_ms:>9.3f} ms"],
    )
    assert report.feasible == report.num_queries


def test_index_free_answers_agree(benchmark):
    """The slow engines exist to be trusted: cross-check them."""
    bundle = get_bundle("NY")
    queries = bundle.q_sets["Q1"].queries[:8]
    qhl = bundle.index.qhl_engine()
    dijkstra = DijkstraEngine(bundle.network)
    ksp = KSPEngine(bundle.network)

    def check():
        mismatches = 0
        for q in queries:
            want = qhl.query(q.source, q.target, q.budget).pair()
            if dijkstra.query(q.source, q.target, q.budget).pair() != want:
                mismatches += 1
            if ksp.query(q.source, q.target, q.budget).weight != want[0]:
                mismatches += 1
        return mismatches

    mismatches = benchmark.pedantic(check, rounds=1, iterations=1)
    assert mismatches == 0
