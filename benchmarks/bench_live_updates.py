"""Query latency and staleness under rush-hour live updates.

The live-update claim (docs/robustness.md): because repairs run on a
copy-on-write clone and publish by an atomic pointer swap, a stream of
weight deltas must not meaningfully disturb query latency — readers
never wait on a repair.  This benchmark replays a rush hour: a
Zipf-skewed query workload runs through an
:class:`~repro.dynamic.epochs.EpochManager` while delta batches stream
in between queries, and the same workload runs against an update-free
manager as the baseline.

Acceptance target: query **p99 with updates within 2x** of the
update-free baseline.  Per-epoch staleness (journal-append to publish,
on the manager's own clock) is recorded for every published batch.
The numbers land in ``BENCH_live_updates.json`` at the repo root and in
``benchmarks/results/live_updates.txt``.

Runnable standalone (``python benchmarks/bench_live_updates.py``) or
via pytest; knobs: ``REPRO_BENCH_UPDATE_QUERIES`` (default 3000),
``REPRO_BENCH_UPDATE_BATCHES`` (default 10, deltas per batch 4).
"""

from __future__ import annotations

import json
import os
import random
import statistics
import tempfile
import time

from benchmarks.conftest import record_rows
from repro.baselines import skyline_between
from repro.datasets import load_dataset
from repro.dynamic import DynamicQHLIndex, EpochManager, UpdateConfig
from repro.types import CSPQuery

NUM_QUERIES = int(os.environ.get("REPRO_BENCH_UPDATE_QUERIES", "3000"))
NUM_BATCHES = int(os.environ.get("REPRO_BENCH_UPDATE_BATCHES", "10"))
DELTAS_PER_BATCH = 4
NUM_PAIRS = 48
ZIPF_ALPHA = 1.2
TARGET_P99_RATIO = 2.0

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_JSON = os.path.join(REPO_ROOT, "BENCH_live_updates.json")

CONFIG = UpdateConfig(
    audit_on_publish=False, replay_on_start=False, reap_stale=False
)


def zipf_workload(network, seed: int) -> list[CSPQuery]:
    """Zipf-skewed pairs with budgets spanning each pair's cost range."""
    rng = random.Random(seed)
    n = network.num_vertices
    pairs: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    while len(pairs) < NUM_PAIRS:
        s, t = rng.randrange(n), rng.randrange(n)
        if s == t or (s, t) in seen or (t, s) in seen:
            continue
        seen.add((s, t))
        pairs.append((s, t))
    ranges = []
    for s, t in pairs:
        costs = [entry[1] for entry in skyline_between(network, s, t)]
        ranges.append((min(costs), max(costs)))
    weights = [1.0 / (k + 1) ** ZIPF_ALPHA for k in range(NUM_PAIRS)]
    queries = []
    for _ in range(NUM_QUERIES):
        k = rng.choices(range(NUM_PAIRS), weights=weights)[0]
        s, t = pairs[k]
        lo, hi = ranges[k]
        queries.append(CSPQuery(s, t, rng.uniform(lo * 0.9, hi * 1.5)))
    return queries


def build_manager(network) -> EpochManager:
    dyn = DynamicQHLIndex.build(
        network, num_index_queries=400, store_paths=False, seed=11
    )
    journal_dir = tempfile.mkdtemp(prefix="qhl-bench-journal-")
    return EpochManager(dyn, journal_dir, CONFIG)


def delta_stream(network, seed: int) -> list[list[tuple]]:
    """Rush-hour reprices: random segments, absolute new weights."""
    rng = random.Random(seed)
    max_w = max(w for _u, _v, w, _c in network.edges())
    return [
        [
            (
                rng.randrange(network.num_edges),
                float(rng.randint(1, int(max_w) * 2)),
                None,
            )
            for _ in range(DELTAS_PER_BATCH)
        ]
        for _ in range(NUM_BATCHES)
    ]


def timed_queries(manager, queries, batches=None) -> tuple[list, list]:
    """Run the workload; interleave update batches when given.

    Only query time is measured — updates happen *between* queries,
    which is exactly the serving model (the applier is a different
    thread/process; queries never wait on it).  Returns per-query
    latencies and per-epoch ``(epoch, repair_s, staleness_s)`` rows.
    """
    batches = list(batches or [])
    every = max(1, len(queries) // (len(batches) + 1)) if batches else 0
    latencies = []
    epochs = []
    for i, (s, t, c) in enumerate(queries):
        if batches and every and i % every == every - 1:
            report = manager.apply(batches.pop(0))
            record = list(manager.journal.records())[-1]
            epochs.append((
                manager.epoch.id,
                report.seconds,
                manager.epoch.created_ts - record.ts,
            ))
        started = time.perf_counter()
        manager.query(s, t, c)
        latencies.append(time.perf_counter() - started)
    return latencies, epochs


def percentile(latencies: list[float], q: float) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def run_benchmark() -> dict:
    dataset = load_dataset("NY", scale="benchmark")
    network = dataset.network
    queries = zipf_workload(network, seed=42)

    baseline = build_manager(network)
    updated = build_manager(network)
    # Warm both interpreters' hot paths before timing anything.
    timed_queries(baseline, queries[:200])
    timed_queries(updated, queries[:200])

    base_lat, _ = timed_queries(baseline, queries)
    upd_lat, epochs = timed_queries(
        updated, queries, delta_stream(network, seed=7)
    )
    assert updated.backlog() == 0
    assert updated.epoch.id == NUM_BATCHES

    base_p99 = percentile(base_lat, 0.99)
    upd_p99 = percentile(upd_lat, 0.99)
    staleness = [row[2] for row in epochs]
    result = {
        "benchmark": "live_updates_rush_hour",
        "dataset": "NY/benchmark",
        "num_queries": NUM_QUERIES,
        "update_batches": NUM_BATCHES,
        "deltas_per_batch": DELTAS_PER_BATCH,
        "zipf_alpha": ZIPF_ALPHA,
        "baseline_p50_us": round(percentile(base_lat, 0.5) * 1e6, 3),
        "baseline_p99_us": round(base_p99 * 1e6, 3),
        "updated_p50_us": round(percentile(upd_lat, 0.5) * 1e6, 3),
        "updated_p99_us": round(upd_p99 * 1e6, 3),
        "p99_ratio": round(upd_p99 / base_p99, 3),
        "target_p99_ratio": TARGET_P99_RATIO,
        "mean_repair_ms": round(
            statistics.fmean(row[1] for row in epochs) * 1e3, 3
        ),
        "mean_staleness_ms": round(statistics.fmean(staleness) * 1e3, 3),
        "max_staleness_ms": round(max(staleness) * 1e3, 3),
        "epochs": [
            {
                "epoch": epoch,
                "repair_ms": round(repair * 1e3, 3),
                "staleness_ms": round(stale * 1e3, 3),
            }
            for epoch, repair, stale in epochs
        ],
    }
    with open(RESULT_JSON, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    record_rows(
        "live_updates.txt",
        f"{'run':>12} {'p50':>12} {'p99':>12}",
        [
            f"{'baseline':>12} {result['baseline_p50_us']:>9.1f} us "
            f"{result['baseline_p99_us']:>9.1f} us",
            f"{'updates':>12} {result['updated_p50_us']:>9.1f} us "
            f"{result['updated_p99_us']:>9.1f} us",
            f"p99 ratio {result['p99_ratio']:.2f}x "
            f"(target <= {TARGET_P99_RATIO:.0f}x); "
            f"{NUM_BATCHES} epochs, mean repair "
            f"{result['mean_repair_ms']:.0f} ms, mean staleness "
            f"{result['mean_staleness_ms']:.0f} ms",
        ],
    )
    baseline.close()
    updated.close()
    return result


def test_update_churn_keeps_query_p99():
    result = run_benchmark()
    assert result["p99_ratio"] <= TARGET_P99_RATIO, (
        f"query p99 degraded {result['p99_ratio']:.2f}x under live "
        f"updates (target {TARGET_P99_RATIO:.0f}x); see {RESULT_JSON}"
    )
    assert result["max_staleness_ms"] > 0.0


if __name__ == "__main__":
    print(json.dumps(run_benchmark(), indent=2))
