"""Skyline-cache speedup on a Zipf-skewed repeated-pair workload.

Road-network query logs are heavily skewed: a few (s, t) pairs (popular
origin/destination zones) dominate the traffic.  This benchmark draws a
workload whose pair frequencies follow a Zipf law, runs it through the
plain QHL engine and through :class:`~repro.perf.cached_engine.
CachedQHLEngine`, and compares *median* per-query latency — the regime
the cache is built for, where most queries hit a cached frontier and
answer by binary search.

Acceptance target: the cached median is at least **5x** faster.  The
numbers land in ``BENCH_query_cache.json`` at the repo root (and in
``benchmarks/results/query_cache.txt``), so the claim is recorded, not
just asserted.

The same workload also runs through :class:`~repro.core.flat.
FlatQHLEngine` over packed columns — answers are asserted bit-identical
first — and the flat-vs-object per-query latencies are recorded under
the ``flat_vs_object`` key.

Runnable standalone (``python benchmarks/bench_query_cache.py``) or via
pytest; knobs: ``REPRO_BENCH_CACHE_QUERIES`` (default 4000) and
``REPRO_BENCH_CACHE_PAIRS`` (default 64 distinct pairs).
"""

from __future__ import annotations

import json
import os
import random
import statistics
import time

from benchmarks.conftest import record_rows
from repro.baselines import skyline_between
from repro.core import QHLIndex
from repro.datasets import load_dataset
from repro.types import CSPQuery

NUM_QUERIES = int(os.environ.get("REPRO_BENCH_CACHE_QUERIES", "4000"))
NUM_PAIRS = int(os.environ.get("REPRO_BENCH_CACHE_PAIRS", "64"))
ZIPF_ALPHA = 1.2
TARGET_SPEEDUP = 5.0

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_JSON = os.path.join(REPO_ROOT, "BENCH_query_cache.json")


def zipf_workload(
    network, num_pairs: int, num_queries: int, seed: int
) -> list[CSPQuery]:
    """A seed-pinned workload with Zipf-distributed pair popularity.

    Pair ranked ``k`` is drawn with probability proportional to
    ``1 / (k + 1) ** ZIPF_ALPHA``.  Budgets are uniform over each
    pair's true cost range (from its skyline frontier) stretched 1.5x,
    so the workload mixes infeasible, tight, and loose constraints.
    """
    rng = random.Random(seed)
    n = network.num_vertices
    pairs: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    while len(pairs) < num_pairs:
        s, t = rng.randrange(n), rng.randrange(n)
        if s == t or (s, t) in seen or (t, s) in seen:
            continue
        seen.add((s, t))
        pairs.append((s, t))
    ranges = []
    for s, t in pairs:
        costs = [entry[1] for entry in skyline_between(network, s, t)]
        ranges.append((min(costs), max(costs)))
    weights = [1.0 / (k + 1) ** ZIPF_ALPHA for k in range(num_pairs)]
    queries = []
    for _ in range(num_queries):
        k = rng.choices(range(num_pairs), weights=weights)[0]
        s, t = pairs[k]
        lo, hi = ranges[k]
        queries.append(CSPQuery(s, t, rng.uniform(lo * 0.9, hi * 1.5)))
    return queries


def timed_run(engine, queries) -> list[float]:
    """Per-query wall-clock latencies, in seconds."""
    latencies = []
    for s, t, c in queries:
        started = time.perf_counter()
        engine.query(s, t, c)
        latencies.append(time.perf_counter() - started)
    return latencies


def run_benchmark() -> dict:
    dataset = load_dataset("NY", scale="benchmark")
    network = dataset.network
    index = QHLIndex.build(
        network, num_index_queries=400, store_paths=False, seed=11
    )
    queries = zipf_workload(network, NUM_PAIRS, NUM_QUERIES, seed=42)

    uncached = index.qhl_engine()
    cached = index.cached_engine(cache_size=NUM_PAIRS)
    flat = index.flat_engine()
    # Answers must agree before the timing means anything.
    for s, t, c in queries[:200]:
        lhs = uncached.query(s, t, c)
        rhs = cached.query(s, t, c)
        fla = flat.query(s, t, c)
        assert (lhs.feasible, lhs.weight, lhs.cost) == (
            rhs.feasible, rhs.weight, rhs.cost,
        ), (s, t, c)
        assert (lhs.feasible, lhs.weight, lhs.cost) == (
            fla.feasible, fla.weight, fla.cost,
        ), (s, t, c)
    cached.cache.clear()

    # Steady-state warm-up: one full untimed pass per timed engine, so
    # the comparison measures per-query latency, not one-time costs
    # (interpreter warm-up for both; the flat engine additionally
    # builds its lazy per-vertex hub dicts on first touch).  The cache
    # is cleared after, so the cached run still starts cold.
    timed_run(uncached, queries)
    timed_run(flat, queries)
    timed_run(cached, queries[:200])
    cached.cache.clear()
    uncached_lat = timed_run(uncached, queries)
    cached_lat = timed_run(cached, queries)
    flat_lat = timed_run(flat, queries)

    stats = cached.cache.stats()
    median_uncached = statistics.median(uncached_lat)
    median_cached = statistics.median(cached_lat)
    median_flat = statistics.median(flat_lat)
    speedup = median_uncached / median_cached
    result = {
        "benchmark": "query_cache_zipf",
        "dataset": "NY/benchmark",
        "num_queries": NUM_QUERIES,
        "num_pairs": NUM_PAIRS,
        "zipf_alpha": ZIPF_ALPHA,
        "cache_capacity": NUM_PAIRS,
        "median_uncached_us": round(median_uncached * 1e6, 3),
        "median_cached_us": round(median_cached * 1e6, 3),
        "mean_uncached_us": round(
            statistics.fmean(uncached_lat) * 1e6, 3
        ),
        "mean_cached_us": round(statistics.fmean(cached_lat) * 1e6, 3),
        "median_speedup": round(speedup, 2),
        "target_speedup": TARGET_SPEEDUP,
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
        "cache_hit_rate": round(stats.hit_rate, 4),
        # Flat-vs-object: the same workload through FlatQHLEngine over
        # packed columns (bit-identical answers, asserted above).
        "flat_vs_object": {
            "median_object_us": round(median_uncached * 1e6, 3),
            "median_flat_us": round(median_flat * 1e6, 3),
            "mean_object_us": round(
                statistics.fmean(uncached_lat) * 1e6, 3
            ),
            "mean_flat_us": round(statistics.fmean(flat_lat) * 1e6, 3),
            "median_speedup": round(median_uncached / median_flat, 2),
        },
    }
    with open(RESULT_JSON, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    record_rows(
        "query_cache.txt",
        f"{'engine':>10} {'median':>12} {'mean':>12}",
        [
            f"{'QHL':>10} {result['median_uncached_us']:>9.1f} us "
            f"{result['mean_uncached_us']:>9.1f} us",
            f"{'QHL-flat':>10} "
            f"{result['flat_vs_object']['median_flat_us']:>9.1f} us "
            f"{result['flat_vs_object']['mean_flat_us']:>9.1f} us",
            f"{'QHL+cache':>10} {result['median_cached_us']:>9.1f} us "
            f"{result['mean_cached_us']:>9.1f} us",
            f"median speedup {result['median_speedup']:.1f}x "
            f"(hit rate {stats.hit_rate:.1%}); "
            f"flat vs object "
            f"{result['flat_vs_object']['median_speedup']:.2f}x",
        ],
    )
    return result


def test_cache_median_speedup():
    result = run_benchmark()
    assert result["median_speedup"] >= TARGET_SPEEDUP, (
        f"median speedup {result['median_speedup']:.2f}x is below the "
        f"{TARGET_SPEEDUP:.0f}x target; see {RESULT_JSON}"
    )
    assert result["cache_hit_rate"] > 0.9


if __name__ == "__main__":
    print(json.dumps(run_benchmark(), indent=2))
