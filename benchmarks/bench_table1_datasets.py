"""Table 1 — dataset description.

Paper: name, region, |V|, |E|, and the diameter ``d_max`` for NY
(264,346 / 733,846 / 154 km), BAY (321,270 / 800,172 / 320 km) and COL
(435,666 / 1,057,066 / 832 km).

Here: the scaled synthetic stand-ins.  The benchmarked operation is the
double-sweep diameter estimation (the one Table 1 computation that has
a runtime worth measuring); the printed rows are the table itself.
Expected shape: BAY's d_max > NY's despite similar |V| (the ring is
long); COL's d_max is by far the largest (corridors), matching the
paper's 154 < 320 < 832 km ordering.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DATASETS, get_bundle, record_rows
from repro.graph import estimate_diameter


@pytest.mark.parametrize("name", DATASETS)
def test_table1_dataset_description(benchmark, name):
    bundle = get_bundle(name)
    network = bundle.network

    d_max = benchmark(estimate_diameter, network)

    benchmark.extra_info["dataset"] = name
    benchmark.extra_info["V"] = network.num_vertices
    benchmark.extra_info["E"] = network.num_edges
    benchmark.extra_info["d_max"] = d_max
    record_rows(
        "table1.txt",
        f"{'name':>5} {'|V|':>7} {'|E|':>8} {'d_max':>9}",
        [
            f"{name:>5} {network.num_vertices:>7} "
            f"{network.num_edges:>8} {d_max:>9.0f}"
        ],
    )
    assert d_max > 0
