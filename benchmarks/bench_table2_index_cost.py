"""Table 2 — tree and label index costs.

Paper columns: treewidth ω, treeheight η, average η, tree build time,
label build time, label size (NY: 148/330/269/120s/1533s/26.7GB, BAY:
100/238/193/41s/706s/22.6GB, COL: 143/423/276/756s/5419s/149GB).

Expected shape: label time dominates tree time by an order of
magnitude; BAY is by far the cheapest despite its size (small treewidth
and skyline sets); COL costs the most.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DATASETS, get_bundle, record_rows
from repro.hierarchy import build_tree_decomposition
from repro.labeling import build_labels


@pytest.mark.parametrize("name", DATASETS)
def test_table2_tree_build(benchmark, name):
    bundle = get_bundle(name)
    tree = benchmark.pedantic(
        build_tree_decomposition,
        args=(bundle.network,),
        kwargs={"store_paths": False},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["dataset"] = name
    benchmark.extra_info["treewidth"] = tree.treewidth
    benchmark.extra_info["treeheight"] = tree.treeheight
    assert tree.treewidth >= 2


@pytest.mark.parametrize("name", DATASETS)
def test_table2_label_build(benchmark, name):
    bundle = get_bundle(name)
    tree = build_tree_decomposition(bundle.network, store_paths=False)
    labels = benchmark.pedantic(
        build_labels,
        args=(tree,),
        kwargs={"store_paths": False},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["dataset"] = name
    benchmark.extra_info["label_entries"] = labels.num_entries()
    benchmark.extra_info["label_bytes"] = labels.size_bytes()

    record_rows(
        "table2.txt",
        f"{'name':>5} {'w':>5} {'h':>5} {'avg h':>7} {'tree s':>8} "
        f"{'label s':>8} {'label size':>12} {'max |P|':>8}",
        [
            f"{name:>5} {tree.treewidth:>5} {tree.treeheight:>5} "
            f"{tree.average_height:>7.1f} {tree.build_seconds:>8.2f} "
            f"{labels.build_seconds:>8.2f} "
            f"{labels.size_bytes() / 1024:>9.0f} KB "
            f"{labels.max_set_size():>8}"
        ],
    )
    assert labels.num_entries() > 0
