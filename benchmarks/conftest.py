"""Shared infrastructure for the paper-reproduction benchmarks.

Each paper table/figure has one ``bench_*.py`` file.  This conftest
builds (and caches for the session) everything a figure needs per
dataset: the network, its diameter, the full QHL index, the COLA
engine, and the paper's Q1..Q5 / R query sets.

Knobs (environment variables):

* ``REPRO_BENCH_QUERIES``  — queries per set (paper: 1000; default 80).
* ``REPRO_BENCH_QINDEX``   — |Q_index| for pruning conditions
  (paper: 50,000; default 1500).

Results are appended to ``benchmarks/results/*.txt`` so EXPERIMENTS.md
can quote them; the same rows echo to stdout (visible with ``-s`` or in
the benchmark summary's extra_info columns).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.baselines import COLAEngine
from repro.core import QHLIndex
from repro.datasets import load_dataset
from repro.graph import estimate_diameter
from repro.graph.network import RoadNetwork
from repro.workloads import (
    QuerySet,
    generate_distance_sets,
    generate_ratio_sets,
    index_queries_from_sets,
)

BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "80"))
BENCH_QINDEX = int(os.environ.get("REPRO_BENCH_QINDEX", "1500"))
DATASETS = ("NY", "BAY", "COL")

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@dataclass
class Bundle:
    """Everything the benchmarks need for one dataset."""

    name: str
    network: RoadNetwork
    d_max: float
    index: QHLIndex
    cola: COLAEngine
    q_sets: dict[str, QuerySet]
    r_sets: dict[float, QuerySet]


_BUNDLES: dict[str, Bundle] = {}


def get_bundle(name: str) -> Bundle:
    """Build (once per session) the full benchmark bundle for a dataset."""
    bundle = _BUNDLES.get(name)
    if bundle is not None:
        return bundle
    dataset = load_dataset(name, scale="benchmark")
    network = dataset.network
    d_max = estimate_diameter(network)
    q_sets = generate_distance_sets(
        network, size=BENCH_QUERIES, d_max=d_max, seed=101
    )
    r_sets = generate_ratio_sets(q_sets["Q3"], d_max)
    index_queries = index_queries_from_sets(
        list(q_sets.values()), BENCH_QINDEX, seed=202
    )
    index = QHLIndex.build(
        network, index_queries=index_queries, store_paths=False, seed=303
    )
    cola = COLAEngine(network, num_parts=8, seed=404)
    bundle = Bundle(
        name=name,
        network=network,
        d_max=d_max,
        index=index,
        cola=cola,
        q_sets=q_sets,
        r_sets=r_sets,
    )
    _BUNDLES[name] = bundle
    return bundle


@pytest.fixture(params=DATASETS)
def bundle(request) -> Bundle:
    """Parametrised per-dataset bundle fixture."""
    return get_bundle(request.param)


def record_rows(filename: str, header: str, rows: list[str]) -> None:
    """Append a formatted block to ``benchmarks/results/<filename>``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    with open(path, "a") as f:
        f.write(header + "\n")
        for row in rows:
            f.write(row + "\n")
        f.write("\n")
    print(header)
    for row in rows:
        print(row)
