"""Continuous perf-regression gate over pinned seed workloads.

Replays one deterministic workload (seed-pinned pairs and budgets on
the small NY stand-in graph) through each serving configuration — the
plain QHL engine, the skyline-cached engine, the batch executor, and
the CSP-2Hop baseline — and records per-engine p50/p95 latency plus
exact operation counts into ``BENCH_regression.json`` at the repo
root.  ``--check`` compares that measurement against the committed
baseline (``benchmarks/regression_baseline.json``) and exits 1 on
regression, which is what the CI ``perf-smoke`` job runs.

Two kinds of drift are told apart:

* **Operation counts** (hoplinks, concatenations, label lookups,
  feasible answers) are deterministic functions of the pinned seeds,
  so the gate requires an *exact* match — any change means the
  algorithm itself changed and the baseline must be regenerated
  deliberately (``--write-baseline``).
* **Latency** is machine-dependent, so raw times are useless as a
  committed baseline.  Every run times a fixed pure-Python spin loop
  (:func:`calibrate`) and divides the measured percentiles by it; the
  gate compares these *calibration-normalised* numbers with a
  tolerance band (:data:`LATENCY_TOLERANCE`), so a slower CI runner
  shifts both sides equally while a real slowdown in the query path
  moves only the numerator.  Percentiles are min-of-medians across
  repetitions, which squeezes scheduler noise out of the tail.

``--slowdown N`` multiplies the measured latencies by ``N`` before the
comparison — a synthetic regression used to prove the gate actually
trips (see ``tests/perf/test_regression_harness.py``).

``--overhead`` measures the cost of the *inert* flight-recorder hook:
the hot path's ``recorder.enabled`` check plus the skipped bookkeeping
around it (exactly what ``QueryService.query`` executes when no
recorder is installed), interleaved against a bare query loop.  The
budget is :data:`OVERHEAD_BUDGET` (2%).

Runnable standalone (``python benchmarks/regress.py [--check]``); not
collected by the tier-1 pytest run (``testpaths = tests``).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import statistics
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(REPO_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core import QHLIndex  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402
from repro.graph import estimate_diameter  # noqa: E402
from repro.observability.flight import get_flight_recorder  # noqa: E402
from repro.perf.batch import execute_batch  # noqa: E402
from repro.types import CSPQuery  # noqa: E402

RESULT_JSON = os.path.join(REPO_ROOT, "BENCH_regression.json")
BASELINE_JSON = os.path.join(
    REPO_ROOT, "benchmarks", "regression_baseline.json"
)

#: Normalised-latency band: measured/baseline above this fails the gate.
LATENCY_TOLERANCE = 1.6
#: Maximum tolerated cost of the inert flight-recorder hook.
OVERHEAD_BUDGET = 0.02

DATASET = "NY"
SCALE = "small"
WORKLOAD_SEED = 1234
INDEX_SEED = 99
NUM_QUERIES = int(os.environ.get("REPRO_REGRESS_QUERIES", "120"))
REPETITIONS = int(os.environ.get("REPRO_REGRESS_REPS", "5"))
CACHE_SIZE = 64

#: Op-count fields that must match the baseline exactly.
EXACT_FIELDS = (
    "hoplinks", "concatenations", "label_lookups", "feasible",
)


def pinned_workload(network, size: int, seed: int) -> list[CSPQuery]:
    """A seed-pinned mixed workload: same queries on every machine."""
    rng = random.Random(seed)
    d_max = estimate_diameter(network)
    n = network.num_vertices
    queries = []
    while len(queries) < size:
        s, t = rng.randrange(n), rng.randrange(n)
        if s == t:
            continue
        queries.append(CSPQuery(s, t, rng.uniform(0.15, 1.3) * d_max))
    return queries


def calibrate(passes: int = 5, work: int = 200_000) -> float:
    """Best-of-``passes`` time of a fixed pure-Python spin loop.

    The unit latencies are normalised by: dimensionless ratios survive
    being committed to a baseline and checked on a different machine.
    """
    best = float("inf")
    for _ in range(passes):
        started = time.perf_counter()
        acc = 0
        for i in range(work):
            acc += i * i % 7
        best = min(best, time.perf_counter() - started)
    return best


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    rank = (len(sorted_values) - 1) * q / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def _sequential_run(engine, queries) -> tuple[list[float], dict]:
    latencies = []
    ops = {field: 0 for field in EXACT_FIELDS}
    for s, t, c in queries:
        started = time.perf_counter()
        result = engine.query(s, t, c)
        latencies.append(time.perf_counter() - started)
        ops["hoplinks"] += result.stats.hoplinks
        ops["concatenations"] += result.stats.concatenations
        ops["label_lookups"] += result.stats.label_lookups
        ops["feasible"] += int(result.feasible)
    return latencies, ops


def _batch_run(engine, queries) -> tuple[list[float], dict]:
    report = execute_batch(engine, queries)
    latencies = []
    ops = {field: 0 for field in EXACT_FIELDS}
    for result in report.results:
        if result is None:
            continue
        latencies.append(result.stats.seconds)
        ops["hoplinks"] += result.stats.hoplinks
        ops["concatenations"] += result.stats.concatenations
        ops["label_lookups"] += result.stats.label_lookups
        ops["feasible"] += int(result.feasible)
    return latencies, ops


def measure(
    num_queries: int = NUM_QUERIES,
    repetitions: int = REPETITIONS,
) -> dict:
    """One full measurement: every engine over the pinned workload."""
    dataset = load_dataset(DATASET, scale=SCALE)
    network = dataset.network
    index = QHLIndex.build(
        network,
        num_index_queries=400,
        store_paths=False,
        seed=INDEX_SEED,
    )
    queries = pinned_workload(network, num_queries, WORKLOAD_SEED)
    calibration = calibrate()

    cached = index.cached_engine(CACHE_SIZE)
    engines = {
        "qhl": (index.qhl_engine(), _sequential_run),
        "cached": (cached, _sequential_run),
        "csp2hop": (index.csp2hop_engine(), _sequential_run),
        "batch": (index.qhl_engine(), _batch_run),
    }
    out: dict = {
        "benchmark": "perf_regression",
        "dataset": f"{DATASET}/{SCALE}",
        "num_queries": num_queries,
        "repetitions": repetitions,
        "workload_seed": WORKLOAD_SEED,
        "index_seed": INDEX_SEED,
        "calibration_seconds": calibration,
        "engines": {},
    }
    for name, (engine, runner) in engines.items():
        runner(engine, queries[: max(10, num_queries // 10)])  # warm-up
        if name == "cached":
            cached.cache.clear()
        p50s, p95s = [], []
        ops = None
        for _ in range(repetitions):
            latencies, rep_ops = runner(engine, queries)
            latencies.sort()
            p50s.append(_percentile(latencies, 50))
            p95s.append(_percentile(latencies, 95))
            if ops is None:
                ops = rep_ops
            elif name != "cached" and ops != rep_ops:
                raise AssertionError(
                    f"{name}: op counts varied across repetitions "
                    f"({ops} != {rep_ops}) — workload is not pinned"
                )
        # min-of-medians: the least-noisy repetition represents the
        # machine's attainable latency.
        p50, p95 = min(p50s), min(p95s)
        out["engines"][name] = {
            "p50_us": round(p50 * 1e6, 3),
            "p95_us": round(p95 * 1e6, 3),
            "p50_norm": round(p50 / calibration, 6),
            "p95_norm": round(p95 / calibration, 6),
            **ops,
        }
    return out


def check(
    measured: dict,
    baseline: dict,
    tolerance: float = LATENCY_TOLERANCE,
    slowdown: float = 1.0,
) -> list[str]:
    """Compare a measurement to the baseline; returns failure messages.

    ``slowdown`` scales the measured normalised latencies before the
    comparison (synthetic regression injection for gate tests).
    """
    failures: list[str] = []
    base_queries = baseline.get("num_queries")
    got_queries = measured.get("num_queries")
    if base_queries is not None and got_queries != base_queries:
        failures.append(
            f"workload size mismatch: measured {got_queries} queries, "
            f"baseline pinned {base_queries} — exact op counts cannot "
            f"be compared (did REPRO_REGRESS_QUERIES change?)"
        )
        return failures
    for name, base in baseline.get("engines", {}).items():
        got = measured.get("engines", {}).get(name)
        if got is None:
            failures.append(f"{name}: engine missing from measurement")
            continue
        for field in EXACT_FIELDS:
            if got.get(field) != base.get(field):
                failures.append(
                    f"{name}: {field} changed "
                    f"{base.get(field)} -> {got.get(field)} "
                    f"(op counts must match the baseline exactly)"
                )
        for field in ("p50_norm", "p95_norm"):
            base_value = base.get(field)
            if not base_value:
                continue
            got_value = got.get(field, 0.0) * slowdown
            ratio = got_value / base_value
            if ratio > tolerance:
                failures.append(
                    f"{name}: {field} regressed {ratio:.2f}x over "
                    f"baseline ({got_value:.4f} vs {base_value:.4f}, "
                    f"tolerance {tolerance:.2f}x)"
                )
    return failures


def measure_overhead(
    num_queries: int = NUM_QUERIES,
    repetitions: int = 7,
    hook_iterations: int = 100_000,
) -> dict:
    """The relative cost of the inert flight-recorder hook.

    A query takes tens of microseconds and the inert hook — fetch the
    active (null) recorder, check ``enabled``, skip the bookkeeping —
    takes well under one, so *differencing* two full-query timings
    would try to resolve the hook inside the scheduler noise of the
    much larger query time.  Instead the hook is timed directly in a
    tight loop (loop overhead included, which over-counts in the
    hook's disfavour) and expressed as a fraction of the min-of-medians
    query latency on the pinned workload.
    """
    dataset = load_dataset(DATASET, scale=SCALE)
    index = QHLIndex.build(
        dataset.network,
        num_index_queries=400,
        store_paths=False,
        seed=INDEX_SEED,
    )
    engine = index.qhl_engine()
    queries = pinned_workload(dataset.network, num_queries, WORKLOAD_SEED)

    def query_median() -> float:
        latencies = []
        for s, t, c in queries:
            started = time.perf_counter()
            engine.query(s, t, c)
            latencies.append(time.perf_counter() - started)
        return statistics.median(latencies)

    def hook_per_call() -> float:
        sink = False
        started = time.perf_counter()
        for _ in range(hook_iterations):
            recorder = get_flight_recorder()
            if recorder.enabled:  # pragma: no cover - inert here
                sink = True
        elapsed = time.perf_counter() - started
        assert not sink
        return elapsed / hook_iterations

    query_median()  # warm-up
    query_medians = []
    hook_costs = []
    for _ in range(repetitions):
        query_medians.append(query_median())
        hook_costs.append(hook_per_call())
    base = min(query_medians)
    hook = min(hook_costs)
    overhead = hook / base
    return {
        "query_median_us": round(base * 1e6, 3),
        "hook_ns": round(hook * 1e9, 2),
        "overhead": round(overhead, 6),
        "budget": OVERHEAD_BUDGET,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="perf-regression gate over pinned seed workloads"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline; exit 1 on "
        "regression",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help=f"write the measurement as the new baseline "
        f"({os.path.relpath(BASELINE_JSON, REPO_ROOT)})",
    )
    parser.add_argument(
        "--overhead", action="store_true",
        help="measure the inert flight-recorder hook overhead instead "
        f"(budget {OVERHEAD_BUDGET:.0%}); exit 1 if over budget",
    )
    parser.add_argument(
        "--tolerance", type=float, default=LATENCY_TOLERANCE,
        help="latency tolerance band (multiplier over baseline)",
    )
    parser.add_argument(
        "--slowdown", type=float, default=1.0,
        help="multiply measured latencies by this factor before the "
        "check (synthetic regression, proves the gate trips)",
    )
    parser.add_argument(
        "--baseline", default=BASELINE_JSON,
        help="baseline file to check against",
    )
    parser.add_argument(
        "--out", default=RESULT_JSON,
        help="where to write the measurement JSON",
    )
    parser.add_argument("--queries", type=int, default=NUM_QUERIES)
    parser.add_argument("--reps", type=int, default=REPETITIONS)
    args = parser.parse_args(argv)

    if args.overhead:
        result = measure_overhead(num_queries=args.queries)
        print(json.dumps(result, indent=2))
        if result["overhead"] > OVERHEAD_BUDGET:
            print(
                f"FAIL: inert recorder overhead "
                f"{result['overhead']:.2%} exceeds the "
                f"{OVERHEAD_BUDGET:.0%} budget",
                file=sys.stderr,
            )
            return 1
        print(
            f"inert recorder overhead {result['overhead']:.2%} "
            f"within the {OVERHEAD_BUDGET:.0%} budget"
        )
        return 0

    measured = measure(num_queries=args.queries, repetitions=args.reps)
    with open(args.out, "w") as handle:
        json.dump(measured, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.relpath(args.out, os.getcwd())}")
    if args.write_baseline:
        with open(BASELINE_JSON, "w") as handle:
            json.dump(measured, handle, indent=2)
            handle.write("\n")
        print(
            f"wrote baseline "
            f"{os.path.relpath(BASELINE_JSON, os.getcwd())}"
        )
        return 0
    if not args.check:
        return 0
    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except OSError as exc:
        print(f"FAIL: cannot read baseline: {exc}", file=sys.stderr)
        return 1
    failures = check(
        measured, baseline,
        tolerance=args.tolerance, slowdown=args.slowdown,
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"perf gate passed: {len(baseline.get('engines', {}))} engines "
        f"within {args.tolerance:.1f}x of baseline, op counts exact"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
