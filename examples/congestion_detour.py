"""Congestion detours: the paper's first motivating scenario.

"During a traffic jam, drivers may accept some slightly long detours to
experience less congested road segments" — congestion degree is the
weight to minimise, road length is the constrained cost.

We reuse the paper's own simulation of this regime (§5.2.1): vertices
of high degree are "traffic signal" hot-spots, edges touching them are
congested.  A driver asks for the *smoothest* route whose length stays
within a detour allowance over the shortest one.

Run with::

    python examples/congestion_detour.py
"""

from repro import QHLIndex, grid_network, traffic_signal_network
from repro.graph import shortest_distance


def main() -> None:
    city = grid_network(14, 14, seed=11)
    congested, signals = traffic_signal_network(city, top_fraction=0.15)
    print(f"city grid: {city.num_vertices} junctions, "
          f"{len(signals)} congestion hot-spots")

    index = QHLIndex.build(congested, num_index_queries=2000, seed=11)

    source, target = 0, city.num_vertices - 1
    direct = shortest_distance(congested, source, target, metric="cost")
    print(f"shortest length {source} -> {target}: {direct}")

    # Sweep the detour allowance: 0% to 60% longer than the direct route.
    print(f"\n{'allowance':>10}  {'length':>7}  {'congestion':>11}  "
          f"{'hot-spots on route':>19}")
    for pct in (0, 10, 20, 30, 40, 60):
        budget = direct * (1 + pct / 100)
        result = index.query(source, target, budget, want_path=True)
        on_route = sum(1 for vertex in result.path if vertex in signals)
        print(f"{pct:>9}%  {result.cost:>7}  {result.weight:>11}  "
              f"{on_route:>19}")

    print("\nlarger allowances buy smoother routes: congestion "
          "(weight) falls as the length budget grows.")

    # The zero-allowance answer is forced onto a shortest-length path.
    tight = index.query(source, target, direct)
    assert tight.cost == direct


if __name__ == "__main__":
    main()
