"""Engine face-off: QHL against every baseline on one workload.

A miniature of the paper's Figure 6 experiment that runs in seconds:
build one NY-like network, generate a paper-style query set, and race
QHL, its two ablation variants, CSP-2Hop, COLA and the index-free
constrained Dijkstra — verifying along the way that they all return
identical answers.

Run with::

    python examples/engine_faceoff.py
"""

import time

from repro import COLAEngine, QHLIndex, constrained_dijkstra, grid_network
from repro.graph import estimate_diameter
from repro.instrument import run_workload
from repro.workloads import generate_distance_sets, index_queries_from_sets


class DijkstraEngine:
    """Adapter giving the index-free search the engine interface."""

    name = "Dijkstra-CSP"

    def __init__(self, network):
        self._network = network

    def query(self, source, target, budget):
        return constrained_dijkstra(
            self._network, source, target, budget, want_path=False
        )


def main() -> None:
    network = grid_network(16, 16, seed=23)
    d_max = estimate_diameter(network)
    sets = generate_distance_sets(network, size=50, d_max=d_max, seed=23)
    queries = sets["Q4"].queries
    print(f"network: {network.num_vertices} vertices; "
          f"workload: {len(queries)} Q4 queries")

    started = time.perf_counter()
    index = QHLIndex.build(
        network,
        index_queries=index_queries_from_sets(
            list(sets.values()), 2000, seed=23
        ),
        seed=23,
    )
    print(f"index built in {time.perf_counter() - started:.1f}s")
    cola = COLAEngine(network, num_parts=8, seed=23)

    engines = [
        index.qhl_engine(),
        index.qhl_engine(use_pruning_conditions=False),
        index.qhl_engine(use_two_pointer=False),
        index.csp2hop_engine(),
        cola,
        DijkstraEngine(network),
    ]
    labels = [
        "QHL", "QHL w/o pruning", "QHL w/o 2-pointer",
        "CSP-2Hop", "COLA", "Dijkstra-CSP",
    ]

    # All engines must agree before we time anything.
    reference = [engines[0].query(q.source, q.target, q.budget).pair()
                 for q in queries]
    for engine, label in zip(engines[1:], labels[1:]):
        answers = [engine.query(q.source, q.target, q.budget).pair()
                   for q in queries]
        assert answers == reference, f"{label} disagrees!"
    print("all six engines agree on every query\n")

    print(f"{'engine':>18}  {'avg query':>12}  {'hoplinks':>9}  "
          f"{'concats':>9}")
    for engine, label in zip(engines, labels):
        report = run_workload(engine, queries)
        print(f"{label:>18}  {report.avg_ms:>9.3f} ms  "
              f"{report.avg_hoplinks:>9.1f}  "
              f"{report.avg_concatenations:>9.1f}")


if __name__ == "__main__":
    main()
