"""Flight recorder tour: a black box for queries, crash forensics free.

Run with::

    python examples/flight_recorder.py

Builds a small index, then (1) records a mixed workload — fast, slow,
and failing queries — into a bounded flight ring and prints the ring
and its slow/failed side log, (2) dumps the ring to JSON-lines and
loads it back, and (3) runs the same failures through a
``QueryService`` to show the automatic dump a breaker trip leaves
behind.
"""

import glob
import os
import tempfile

from repro import QHLIndex, grid_network
from repro.exceptions import QueryError
from repro.observability.flight import (
    FlightRecorder,
    load_flight,
    use_flight_recorder,
)
from repro.service import FaultInjector, QueryService, ServiceConfig, use_injector


def main() -> None:
    network = grid_network(10, 10, seed=7)
    index = QHLIndex.build(network, num_index_queries=500, seed=7)
    last = network.num_vertices - 1

    # -- 1. Record a mixed workload ---------------------------------
    # The ring keeps the most recent `capacity` queries; anything slow
    # or failed is *also* copied to a side log that never evicts.
    recorder = FlightRecorder(capacity=8, slow_ms=5.0)
    with use_flight_recorder(recorder):
        for offset in range(12):
            result = index.query(offset, last - offset, budget=10_000)
            recorder.record(
                engine="qhl",
                source=offset,
                target=last - offset,
                budget=10_000,
                outcome="ok" if result.feasible else "infeasible",
                seconds=result.stats.seconds,
                stats=result.stats,
            )
        try:
            index.query(0, 10_000, budget=5.0)  # no such vertex
        except QueryError as exc:
            recorder.record(
                engine="qhl", source=0, target=10_000, budget=5.0,
                outcome=type(exc).__name__, seconds=0.0, error=str(exc),
            )

    print(f"recorded {recorder.total} queries, ring holds "
          f"{len(recorder.records())}, dropped {recorder.dropped}")
    for record in recorder.tail(3):
        flags = ("S" if record.slow else "") + ("F" if record.failed else "")
        print(f"  seq {record.seq:>2}  {record.engine:<5} "
              f"{record.source}->{record.target}  {record.outcome:<12} "
              f"{flags}")
    assert recorder.slow_records(), "the failure must be in the side log"

    # -- 2. Dump and reload -----------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "flight.jsonl")
        written = recorder.dump(path, reason="example")
        loaded = load_flight(path)
        print(f"\ndumped {written} records; round trip "
              f"{'ok' if loaded == recorder.records() else 'BROKEN'}")
        assert loaded == recorder.records()

        # -- 3. Automatic forensics from the service ----------------
        # Two injected QHL failures open the breaker; the service dumps
        # its own flight ring the moment the breaker trips.
        service = QueryService(
            index=index,
            config=ServiceConfig(
                flight_dump_dir=tmp, breaker_failure_threshold=2,
            ),
        )
        service.query(0, last, 10_000)  # something in the ring
        injector = FaultInjector()
        injector.fail(
            "engine-query", exc=RuntimeError, times=None,
            match={"engine": "QHL"},
        )
        with use_injector(injector):
            service.query(0, last, 10_000)  # answered by CSP-2Hop
            service.query(0, last, 10_000)  # breaker opens -> dump
        dumps = glob.glob(os.path.join(tmp, "flight-*breaker-open-QHL*"))
        assert dumps, "breaker trip must leave a dump behind"
        print(f"\nbreaker tripped; forensic dump: "
              f"{os.path.basename(dumps[0])}")
        for record in load_flight(dumps[0])[-2:]:
            print(f"  seq {record.seq:>2}  tier {record.engine:<9} "
                  f"{record.outcome}")


if __name__ == "__main__":
    main()
