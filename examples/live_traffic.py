"""Live traffic: incremental index maintenance under metric updates.

A navigation service cannot rebuild a hub-label index every time a road
segment slows down.  `repro.dynamic` repairs the QHL index in place
after an edge-metric change — bit-identical to a fresh build, touching
only the labels the change can reach.

Run with::

    python examples/live_traffic.py
"""

import random
import time

from repro import grid_network
from repro.core import QHLIndex
from repro.dynamic import DynamicQHLIndex
from repro.graph import RoadNetwork


def main() -> None:
    city = grid_network(14, 14, seed=42)
    print(f"city: {city.num_vertices} junctions, {city.num_edges} segments")

    started = time.perf_counter()
    index = DynamicQHLIndex.build(city, num_index_queries=1500, seed=42)
    build_seconds = time.perf_counter() - started
    print(f"initial build: {build_seconds:.2f}s, "
          f"{index.index.labels.num_sets()} label sets")

    source, target = 0, city.num_vertices - 1
    before = index.query(source, target, budget=10_000, want_path=True)
    print(f"\nbefore the jam: weight {before.weight}, cost {before.cost}")

    # A traffic jam hits one segment on the current best route.
    jammed_pair = (before.path[len(before.path) // 2],
                   before.path[len(before.path) // 2 + 1])
    edge_list = list(index.network_edges())
    jam_index = next(
        i for i, (u, v, _w, _c) in enumerate(edge_list)
        if {u, v} == set(jammed_pair)
    )
    print(f"traffic jam on segment {jammed_pair} "
          f"(edge #{jam_index}): travel time x20")

    started = time.perf_counter()
    report = index.update_edge(
        jam_index, weight=edge_list[jam_index][2] * 20
    )
    print(f"\nindex repaired in {report.seconds * 1000:.0f} ms "
          f"(full rebuild took {build_seconds:.2f}s):")
    print(f"  shortcuts recomputed: {report.shortcuts_changed} "
          f"(checked {report.shortcuts_checked})")
    print(f"  labels recomputed:    {report.labels_changed} "
          f"of {index.index.labels.num_sets()}")

    after = index.query(source, target, budget=10_000, want_path=True)
    print(f"\nafter the jam: weight {after.weight}, cost {after.cost}")
    assert after.path != before.path or after.weight != before.weight
    print("the route changed — and it matches a from-scratch rebuild:")

    fresh_net = RoadNetwork.from_edges(
        city.num_vertices, index.network_edges()
    )
    fresh = QHLIndex.build(fresh_net, num_index_queries=1500, seed=42)
    check = fresh.query(source, target, budget=10_000)
    assert check.pair() == after.pair()
    print(f"  fresh build answer: weight {check.weight}, "
          f"cost {check.cost}  ✔")

    # The jam clears.
    index.update_edge(jam_index, weight=edge_list[jam_index][2])
    restored = index.query(source, target, budget=10_000)
    assert restored.pair() == before.pair()
    print("\njam cleared; the original optimum is back.")

    # Sustained updates: average repair cost.
    rng = random.Random(7)
    started = time.perf_counter()
    rounds = 10
    for _ in range(rounds):
        index.update_edge(
            rng.randrange(city.num_edges), weight=rng.randint(1, 40)
        )
    per_update = (time.perf_counter() - started) / rounds
    print(f"sustained updates: {per_update * 1000:.0f} ms each "
          f"({build_seconds / per_update:.0f}x cheaper than rebuilding)")


if __name__ == "__main__":
    main()
