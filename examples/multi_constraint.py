"""Multiple constraints: fastest route under BOTH a toll budget and a
distance budget.

The paper notes CSP-2Hop "can also handle the case where multiple
constraints are imposed on the shortest path"; this example exercises
that mode: minimise travel time subject to a toll budget *and* a
distance budget simultaneously.

Run with::

    python examples/multi_constraint.py
"""

import random

from repro import grid_network
from repro.multicsp import (
    MultiCSPIndex,
    MultiMetricNetwork,
    multi_dijkstra_reference,
)


def main() -> None:
    base = grid_network(9, 9, seed=31)  # weight=time, cost[0]=distance
    rng = random.Random(31)
    # cost[1] = toll: highways (every 4th edge) are expensive.
    tolls = [
        rng.randint(8, 15) if i % 4 == 0 else rng.randint(1, 3)
        for i in range(base.num_edges)
    ]
    network = MultiMetricNetwork.from_network(base, extra_costs=[tolls])
    print(f"network: {network.num_vertices} junctions, "
          f"{network.num_costs} constrained metrics (distance, toll)")

    index = MultiCSPIndex.build(network)
    source, target = 0, network.num_vertices - 1

    unconstrained = index.query(source, target, (10_000, 10_000))
    time0, (dist0, toll0) = unconstrained
    print(f"\nunconstrained optimum: time {time0}, "
          f"distance {dist0}, toll {toll0}")

    print(f"\n{'dist budget':>12}  {'toll budget':>12}  {'time':>6}  "
          f"{'distance':>9}  {'toll':>5}")
    for dist_frac, toll_frac in (
        (2.0, 2.0), (1.2, 2.0), (2.0, 0.8), (1.2, 0.8), (1.05, 0.7),
    ):
        budgets = (dist0 * dist_frac, max(1, toll0 * toll_frac))
        answer = index.query(source, target, budgets)
        if answer is None:
            print(f"{budgets[0]:>12.0f}  {budgets[1]:>12.0f}  "
                  f"{'—':>6}  {'infeasible':>9}")
            continue
        t, (d, toll) = answer
        print(f"{budgets[0]:>12.0f}  {budgets[1]:>12.0f}  {t:>6}  "
              f"{d:>9}  {toll:>5}")

    # Cross-check against the reference search.
    for _ in range(15):
        s, t = rng.randrange(81), rng.randrange(81)
        budgets = (rng.randint(50, 400), rng.randint(10, 120))
        assert index.query(s, t, budgets) == multi_dijkstra_reference(
            network, s, t, budgets
        )
    print("\n15 random two-budget queries cross-checked — all exact.")


if __name__ == "__main__":
    main()
