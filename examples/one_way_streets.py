"""One-way streets: the directed-graph extension.

Real road networks have one-way streets and rush-hour asymmetry: the
drive A→B is not the drive B→A.  The directed index stores two skyline
sets per label pair and answers directed CSP queries exactly.

Run with::

    python examples/one_way_streets.py
"""

from repro import grid_network
from repro.directed import (
    DirectedQHLIndex,
    directed_constrained_dijkstra,
    directed_from_undirected,
)


def main() -> None:
    base = grid_network(10, 10, seed=19)
    city = directed_from_undirected(
        base, seed=19, asymmetry=0.5, one_way_prob=0.2
    )
    print(f"directed city: {city.num_vertices} junctions, "
          f"{city.num_arcs} one-way segments "
          f"(from {base.num_edges} streets)")

    index = DirectedQHLIndex.build(city, num_index_queries=1500, seed=19)

    source, target = 0, city.num_vertices - 1
    out = index.query(source, target, budget=10_000)
    back = index.query(target, source, budget=10_000)
    print(f"\n{source} -> {target}: weight {out.weight}, cost {out.cost}")
    print(f"{target} -> {source}: weight {back.weight}, cost {back.cost}")
    if out.pair() != back.pair():
        print("the two directions genuinely differ — asymmetry at work")

    # Tighten the budget on the outbound trip.
    print(f"\n{'budget':>8}  {'weight':>7}  {'cost':>6}")
    for fraction in (1.0, 0.95, 0.9, 0.85, 0.8):
        budget = out.cost * fraction
        result = index.query(source, target, budget)
        if result.feasible:
            print(f"{budget:>8.0f}  {result.weight:>7}  {result.cost:>6}")
        else:
            print(f"{budget:>8.0f}  infeasible")

    # Cross-check a few answers against the index-free directed search.
    import random

    rng = random.Random(0)
    for _ in range(20):
        s, t = rng.randrange(100), rng.randrange(100)
        budget = rng.randint(50, 800)
        want = directed_constrained_dijkstra(city, s, t, budget).pair()
        assert index.query(s, t, budget).pair() == want
    print("\n20 random directed queries cross-checked against "
          "constrained Dijkstra — all exact.")


if __name__ == "__main__":
    main()
