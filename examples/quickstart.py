"""Quickstart: build a QHL index and answer constrained shortest path
queries.

Run with::

    python examples/quickstart.py

Walks through the full public API surface in ~40 lines: generate a
network, build the index, query it (with and without a budget bite),
retrieve a concrete route, and inspect index statistics.
"""

from repro import QHLIndex, grid_network


def main() -> None:
    # A 12x12 synthetic city grid: each road has a travel time (weight)
    # and a length (cost).
    network = grid_network(12, 12, seed=7)
    print(f"network: {network.num_vertices} junctions, "
          f"{network.num_edges} road segments")

    # Build the full index: tree decomposition, skyline labels, and
    # pruning conditions driven by 2000 sampled queries.
    index = QHLIndex.build(network, num_index_queries=2000, seed=7)
    stats = index.stats()
    print(f"index: treewidth {stats.treewidth}, "
          f"{stats.label_entries} label entries, "
          f"{stats.pruning_conditions} pruning conditions")

    # Query: fastest route from corner to corner with a generous
    # distance budget...
    source, target = 0, network.num_vertices - 1
    generous = index.query(source, target, budget=10_000, want_path=True)
    print(f"\nno real budget:   weight {generous.weight}, "
          f"cost {generous.cost}")

    # ... then tighten the budget and watch the optimum trade time for
    # distance.
    tight = index.query(
        source, target, budget=generous.cost * 0.9, want_path=True
    )
    if tight.feasible:
        print(f"90% cost budget:  weight {tight.weight}, "
              f"cost {tight.cost}")
        print(f"route: {' -> '.join(map(str, tight.path))}")
    else:
        print("90% cost budget:  infeasible")

    # Per-query instrumentation: the counters the paper plots.
    print(f"\nquery stats: {tight.stats.hoplinks} hoplinks, "
          f"{tight.stats.concatenations} concatenations, "
          f"{tight.stats.seconds * 1e6:.0f} us")

    # And the full query plan, narrated.
    engine = index.qhl_engine()
    print("\n--- query plan ---")
    print(engine.explain(source, target, generous.cost * 0.9).render())


if __name__ == "__main__":
    main()
