"""Rush hour, replayed: epoch-versioned live updates under fire.

A navigation service at 8am: weight deltas stream in (congestion
building and clearing) while queries keep arriving.  The
:class:`~repro.dynamic.epochs.EpochManager` journals every batch before
touching anything, repairs a copy-on-write clone while the old epoch
keeps serving, and swaps atomically on success.  This script walks the
whole contract:

1. a burst of delta batches applied under a live query stream,
2. an injected mid-publish crash — rolled back, old epoch serving,
3. journal replay converging the backlog away,
4. a cold restart from the original network replaying the journal to a
   ``pack_labels``-bit-identical index.

Run with::

    python examples/rush_hour_replay.py
"""

import random
import tempfile
import time

from repro import grid_network
from repro.baselines import constrained_dijkstra
from repro.core import QHLIndex
from repro.dynamic import DynamicQHLIndex, EpochManager, UpdateConfig
from repro.exceptions import UpdateFailedError
from repro.graph import RoadNetwork
from repro.service.faults import FaultInjector, use_injector
from repro.storage.compact import pack_labels

CONFIG = UpdateConfig(audit_on_publish=False, replay_on_start=False)


def check_exact(manager, rng, queries=5):
    """Cross-check the serving epoch against ground truth."""
    net = RoadNetwork.from_edges(
        manager.epoch.dyn.index.network.num_vertices,
        manager.epoch.dyn.network_edges(),
    )
    n = net.num_vertices
    for _ in range(queries):
        s, t = rng.randrange(n), rng.randrange(n)
        budget = rng.randint(50, 5000)
        want = constrained_dijkstra(net, s, t, budget, want_path=False)
        got = manager.query(s, t, budget)
        assert got.pair() == want.pair(), (s, t, budget)


def main() -> None:
    city = grid_network(10, 10, seed=42)
    print(f"city: {city.num_vertices} junctions, "
          f"{city.num_edges} segments")

    started = time.perf_counter()
    dyn = DynamicQHLIndex.build(city, num_index_queries=800, seed=42)
    print(f"initial build: {time.perf_counter() - started:.2f}s")

    journal_dir = tempfile.mkdtemp(prefix="rush-hour-journal-")
    manager = EpochManager(dyn, journal_dir, CONFIG)
    rng = random.Random(8)

    # --- 1. the rush-hour burst -----------------------------------------
    print("\nrush hour: 6 delta batches streamed under live queries")
    for batch in range(6):
        deltas = [
            (rng.randrange(city.num_edges), float(rng.randint(1, 60)), None)
            for _ in range(3)
        ]
        report = manager.apply(deltas)
        check_exact(manager, rng)
        print(f"  epoch {manager.epoch.id}: {report.edges_applied} "
              f"segments repriced in {report.seconds * 1000:.0f} ms, "
              f"{report.labels_changed} labels touched")
    assert manager.backlog() == 0

    # --- 2. a crash mid-publish -----------------------------------------
    print("\na publish crashes (injected fault at update-publish):")
    injector = FaultInjector()
    injector.fail("update-publish", exc=RuntimeError, times=1)
    old_epoch = manager.epoch.id
    with use_injector(injector):
        try:
            manager.apply([(3, 250.0, None)])
            raise SystemExit("unreachable: the publish should have failed")
        except UpdateFailedError as exc:
            print(f"  rolled back ({exc.reason}); epoch stays "
                  f"{manager.epoch.id}, backlog {manager.backlog()}")
    assert manager.epoch.id == old_epoch
    check_exact(manager, rng)  # the old epoch still answers, exactly
    print("  queries keep answering from the old epoch ✔")

    # --- 3. replay converges --------------------------------------------
    replayed = manager.replay()
    print(f"\nreplay: {replayed} pending batch(es) published; "
          f"epoch {manager.epoch.id}, backlog {manager.backlog()}")
    assert manager.backlog() == 0
    check_exact(manager, rng)

    # --- 4. cold restart, bit-identical ---------------------------------
    print("\ncold restart: rebuild from the original network, "
          "replay the journal")
    restarted = EpochManager(
        DynamicQHLIndex.build(city, num_index_queries=800, seed=42),
        journal_dir,
        UpdateConfig(audit_on_publish=False),
        base_seq=0,
    )
    assert restarted.epoch.id == manager.epoch.id
    final_edges = restarted.epoch.dyn.network_edges()
    fresh = QHLIndex.build(
        RoadNetwork.from_edges(city.num_vertices, final_edges),
        num_index_queries=800, seed=42,
    )
    assert pack_labels(restarted.epoch.dyn.index.labels) == pack_labels(
        fresh.labels
    ), "replayed index diverged from a fresh build"
    print(f"  epoch {restarted.epoch.id} recovered; pack_labels "
          "bit-identical to a fresh build over the final metrics ✔")

    manager.close()
    restarted.close()


if __name__ == "__main__":
    main()
