"""Self-healing batch execution: a worker dies mid-batch, nobody notices.

Run with::

    python examples/supervised_batch.py

Runs the same 60-query batch twice: once sequentially (ground truth)
and once fanned out over two *supervised* worker processes, with a
tripwire engine that SIGKILLs the first worker to touch a query.  The
supervisor respawns the dead worker and requeues its lost chunk, so the
batch still returns every answer — identical to the sequential run,
zero failure rows — and the incident log shows the death, the requeue,
and the restart.
"""

import os
import signal
import tempfile

from repro import QHLIndex, grid_network
from repro.core.engine import random_index_queries
from repro.perf.batch import execute_batch
from repro.supervise import IncidentLog, use_incident_log


class KillFirstWorkerEngine:
    """The first worker process to run a query SIGKILLs itself (once)."""

    def __init__(self, inner, sentinel):
        self.inner, self.sentinel = inner, sentinel
        self.name = inner.name

    def query(self, source, target, budget, **kwargs):
        try:
            os.close(os.open(
                self.sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            ))
        except FileExistsError:
            pass  # tripwire already fired in some process
        else:
            os.kill(os.getpid(), signal.SIGKILL)  # lights out, mid-chunk
        return self.inner.query(source, target, budget, **kwargs)


def main() -> None:
    network = grid_network(8, 8, seed=11)
    index = QHLIndex.build(network, num_index_queries=300, seed=11)
    queries = [
        (q.source, q.target, 10_000.0)
        for q in random_index_queries(network, 60, seed=5)
    ]
    engine = index.qhl_engine()
    truth = execute_batch(engine, queries).results

    with tempfile.TemporaryDirectory() as tmp:
        rigged = KillFirstWorkerEngine(engine, os.path.join(tmp, "trip"))
        incidents = IncidentLog()
        with use_incident_log(incidents):
            report = execute_batch(
                rigged, queries, workers=2, supervised=True
            )

    assert report.failures == [], report.failures
    assert [r.pair() for r in report.results] == [
        r.pair() for r in truth
    ], "supervised results must match the sequential ground truth"
    print(f"{len(report.results)} queries answered, "
          f"{len(report.failures)} failure rows, despite one SIGKILL")
    kinds = []
    for incident in incidents.records():
        kinds.append(incident.kind)
        if incident.kind in ("death", "requeue", "spawn", "restart"):
            print(f"  {incident.kind:<8} {incident.worker:<4} "
                  f"pid {incident.pid}  {incident.detail}")
    assert {"death", "requeue", "restart"} <= set(kinds)


if __name__ == "__main__":
    main()
