"""Toll-budget routing: the paper's second motivating scenario.

"Under travelers' limited budgets, the fastest route may be infeasible
since it could utilize many highways and bridges with toll charges."

We model a ring of towns around a bay (the BAY-like generator): local
streets are slow but free-ish, the coastal highway and bridges are fast
but expensive.  The weight of each edge is travel time; the cost is its
toll.  Sweeping the toll budget shows the full trade-off curve — each
budget's optimum is one of the skyline paths between the endpoints.

Run with::

    python examples/toll_budget_routing.py
"""

from repro import QHLIndex, ring_network, skyline_between


def main() -> None:
    network = ring_network(
        num_towns=10, town_rows=4, town_cols=4, num_bridges=4, seed=3
    )
    print(f"bay network: {network.num_vertices} junctions, "
          f"{network.num_edges} segments")

    index = QHLIndex.build(network, num_index_queries=1500, seed=3)

    # Opposite sides of the bay: town 0 and town 5.
    source = 0
    target = 5 * 16  # first junction of town 5

    # The exact trade-off curve (ground truth by skyline Dijkstra).
    skyline = skyline_between(network, source, target)
    print(f"\n{len(skyline)} Pareto-optimal routes between "
          f"{source} and {target}:")
    print(f"{'travel time':>12}  {'toll':>6}")
    for weight, cost, _prov in skyline:
        print(f"{weight:>12}  {cost:>6}")

    # Sweep the budget across the curve: QHL returns each skyline point
    # exactly when the budget crosses its toll.
    min_toll = skyline[0][1]
    max_toll = skyline[-1][1]
    print(f"\n{'budget':>8}  {'travel time':>12}  {'toll paid':>10}")
    steps = 8
    for i in range(steps + 1):
        budget = min_toll + (max_toll - min_toll) * i / steps
        result = index.query(source, target, budget)
        print(f"{budget:>8.0f}  {result.weight:>12}  {result.cost:>10}")

    # Sanity: with the largest budget the answer is the fastest route.
    fastest = index.query(source, target, budget=max_toll)
    assert fastest.weight == skyline[-1][0]
    print("\nwith the full budget, the fastest route wins — "
          "as the skyline predicts.")


if __name__ == "__main__":
    main()
