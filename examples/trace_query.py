"""Observability tour: trace one query, collect metrics over many.

Run with::

    python examples/trace_query.py

Builds a small index, then (1) captures the span trace of a single
query and prints it annotated with the paper sections each phase
implements, and (2) runs a batch of queries under a live metrics
registry and prints the resulting latency histograms three ways:
terminal table, JSON-lines, and Prometheus text exposition.
"""

from repro import (
    MetricsRegistry,
    QHLIndex,
    SpanTracer,
    grid_network,
    use_registry,
    use_tracer,
)
from repro.core.explain import explain_trace
from repro.observability import render_table, to_jsonl, to_prometheus


def main() -> None:
    network = grid_network(10, 10, seed=7)
    index = QHLIndex.build(network, num_index_queries=500, seed=7)
    source, target = 0, network.num_vertices - 1

    # -- 1. Trace a single query ------------------------------------
    # A tracer records one span per pipeline phase of Algorithm 3:
    # LCA lookup, separator initialisation (§3.2), pruning checks
    # (§3.3), hoplink selection, and per-hoplink concatenation (§3.4).
    tracer = SpanTracer()
    with use_tracer(tracer):
        result = index.query(source, target, budget=10_000)
    print(f"answer: weight {result.weight}, cost {result.cost}\n")
    print(explain_trace(tracer.last()))

    # -- 2. Collect metrics over a batch ----------------------------
    # A registry aggregates: end-to-end and per-phase latency
    # histograms (p50/p90/p95/p99), plus the paper's work counters.
    registry = MetricsRegistry()
    with use_registry(registry):
        for offset in range(1, 30):
            index.query(offset, network.num_vertices - 1 - offset,
                        budget=10_000)

    print("\n--- metrics table ---")
    print(render_table(registry))

    print("\n--- JSON-lines (first two records) ---")
    for line in to_jsonl(registry).splitlines()[:2]:
        print(line)

    print("\n--- Prometheus exposition (excerpt) ---")
    for line in to_prometheus(registry).splitlines()[:12]:
        print(line)


if __name__ == "__main__":
    main()
