"""Legacy shim: lets `pip install -e .` work without the `wheel` package
(this offline environment ships setuptools 65 but no wheel)."""

from setuptools import setup

setup()
