"""QHL: exact constrained shortest path search on road networks.

A full Python reproduction of *"QHL: A Fast Algorithm for Exact
Constrained Shortest Path Search on Road Networks"* (SIGMOD 2023):
the QHL algorithm, the CSP-2Hop index it extends, the COLA-like and
index-free baselines it is compared against, and the paper's complete
experimental workloads.

Quickstart
----------
>>> from repro import QHLIndex, grid_network
>>> network = grid_network(8, 8, seed=1)
>>> index = QHLIndex.build(network, num_index_queries=200, seed=1)
>>> result = index.query(0, 63, budget=250, want_path=True)
>>> result.feasible
True
"""

from repro.baselines import (
    COLAEngine,
    CSP2HopEngine,
    constrained_dijkstra,
    ksp_csp,
    skyline_between,
)
from repro.core import QHLEngine, QHLIndex
from repro.datasets import load_dataset
from repro.directed import (
    DirectedQHLIndex,
    DirectedRoadNetwork,
    directed_from_undirected,
)
from repro.dynamic import DynamicQHLIndex
from repro.forest import ForestQHLIndex
from repro.multicsp import MultiCSPIndex, MultiMetricNetwork
from repro.exceptions import (
    AuditError,
    BuildBudgetExceededError,
    DeadlineExceededError,
    DisconnectedGraphError,
    GraphFormatError,
    IndexBuildError,
    InfeasibleQueryError,
    InvalidGraphError,
    QueryError,
    ReproError,
    SerializationError,
    ServiceUnavailableError,
    WorkerCrashError,
)
from repro.graph import (
    RoadNetwork,
    dense_core_network,
    estimate_diameter,
    grid_network,
    random_connected_network,
    random_geometric_network,
    read_csp_text,
    read_dimacs_pair,
    ring_network,
    write_csp_text,
    write_dimacs_pair,
)
from repro.observability import (
    FlightRecorder,
    MetricsRegistry,
    SpanTracer,
    use_flight_recorder,
    use_registry,
    use_tracer,
)
from repro.service import (
    Deadline,
    FaultInjector,
    QueryService,
    ServiceConfig,
    use_injector,
)
from repro.perf import (
    BatchReport,
    CachedQHLEngine,
    SkylineCache,
    execute_batch,
)
from repro.resilience import (
    LENIENT,
    STRICT,
    AuditReport,
    BuildBudget,
    IngestReport,
    ParsePolicy,
    audit_index,
)
from repro.storage import load_index, load_index_with_retry, save_index
from repro.types import CSPQuery, QueryResult, QueryStats
from repro.workloads import (
    generate_distance_sets,
    generate_ratio_sets,
    traffic_signal_network,
)

__version__ = "1.0.0"

__all__ = [
    "AuditError",
    "AuditReport",
    "BatchReport",
    "BuildBudget",
    "BuildBudgetExceededError",
    "COLAEngine",
    "CSP2HopEngine",
    "CachedQHLEngine",
    "CSPQuery",
    "Deadline",
    "DeadlineExceededError",
    "DirectedQHLIndex",
    "DirectedRoadNetwork",
    "DisconnectedGraphError",
    "DynamicQHLIndex",
    "FaultInjector",
    "FlightRecorder",
    "ForestQHLIndex",
    "GraphFormatError",
    "IndexBuildError",
    "InfeasibleQueryError",
    "IngestReport",
    "InvalidGraphError",
    "LENIENT",
    "MetricsRegistry",
    "MultiCSPIndex",
    "MultiMetricNetwork",
    "ParsePolicy",
    "QHLEngine",
    "QHLIndex",
    "QueryError",
    "QueryResult",
    "QueryService",
    "QueryStats",
    "ReproError",
    "RoadNetwork",
    "SerializationError",
    "ServiceConfig",
    "STRICT",
    "ServiceUnavailableError",
    "SkylineCache",
    "SpanTracer",
    "WorkerCrashError",
    "audit_index",
    "constrained_dijkstra",
    "dense_core_network",
    "directed_from_undirected",
    "estimate_diameter",
    "execute_batch",
    "generate_distance_sets",
    "generate_ratio_sets",
    "grid_network",
    "ksp_csp",
    "load_dataset",
    "load_index",
    "load_index_with_retry",
    "random_connected_network",
    "random_geometric_network",
    "read_csp_text",
    "read_dimacs_pair",
    "ring_network",
    "save_index",
    "skyline_between",
    "traffic_signal_network",
    "use_flight_recorder",
    "use_injector",
    "use_registry",
    "use_tracer",
    "write_csp_text",
    "write_dimacs_pair",
]
