"""Analysis tooling: skyline-growth profiling (the mechanism behind the
paper's Figure 6 trends) and approximation-quality measurement for
truncated indexes."""

from repro.analysis.approximation import (
    ApproximationReport,
    measure_approximation,
)
from repro.analysis.skylines import (
    BandProfile,
    label_depth_profile,
    skyline_growth_profile,
)

__all__ = [
    "ApproximationReport",
    "BandProfile",
    "label_depth_profile",
    "measure_approximation",
    "skyline_growth_profile",
]
