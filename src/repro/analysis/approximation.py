"""Approximation-quality measurement for truncated indexes.

The index builders accept ``max_skyline``, a cap on skyline-set sizes
(`repro.skyline.set_ops.truncate`), trading exactness for bounded index
size — the knob one would reach for on paper-scale networks whose sets
grow into the thousands.  A truncated index stays *sound* (every answer
is a real path within budget) but can be *incomplete*: answers may be
heavier than the optimum, and tight-budget queries may be misreported
as infeasible.

This module quantifies both failure modes against the exact index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.engine import QHLIndex
from repro.graph.network import RoadNetwork
from repro.types import CSPQuery


@dataclass
class ApproximationReport:
    """Quality of one truncated index over one query set."""

    max_skyline: int | None
    label_entries: int
    label_bytes: int
    queries: int
    answered: int
    false_infeasible: int
    avg_weight_error: float
    max_weight_error: float

    def row(self) -> str:
        cap = "exact" if self.max_skyline is None else str(self.max_skyline)
        return (
            f"{cap:>6}  {self.label_entries:>9}  "
            f"{self.label_bytes / 1024:>8.0f} KB  "
            f"{self.false_infeasible:>6}/{self.queries:<5} "
            f"{self.avg_weight_error:>9.4%}  {self.max_weight_error:>9.4%}"
        )


def measure_approximation(
    network: RoadNetwork,
    queries: Sequence[CSPQuery],
    caps: Sequence[int],
    index_queries: Sequence[CSPQuery] | None = None,
    seed: int = 0,
) -> list[ApproximationReport]:
    """Build one exact and one index per cap; measure errors.

    Returns one report per entry of ``caps`` plus a leading exact row
    (zero error by construction, as a sanity anchor).
    """
    exact = QHLIndex.build(
        network,
        index_queries=index_queries,
        store_paths=False,
        seed=seed,
    )
    truth = [
        exact.query(q.source, q.target, q.budget) for q in queries
    ]

    reports = [
        ApproximationReport(
            max_skyline=None,
            label_entries=exact.labels.num_entries(),
            label_bytes=exact.labels.size_bytes(),
            queries=len(queries),
            answered=sum(1 for r in truth if r.feasible),
            false_infeasible=0,
            avg_weight_error=0.0,
            max_weight_error=0.0,
        )
    ]

    for cap in caps:
        index = QHLIndex.build(
            network,
            index_queries=index_queries,
            store_paths=False,
            max_skyline=cap,
            seed=seed,
        )
        false_infeasible = 0
        errors = []
        for query, want in zip(queries, truth, strict=True):
            got = index.query(query.source, query.target, query.budget)
            if want.feasible and not got.feasible:
                false_infeasible += 1
            elif want.feasible:
                # Soundness: never better than the optimum, never over
                # budget.
                assert got.weight >= want.weight
                assert got.cost <= query.budget
                errors.append((got.weight - want.weight) / want.weight)
        reports.append(
            ApproximationReport(
                max_skyline=cap,
                label_entries=index.labels.num_entries(),
                label_bytes=index.labels.size_bytes(),
                queries=len(queries),
                answered=len(errors),
                false_infeasible=false_infeasible,
                avg_weight_error=(
                    sum(errors) / len(errors) if errors else 0.0
                ),
                max_weight_error=max(errors, default=0.0),
            )
        )
    return reports
