"""Skyline-growth analysis.

The paper's Figure 6 explanation rests on an empirical claim: "a long
distance between s and t indicates that there are many path choices
between s and t, [so] the size of the skyline path set … increases
quickly".  This module measures that relationship directly, per
distance band, so the claim can be checked on any network — and so the
reader can see *why* CSP-2Hop's Cartesian cost explodes on dense
networks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.baselines.sky_dijkstra import skyline_search
from repro.graph.algorithms import dijkstra, estimate_diameter
from repro.graph.network import RoadNetwork
from repro.workloads.queries import distance_band


@dataclass
class BandProfile:
    """Skyline-set statistics for one distance band."""

    band: str
    low: float
    high: float
    samples: int
    avg_size: float
    max_size: int

    def row(self) -> str:
        return (
            f"{self.band:>4}  [{self.low:>8.1f}, {self.high:>8.1f}]  "
            f"{self.samples:>7}  {self.avg_size:>8.2f}  {self.max_size:>8}"
        )


def skyline_growth_profile(
    network: RoadNetwork,
    d_max: float | None = None,
    num_sources: int = 12,
    seed: int = 0,
) -> list[BandProfile]:
    """Average/maximum skyline-set sizes per paper distance band.

    Runs full skyline searches from sampled sources and buckets every
    reached vertex by its shortest cost distance into the Q1..Q5 bands.
    """
    if d_max is None:
        d_max = estimate_diameter(network)
    rng = random.Random(seed)
    n = network.num_vertices
    bands = [distance_band(i, d_max) for i in range(1, 6)]
    totals = [0] * 5
    counts = [0] * 5
    maxima = [0] * 5

    for _ in range(num_sources):
        source = rng.randrange(n)
        dist = dijkstra(network, source, metric="cost")
        frontiers = skyline_search(network, source)
        for target in range(n):
            if target == source or dist[target] == float("inf"):
                continue
            for b, (low, high) in enumerate(bands):
                if low <= dist[target] <= high:
                    size = len(frontiers[target])
                    totals[b] += size
                    counts[b] += 1
                    if size > maxima[b]:
                        maxima[b] = size
                    break

    return [
        BandProfile(
            band=f"Q{i + 1}",
            low=bands[i][0],
            high=bands[i][1],
            samples=counts[i],
            avg_size=totals[i] / counts[i] if counts[i] else 0.0,
            max_size=maxima[i],
        )
        for i in range(5)
    ]


def label_depth_profile(labels, tree) -> dict[int, tuple[int, float]]:
    """Per tree-depth label statistics: (num sets, avg set size).

    Shows where the index's bytes live — the deep, wide parts of the
    hierarchy, which is why the paper's Table 2 label sizes track the
    average treeheight.
    """
    sums: dict[int, int] = {}
    counts: dict[int, int] = {}
    for v, _u, entries in labels.items():
        depth = tree.depth[v]
        sums[depth] = sums.get(depth, 0) + len(entries)
        counts[depth] = counts.get(depth, 0) + 1
    return {
        depth: (counts[depth], sums[depth] / counts[depth])
        for depth in sorted(counts)
    }
