"""Baseline CSP algorithms: the CSP-2Hop state of the art, the COLA-like
partition index, and index-free exact searches."""

from repro.baselines.cola import COLAEngine, partition_network
from repro.baselines.csp2hop import CSP2HopEngine
from repro.baselines.dijkstra_csp import (
    constrained_dijkstra,
    multi_adjacency,
    multi_constrained_dijkstra,
)
from repro.baselines.kpath import ksp_csp, yen_paths
from repro.baselines.overlay import overlay_csp_search
from repro.baselines.pulse import pulse_csp
from repro.baselines.sky_dijkstra import (
    SkyDijkstraEngine,
    sky_dijkstra_csp,
    skyline_between,
    skyline_pairs_bruteforce,
    skyline_search,
)

__all__ = [
    "COLAEngine",
    "CSP2HopEngine",
    "SkyDijkstraEngine",
    "constrained_dijkstra",
    "ksp_csp",
    "multi_adjacency",
    "multi_constrained_dijkstra",
    "overlay_csp_search",
    "partition_network",
    "pulse_csp",
    "sky_dijkstra_csp",
    "skyline_between",
    "skyline_pairs_bruteforce",
    "skyline_search",
    "yen_paths",
]
