"""A COLA-like partition/overlay index for exact CSP (paper's comparator
[31], run with approximation ratio alpha = 1, i.e. exact).

COLA partitions the road network, indexes selected paths between boundary
vertices, and combines them with on-the-fly searches inside the source
and target partitions.  We reproduce that architecture exactly (with the
alpha = 1 setting the paper uses):

* **Partitioning** — multi-source BFS growth from spread-out seeds.
* **Overlay index** — for every partition, the exact skyline sets between
  each pair of its boundary vertices, restricted to intra-partition paths.
* **Query** — skyline-search ``s`` (and ``t``) to its partition's boundary
  on the fly, then run a constrained bi-criteria search over the overlay
  (boundary skyline edges + original cross-partition edges).

Correctness: any s-t path splits at boundary crossings into maximal
intra-partition segments; each segment is dominated by an entry of the
corresponding boundary skyline set, so the overlay preserves the exact
optimum.  Queries are exact but markedly slower than hub labels — the
relationship the paper's Figure 6 shows.
"""

from __future__ import annotations

import random
import time
from typing import TYPE_CHECKING

from repro.exceptions import IndexBuildError
from repro.graph.network import RoadNetwork
from repro.baselines.overlay import overlay_csp_search
from repro.baselines.sky_dijkstra import skyline_search
from repro.skyline.set_ops import SkylineSet
from repro.types import CSPQuery, QueryResult, QueryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.deadline import Deadline


def partition_network(
    network: RoadNetwork, num_parts: int, seed: int = 0
) -> list[int]:
    """Assign each vertex to one of ``num_parts`` parts.

    Seeds are spread by farthest-point BFS sampling; parts then grow by
    synchronised BFS, which yields compact, balanced blobs on road-like
    graphs (the regime COLA's partitioning targets).
    """
    n = network.num_vertices
    if num_parts < 1:
        raise IndexBuildError("need at least one partition")
    num_parts = min(num_parts, n)
    rng = random.Random(seed)

    seeds = [rng.randrange(n)]
    # Farthest-point sampling on hop distance.
    while len(seeds) < num_parts:
        dist = [-1] * n
        frontier = list(seeds)
        for v in frontier:
            dist[v] = 0
        while frontier:
            nxt = []
            for v in frontier:
                for nbr, _w, _c in network.neighbors(v):
                    if dist[nbr] < 0:
                        dist[nbr] = dist[v] + 1
                        nxt.append(nbr)
            frontier = nxt
        far = max(range(n), key=lambda v: dist[v])
        if dist[far] <= 0:
            far = rng.randrange(n)
        seeds.append(far)

    part = [-1] * n
    frontier = []
    for idx, v in enumerate(seeds):
        if part[v] < 0:
            part[v] = idx
            frontier.append(v)
    while frontier:
        nxt = []
        for v in frontier:
            for nbr, _w, _c in network.neighbors(v):
                if part[nbr] < 0:
                    part[nbr] = part[v]
                    nxt.append(nbr)
        frontier = nxt
    # Connected network ⇒ everything assigned.
    if any(p < 0 for p in part):
        raise IndexBuildError("partition growth left unassigned vertices")
    return part


class COLAEngine:
    """Partition/overlay exact CSP engine (COLA with alpha = 1)."""

    name = "COLA"

    def __init__(self, network: RoadNetwork, num_parts: int = 8, seed: int = 0):
        started = time.perf_counter()
        self._network = network
        self._part = partition_network(network, num_parts, seed)
        n = network.num_vertices

        # Boundary vertices: endpoints of cross-partition edges.
        boundary: set[int] = set()
        cross_edges: list[tuple[int, int, float, float]] = []
        for u, v, w, c in network.edges():
            if self._part[u] != self._part[v]:
                boundary.add(u)
                boundary.add(v)
                cross_edges.append((u, v, w, c))
        self._boundary = boundary
        self._boundary_of: dict[int, list[int]] = {}
        for v in sorted(boundary):
            self._boundary_of.setdefault(self._part[v], []).append(v)

        # Overlay adjacency: vertex -> list of (vertex, skyline entries).
        # Intra-partition boundary-to-boundary skylines + cross edges.
        overlay: dict[int, list[tuple[int, SkylineSet]]] = {
            v: [] for v in boundary
        }
        for pid, members in self._boundary_of.items():
            for b in members:
                frontiers = self._intra_search(b, pid)
                for other in members:
                    if other == b:
                        continue
                    entries = frontiers[other]
                    if entries:
                        overlay[b].append((other, entries))
        for u, v, w, c in cross_edges:
            overlay[u].append((v, [(w, c, None)]))
            overlay[v].append((u, [(w, c, None)]))
        self._overlay = overlay
        self.build_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    def _intra_search(
        self,
        source: int,
        pid: int,
        stats: QueryStats | None = None,
        deadline: "Deadline | None" = None,
    ) -> list[SkylineSet]:
        """Skyline sets from ``source`` using only partition ``pid``."""
        part = self._part
        return skyline_search(
            self._network, source, allowed=lambda v: part[v] == pid,
            stats=stats, deadline=deadline,
        )

    # ------------------------------------------------------------------
    def query(
        self,
        source: int,
        target: int,
        budget: float,
        deadline: "Deadline | None" = None,
    ) -> QueryResult:
        """Answer one CSP query exactly over the partition overlay."""
        query = CSPQuery(source, target, budget).validated(
            self._network.num_vertices
        )
        stats = QueryStats()
        started = time.perf_counter()

        if source == target:
            return QueryResult(query, weight=0, cost=0, stats=stats)

        best: tuple[float, float] | None = None
        ps, pt = self._part[source], self._part[target]

        # Paths that never leave the shared partition.
        if ps == pt:
            frontiers = self._intra_search(
                source, ps, deadline=deadline
            )
            for w, c, _prov in frontiers[target]:
                if deadline is not None:
                    deadline.check(stats)
                if c <= budget and (best is None or (w, c) < best):
                    best = (w, c)

        # Paths through the overlay.
        s_front = self._intra_search(source, ps, deadline=deadline)
        t_front = self._intra_search(target, pt, deadline=deadline)
        s_links = [
            (b, s_front[b]) for b in self._boundary_of.get(ps, [])
            if s_front[b]
        ]
        t_links = {
            b: t_front[b] for b in self._boundary_of.get(pt, [])
            if t_front[b]
        }
        if source in self._boundary:
            s_links.append((source, [(0, 0, None)]))
        if target in self._boundary:
            t_links[target] = [(0, 0, None)]

        if deadline is not None:
            deadline.check(stats)
        overlay_best = overlay_csp_search(
            self._overlay, s_links, t_links, budget, stats
        )
        if overlay_best is not None and (best is None or overlay_best < best):
            best = overlay_best

        stats.seconds = time.perf_counter() - started
        if best is None:
            return QueryResult(query, stats=stats)
        return QueryResult(
            query, weight=best[0], cost=best[1], stats=stats
        )

    # ------------------------------------------------------------------
    def index_entries(self) -> int:
        """Number of skyline entries stored in the overlay index."""
        return sum(
            len(entries)
            for edges in self._overlay.values()
            for _v, entries in edges
        )
