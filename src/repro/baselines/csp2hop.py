"""The CSP-2Hop query algorithm (paper Algorithm 2) — the best-known
prior solution QHL is measured against.

Uses exactly the same tree decomposition and labels as QHL.  The
difference is all at query time: CSP-2Hop takes the whole LCA bag
``X(l)`` as hoplinks and performs the full Cartesian concatenation
``P_sh × P_ht`` per hoplink (with the budget only used as a filter),
costing ``O(|X(l)| · |P_sh| · |P_ht|)``.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.hierarchy.lca import LCAIndex
from repro.hierarchy.tree import TreeDecomposition
from repro.labeling.labels import LabelStore
from repro.observability.metrics import get_registry, observe_query
from repro.observability.tracing import NULL_TRACER, SpanTracer, get_tracer
from repro.skyline.entries import Entry, expand, join_entry
from repro.skyline.set_ops import best_under
from repro.types import CSPQuery, QueryResult, QueryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.deadline import Deadline


class CSP2HopEngine:
    """Query engine implementing Algorithm 2 over a shared label index."""

    name = "CSP-2Hop"

    def __init__(
        self,
        tree: TreeDecomposition,
        labels: LabelStore,
        lca: LCAIndex | None = None,
    ):
        self._tree = tree
        self._labels = labels
        self._lca = lca if lca is not None else LCAIndex(tree)

    def query(
        self,
        source: int,
        target: int,
        budget: float,
        want_path: bool = False,
        deadline: "Deadline | None" = None,
    ) -> QueryResult:
        """Answer one CSP query exactly (Algorithm 2).

        ``deadline`` is checked cooperatively per hoplink.
        """
        query = CSPQuery(source, target, budget).validated(
            self._tree.num_vertices
        )
        stats = QueryStats()
        tracer = get_tracer()
        registry = get_registry()
        if not (tracer.enabled or registry.enabled):
            started = time.perf_counter()
            result = self._answer(
                query, stats, want_path, NULL_TRACER, deadline
            )
            stats.seconds = time.perf_counter() - started
            result.stats = stats
            return result
        if not tracer.enabled:
            tracer = SpanTracer()
        started = time.perf_counter()
        with tracer.span("csp2hop.query") as root:
            result = self._answer(query, stats, want_path, tracer, deadline)
        stats.seconds = time.perf_counter() - started
        root.set("hoplinks", stats.hoplinks)
        root.set("concatenations", stats.concatenations)
        root.set("label_lookups", stats.label_lookups)
        if registry.enabled:
            observe_query(registry, self.name, stats, root.children)
        result.stats = stats
        return result

    def _answer(
        self,
        query: CSPQuery,
        stats: QueryStats,
        want_path: bool,
        tracer: SpanTracer = NULL_TRACER,
        deadline: "Deadline | None" = None,
    ) -> QueryResult:
        s, t, budget = query
        if deadline is not None:
            deadline.check(stats)
        if s == t:
            return QueryResult(
                query, weight=0, cost=0, path=[s] if want_path else None
            )
        with tracer.span("lca"):
            lca, s_is_anc, t_is_anc = self._lca.relation(s, t)

        # Lines 2-5: ancestor-descendant fast path.
        if s_is_anc or t_is_anc:
            with tracer.span("label-lookup") as span:
                entries = self._labels.get(s, t)
                stats.label_lookups += 1
                best = best_under(entries, budget)
                span.set("entries", len(entries))
            return self._finish(query, best, s, t, want_path)

        # Lines 7-8: hoplinks = X(l), full Cartesian concatenation.
        hoplinks = self._tree.bag_with_self(lca)
        stats.hoplinks = len(hoplinks)
        # Hoplinks are ancestors of both endpoints: their sets sit in
        # L(s) / L(t) directly.
        label_s = self._labels.label(s)
        label_t = self._labels.label(t)
        best: Entry | None = None
        with tracer.span("concatenation") as span:
            for h in hoplinks:
                if deadline is not None:
                    deadline.check(stats)
                p_sh = label_s[h]
                p_ht = label_t[h]
                stats.label_lookups += 2
                for p1 in p_sh:
                    c1 = p1[1]
                    w1 = p1[0]
                    for p2 in p_ht:
                        stats.concatenations += 1
                        # The Cartesian product is the unbounded part of
                        # this baseline; check on the heap-loop cadence.
                        if (
                            deadline is not None
                            and not stats.concatenations & 0xFF
                        ):
                            deadline.check(stats)
                        total_c = c1 + p2[1]
                        if total_c > budget:
                            continue
                        total_w = w1 + p2[0]
                        if best is None or (
                            (total_w, total_c) < (best[0], best[1])
                        ):
                            best = join_entry(p1, p2, mid=h)
            span.set("hoplinks", stats.hoplinks)
            span.set("concatenations", stats.concatenations)
            span.set("label_lookups", stats.label_lookups)
        return self._finish(query, best, s, t, want_path)

    def _finish(
        self,
        query: CSPQuery,
        best: Entry | None,
        s: int,
        t: int,
        want_path: bool,
    ) -> QueryResult:
        if best is None:
            return QueryResult(query)
        path = expand(best, s, t) if want_path else None
        return QueryResult(query, weight=best[0], cost=best[1], path=path)
