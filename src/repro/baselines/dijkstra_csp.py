"""Index-free exact CSP baselines based on bi-criteria label setting.

:func:`constrained_dijkstra` is the classic extension of Dijkstra's idea
(Hansen 1980, paper §6.2.2): each vertex keeps a Pareto set of
``(weight, cost)`` labels, labels are settled in increasing weight order,
and any label whose cost exceeds the budget is discarded immediately.
Because labels are settled by weight, the first label settled *at the
target* is the CSP optimum.

These baselines are exponential in the worst case (CSP is NP-hard) but
exact, which makes them the ground truth every index-based algorithm is
tested against — and the "index-free solutions are unscalable" yardstick
of the paper's introduction.
"""

from __future__ import annotations

import heapq
import time
from typing import TYPE_CHECKING, Sequence

from repro.graph.network import RoadNetwork
from repro.types import CSPQuery, QueryResult, QueryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.deadline import Deadline


def constrained_dijkstra(
    network: RoadNetwork,
    source: int,
    target: int,
    budget: float,
    want_path: bool = True,
    deadline: "Deadline | None" = None,
) -> QueryResult:
    """Exact CSP via bi-criteria label setting.

    Returns a :class:`QueryResult`; ``feasible`` is False when no path
    meets the budget.  An optional ``deadline`` is checked every 256
    heap pops.
    """
    query = CSPQuery(source, target, budget).validated(network.num_vertices)
    stats = QueryStats()
    started = time.perf_counter()
    if source == target:
        stats.seconds = time.perf_counter() - started
        return QueryResult(
            query, weight=0, cost=0, path=[source] if want_path else None,
            stats=stats,
        )

    # Per-vertex Pareto frontier of (weight, cost) labels seen so far,
    # kept as cost-sorted lists (weight decreasing).
    frontier: list[list[tuple[float, float]]] = [
        [] for _ in range(network.num_vertices)
    ]

    def dominated(v: int, w: float, c: float) -> bool:
        return any(fw <= w and fc <= c for fw, fc in frontier[v])

    def insert(v: int, w: float, c: float) -> None:
        frontier[v] = [
            (fw, fc) for fw, fc in frontier[v] if not (w <= fw and c <= fc)
        ]
        frontier[v].append((w, c))

    # Heap of (weight, cost, vertex, parent_label); parent links rebuild
    # the path without storing whole paths in the heap.
    counter = 0
    heap: list[tuple[float, float, int, int, tuple | None]] = [
        (0, 0, counter, source, None)
    ]
    pops = 0
    while heap:
        w, c, _tie, v, parent = heapq.heappop(heap)
        if deadline is not None:
            pops += 1
            if not pops & 0xFF:
                deadline.check(stats)
        if dominated(v, w, c) and (w, c) not in frontier[v]:
            continue
        if v == target:
            path = _unwind(parent, v) if want_path else None
            stats.seconds = time.perf_counter() - started
            return QueryResult(query, weight=w, cost=c, path=path, stats=stats)
        for nbr, ew, ec in network.neighbors(v):  # lint: allow=QHL001 bounded by vertex degree; the heap loop above checks every 256 pops
            nw, nc = w + ew, c + ec
            if nc > budget or dominated(nbr, nw, nc):
                continue
            insert(nbr, nw, nc)
            counter += 1
            stats.concatenations += 1  # one edge relaxation
            heapq.heappush(heap, (nw, nc, counter, nbr, (v, parent)))
    stats.seconds = time.perf_counter() - started
    return QueryResult(query, stats=stats)


def _unwind(parent: tuple | None, last: int) -> list[int]:
    path = [last]
    node = parent
    while node is not None:
        v, node = node
        path.append(v)
    path.reverse()
    return path


def multi_adjacency(
    network: RoadNetwork, extra_costs: Sequence[Sequence[float]]
) -> list[list[tuple[int, float, tuple[float, ...]]]]:
    """Adjacency with vector costs for the multi-constraint extension.

    ``extra_costs[k][i]`` is the k-th additional cost of the i-th edge in
    insertion order; the result's cost vectors are ``(c, extra_1, ...)``.
    """
    adj: list[list[tuple[int, float, tuple[float, ...]]]] = [
        [] for _ in range(network.num_vertices)
    ]
    for idx, (u, v, w, c) in enumerate(network.edges()):
        costs = (c,) + tuple(extra[idx] for extra in extra_costs)
        adj[u].append((v, w, costs))
        adj[v].append((u, w, costs))
    return adj


def multi_constrained_dijkstra(
    network: RoadNetwork,
    source: int,
    target: int,
    budgets: Sequence[float],
    extra_costs: Sequence[Sequence[float]] = (),
) -> tuple[float, tuple[float, ...]] | None:
    """Exact CSP under multiple cost budgets (paper §1: "multiple
    constraints").

    The first budget constrains the network's built-in cost metric; each
    entry of ``extra_costs`` adds one more metric (see
    :func:`multi_adjacency`).  Returns ``(weight, costs)`` or ``None``.
    """
    if len(budgets) != 1 + len(extra_costs):
        raise ValueError(
            f"{len(budgets)} budgets given for {1 + len(extra_costs)} metrics"
        )
    adj = multi_adjacency(network, extra_costs)
    if source == target:
        return (0, tuple(0 for _ in budgets))

    frontier: list[list[tuple[float, tuple[float, ...]]]] = [
        [] for _ in range(network.num_vertices)
    ]

    def dominated(v: int, w: float, costs: tuple[float, ...]) -> bool:
        return any(
            fw <= w and all(
                fc <= c for fc, c in zip(fcosts, costs, strict=True)
            )
            for fw, fcosts in frontier[v]
        )

    def insert(v: int, w: float, costs: tuple[float, ...]) -> None:
        frontier[v] = [
            (fw, fcosts)
            for fw, fcosts in frontier[v]
            if not (
                w <= fw and all(
                    c <= fc for c, fc in zip(costs, fcosts, strict=True)
                )
            )
        ]
        frontier[v].append((w, costs))

    heap: list[tuple[float, tuple[float, ...], int]] = [
        (0, tuple(0 for _ in budgets), source)
    ]
    while heap:
        w, costs, v = heapq.heappop(heap)
        if v == target:
            return (w, costs)
        if dominated(v, w, costs) and (w, costs) not in frontier[v]:
            continue
        for nbr, ew, ecosts in adj[v]:
            nw = w + ew
            ncosts = tuple(c + ec for c, ec in zip(costs, ecosts, strict=True))
            if any(
                nc > b for nc, b in zip(ncosts, budgets, strict=True)
            ):
                continue
            if dominated(nbr, nw, ncosts):
                continue
            insert(nbr, nw, ncosts)
            heapq.heappush(heap, (nw, ncosts, nbr))
    return None
