"""K-shortest-paths based exact CSP (paper §6.2.2, Sedeño-Noda &
Alonso-Rodríguez style).

Enumerates simple s-t paths in increasing *weight* order with Yen's
algorithm; the first enumerated path whose cost fits the budget is the
CSP optimum.  Exact but with no useful worst-case bound (the number of
paths before the first feasible one can be huge) — exactly why the paper
dismisses index-free solutions for large networks.
"""

from __future__ import annotations

import heapq
import time
from typing import Iterator

from repro.exceptions import QueryError
from repro.graph.network import RoadNetwork
from repro.types import CSPQuery, QueryResult, QueryStats


def _dijkstra_with_bans(
    network: RoadNetwork,
    source: int,
    target: int,
    banned_vertices: set[int],
    banned_edges: set[tuple[int, int, float, float]],
) -> tuple[float, float, list[int]] | None:
    """Min-weight path avoiding banned vertices/edges; None if cut off."""
    inf = float("inf")
    dist = {source: 0.0}
    cost_at = {source: 0.0}
    parent: dict[int, int] = {}
    heap = [(0.0, 0.0, source)]
    done: set[int] = set()
    while heap:
        w, c, v = heapq.heappop(heap)
        if v in done:
            continue
        done.add(v)
        if v == target:
            path = [target]
            while path[-1] != source:
                path.append(parent[path[-1]])
            path.reverse()
            return w, c, path
        for nbr, ew, ec in network.neighbors(v):
            if nbr in banned_vertices:
                continue
            if (v, nbr, ew, ec) in banned_edges or (
                nbr, v, ew, ec
            ) in banned_edges:
                continue
            nw = w + ew
            if nw < dist.get(nbr, inf):
                dist[nbr] = nw
                cost_at[nbr] = c + ec
                parent[nbr] = v
                heapq.heappush(heap, (nw, c + ec, nbr))
    return None


def yen_paths(
    network: RoadNetwork, source: int, target: int, max_paths: int
) -> Iterator[tuple[float, float, list[int]]]:
    """Yield simple s-t paths in increasing weight order (Yen's
    algorithm), at most ``max_paths`` of them."""
    first = _dijkstra_with_bans(network, source, target, set(), set())
    if first is None:
        return
    found: list[tuple[float, float, list[int]]] = [first]
    yield first
    candidates: list[tuple[float, float, int, list[int]]] = []
    tie = 0
    emitted = {tuple(first[2])}

    while len(found) < max_paths:
        prev_w, _prev_c, prev_path = found[-1]
        del prev_w
        for i in range(len(prev_path) - 1):
            spur = prev_path[i]
            root = prev_path[: i + 1]
            banned_edges: set[tuple[int, int, float, float]] = set()
            for w, c, path in found:
                del w, c
                if path[: i + 1] == root and len(path) > i + 1:
                    u, v = path[i], path[i + 1]
                    for ew, ec in network.edge_metrics(u, v):
                        banned_edges.add((u, v, ew, ec))
            banned_vertices = set(root[:-1])
            spur_result = _dijkstra_with_bans(
                network, spur, target, banned_vertices, banned_edges
            )
            if spur_result is None:
                continue
            sw, sc, spath = spur_result
            root_w, root_c = network.path_metrics(root)
            total = (root_w + sw, root_c + sc, root + spath[1:])
            key = tuple(total[2])
            if key not in emitted:
                emitted.add(key)
                tie += 1
                heapq.heappush(
                    candidates, (total[0], total[1], tie, total[2])
                )
        if not candidates:
            return
        w, c, _tie, path = heapq.heappop(candidates)
        found.append((w, c, path))
        yield (w, c, path)


def ksp_csp(
    network: RoadNetwork,
    source: int,
    target: int,
    budget: float,
    max_paths: int = 2000,
) -> QueryResult:
    """Exact CSP by weight-ordered path enumeration.

    Raises
    ------
    QueryError
        If ``max_paths`` paths were enumerated without finding a feasible
        one while feasible paths may still exist (the enumeration bound is
        an honesty guard, not an approximation).
    """
    query = CSPQuery(source, target, budget).validated(network.num_vertices)
    stats = QueryStats()
    started = time.perf_counter()
    if source == target:
        stats.seconds = time.perf_counter() - started
        return QueryResult(query, weight=0, cost=0, path=[source], stats=stats)
    count = 0
    for w, c, path in yen_paths(network, source, target, max_paths):
        count += 1
        stats.concatenations += 1  # one enumerated candidate
        if c <= budget:
            stats.seconds = time.perf_counter() - started
            return QueryResult(
                query, weight=w, cost=c, path=path, stats=stats
            )
    if count >= max_paths:
        raise QueryError(
            f"k-shortest-path enumeration exhausted its budget of "
            f"{max_paths} paths without a feasible answer"
        )
    stats.seconds = time.perf_counter() - started
    return QueryResult(query, stats=stats)
