"""Constrained bi-criteria search over an overlay graph.

Shared by the COLA-like engine and the forest-labeling index: both
reduce cross-partition CSP to a label-setting search over a graph whose
edges carry skyline sets (boundary-to-boundary summaries plus original
cross edges).
"""

from __future__ import annotations

import heapq
import time
from typing import Mapping, Sequence

from repro.skyline.set_ops import SkylineSet
from repro.types import QueryStats

Overlay = Mapping[int, Sequence[tuple[int, SkylineSet]]]
"""vertex -> [(neighbour, skyline entries)]."""


def overlay_csp_search(
    overlay: Overlay,
    s_links: Sequence[tuple[int, SkylineSet]],
    t_links: Mapping[int, SkylineSet],
    budget: float,
    stats: QueryStats,
) -> tuple[float, float] | None:
    """Minimum-weight budget-feasible path through the overlay.

    ``s_links`` seeds the search (entry points with their skyline sets
    from the true source); reaching a vertex in ``t_links`` closes the
    path with each of its tail entries.  Labels are settled in weight
    order with per-vertex Pareto frontiers, so the search is exact.

    The elapsed search time is accumulated into ``stats.seconds`` so
    direct callers get timed results; engines wrapping this search
    (COLA, forest) overwrite it with their own end-to-end measurement.
    """
    started = time.perf_counter()
    frontier: dict[int, list[tuple[float, float]]] = {}
    best: tuple[float, float] | None = None

    def dominated(v: int, w: float, c: float) -> bool:
        return any(fw <= w and fc <= c for fw, fc in frontier.get(v, ()))

    def insert(v: int, w: float, c: float) -> None:
        kept = [
            (fw, fc)
            for fw, fc in frontier.get(v, [])
            if not (w <= fw and c <= fc)
        ]
        kept.append((w, c))
        frontier[v] = kept

    heap: list[tuple[float, float, int]] = []
    for b, entries in s_links:
        for w, c, _prov in entries:
            if c <= budget and not dominated(b, w, c):
                insert(b, w, c)
                heapq.heappush(heap, (w, c, b))

    while heap:
        w, c, v = heapq.heappop(heap)
        if best is not None and w > best[0]:
            break  # settled by weight: nothing better remains
        if dominated(v, w, c) and (w, c) not in frontier.get(v, ()):
            continue
        tails = t_links.get(v)
        if tails is not None:
            for tw, tc, _prov in tails:
                stats.concatenations += 1
                pair = (w + tw, c + tc)
                if pair[1] <= budget and (best is None or pair < best):
                    best = pair
        for nbr, entries in overlay.get(v, ()):
            for ew, ec, _prov in entries:
                nw, nc = w + ew, c + ec
                stats.concatenations += 1
                if nc > budget or dominated(nbr, nw, nc):
                    continue
                insert(nbr, nw, nc)
                heapq.heappush(heap, (nw, nc, nbr))
    stats.seconds += time.perf_counter() - started
    return best
