"""Pulse-style exact CSP: bound-pruned depth-first search.

The paper's related work (§6.2.2) covers the lineage of index-free
exact methods that prune a systematic search with weight/cost bounds
([22]'s resource-constrained shortest paths; the "pulse" family in the
later literature).  The algorithm:

1. one reverse Dijkstra per metric gives, for every vertex, lower
   bounds ``w_min(v→t)`` and ``c_min(v→t)``;
2. a depth-first search from ``s`` extends a partial path only if
   (a) its cost plus ``c_min`` fits the budget (*infeasibility* prune),
   (b) its weight plus ``w_min`` beats the incumbent (*bound* prune),
   (c) the partial label is not dominated at its vertex
   (*dominance* prune).

Exact, index-free, and typically faster than plain bi-criteria
Dijkstra on tight budgets (the budget prune bites early) — but still
exponential in the worst case, which is the paper's argument for
indexes.
"""

from __future__ import annotations

import time

from repro.graph.algorithms import dijkstra
from repro.graph.network import RoadNetwork
from repro.types import CSPQuery, QueryResult, QueryStats


def pulse_csp(
    network: RoadNetwork,
    source: int,
    target: int,
    budget: float,
    want_path: bool = True,
) -> QueryResult:
    """Exact CSP by bound-pruned DFS (Pulse-style)."""
    query = CSPQuery(source, target, budget).validated(network.num_vertices)
    stats = QueryStats()
    started = time.perf_counter()
    if source == target:
        stats.seconds = time.perf_counter() - started
        return QueryResult(
            query, weight=0, cost=0,
            path=[source] if want_path else None, stats=stats,
        )

    w_min = dijkstra(network, target, metric="weight")
    c_min = dijkstra(network, target, metric="cost")
    inf = float("inf")
    if c_min[source] == inf or c_min[source] > budget:
        stats.seconds = time.perf_counter() - started
        return QueryResult(query, stats=stats)

    best_weight = inf
    best_cost = inf
    best_path: list[int] | None = None
    frontier: list[list[tuple[float, float]]] = [
        [] for _ in range(network.num_vertices)
    ]
    current: list[int] = [source]
    on_path = [False] * network.num_vertices
    on_path[source] = True

    def dominated(v: int, w: float, c: float) -> bool:
        return any(fw <= w and fc <= c for fw, fc in frontier[v])

    def remember(v: int, w: float, c: float) -> None:
        frontier[v] = [
            (fw, fc) for fw, fc in frontier[v] if not (w <= fw and c <= fc)
        ]
        frontier[v].append((w, c))

    def pulse(v: int, w: float, c: float) -> None:
        nonlocal best_weight, best_cost, best_path
        for nbr, ew, ec in network.neighbors(v):
            if on_path[nbr]:
                continue  # positive metrics: cycles never help
            nw, nc = w + ew, c + ec
            stats.concatenations += 1  # one extension attempt
            # Infeasibility prune.
            if nc + c_min[nbr] > budget:
                continue
            # Bound prune (allow weight ties to improve cost).
            projected = nw + w_min[nbr]
            if projected > best_weight or (
                projected == best_weight and nc + c_min[nbr] >= best_cost
            ):
                continue
            if nbr == target:
                if (nw, nc) < (best_weight, best_cost):
                    best_weight, best_cost = nw, nc
                    if want_path:
                        best_path = current + [target]
                continue
            # Dominance prune.
            if dominated(nbr, nw, nc):
                continue
            remember(nbr, nw, nc)
            on_path[nbr] = True
            current.append(nbr)
            pulse(nbr, nw, nc)
            current.pop()
            on_path[nbr] = False

    pulse(source, 0, 0)
    stats.seconds = time.perf_counter() - started
    if best_weight == inf:
        return QueryResult(query, stats=stats)
    return QueryResult(
        query, weight=best_weight, cost=best_cost,
        path=best_path, stats=stats,
    )
