"""Skyline (bi-criteria) Dijkstra: exact skyline path sets, index-free.

Computes the full skyline set ``P_st`` — or ``P_sv`` for every vertex —
by multi-label search.  Used as the ground truth for label construction
tests and as the in-partition search engine of the COLA-like baseline.
"""

from __future__ import annotations

import heapq
import time
from typing import TYPE_CHECKING, Callable

from repro.graph.network import RoadNetwork

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.deadline import Deadline
from repro.skyline.entries import (
    Entry,
    edge_entry,
    expand,
    join_entry,
    zero_entry,
)
from repro.skyline.set_ops import SkylineSet, best_under, skyline_of
from repro.types import CSPQuery, QueryResult, QueryStats


def skyline_search(
    network: RoadNetwork,
    source: int,
    max_cost: float | None = None,
    allowed: Callable[[int], bool] | None = None,
    with_prov: bool = False,
    stats: QueryStats | None = None,
    deadline: "Deadline | None" = None,
) -> list[SkylineSet]:
    """All skyline sets ``P_sv`` from ``source`` (label-setting).

    Parameters
    ----------
    network:
        The road network.
    source:
        Start vertex.
    max_cost:
        Optional cost ceiling; labels above it are pruned (sound when the
        caller only needs paths within a known budget).
    allowed:
        Optional vertex filter; the search never leaves
        ``{v : allowed(v)}`` (used for intra-partition searches).
    with_prov:
        Record provenance on labels so concrete paths can be expanded.
    stats:
        Optional :class:`~repro.types.QueryStats`; when given, every
        label relaxation is counted as one concatenation.
    deadline:
        Optional :class:`~repro.service.deadline.Deadline`; checked
        every 256 heap pops, raising
        :class:`~repro.exceptions.DeadlineExceededError` with the
        partial ``stats`` when the budget is exhausted.

    Returns
    -------
    list[SkylineSet]
        ``result[v]`` is the canonical skyline set from source to ``v``
        (``[(0, 0, ...)]`` for the source itself).

    Notes
    -----
    Labels are settled in ``(cost, weight)`` order.  When a label is
    popped, no future label can have smaller cost, so dominance against
    the settled frontier (whose last member has the smallest weight seen)
    is a single comparison.
    """
    n = network.num_vertices
    frontiers: list[SkylineSet] = [[] for _ in range(n)]
    counter = 0
    start = zero_entry(source, with_prov=with_prov)
    heap: list[tuple[float, float, int, int, Entry]] = [
        (0, 0, counter, source, start)
    ]
    pops = 0
    while heap:
        c, w, _tie, v, entry = heapq.heappop(heap)
        if deadline is not None:
            pops += 1
            if not pops & 0xFF:
                deadline.check(stats)
        frontier = frontiers[v]
        if frontier and frontier[-1][0] <= w:
            # Settled in cost order: the last frontier member has both
            # smaller-or-equal cost and smaller-or-equal weight.
            continue
        frontier.append(entry)
        for nbr, ew, ec in network.neighbors(v):  # lint: allow=QHL001 bounded by vertex degree; the heap loop above checks every 256 pops
            if allowed is not None and nbr != source and not allowed(nbr):
                continue
            nw, nc = w + ew, c + ec
            if max_cost is not None and nc > max_cost:
                continue
            nbr_frontier = frontiers[nbr]
            if nbr_frontier and nbr_frontier[-1][0] <= nw:
                continue
            counter += 1
            if stats is not None:
                stats.concatenations += 1  # one label relaxation
            if with_prov:
                edge = edge_entry(ew, ec, v, nbr, with_prov=True)
                nxt = join_entry(entry, edge, mid=v)
            else:
                nxt = (nw, nc, None)
            heapq.heappush(heap, (nc, nw, counter, nbr, nxt))
    return frontiers


def skyline_between(
    network: RoadNetwork,
    source: int,
    target: int,
    max_cost: float | None = None,
    with_prov: bool = False,
) -> SkylineSet:
    """The exact skyline set ``P_st`` (paper Definition 6)."""
    if source == target:
        return [zero_entry(source, with_prov=with_prov)]
    return skyline_search(
        network, source, max_cost=max_cost, with_prov=with_prov
    )[target]


def sky_dijkstra_csp(
    network: RoadNetwork,
    source: int,
    target: int,
    budget: float,
    want_path: bool = False,
    deadline: "Deadline | None" = None,
) -> QueryResult:
    """Exact CSP answered from the full skyline set (SkyDijkstra).

    Computes ``P_st`` by budget-capped skyline search and returns the
    minimum-weight member within budget.  Populates
    :class:`~repro.types.QueryStats` (``seconds``, ``concatenations``)
    uniformly with the other baselines, so it slots straight into the
    workload harness.  An optional ``deadline`` is checked
    cooperatively in the heap loop.
    """
    query = CSPQuery(source, target, budget).validated(network.num_vertices)
    stats = QueryStats()
    started = time.perf_counter()
    if source == target:
        stats.seconds = time.perf_counter() - started
        return QueryResult(
            query, weight=0, cost=0,
            path=[source] if want_path else None, stats=stats,
        )
    frontiers = skyline_search(
        network, source, max_cost=budget, with_prov=want_path, stats=stats,
        deadline=deadline,
    )
    best = best_under(frontiers[target], budget)
    stats.seconds = time.perf_counter() - started
    if best is None:
        return QueryResult(query, stats=stats)
    path = expand(best, source, target) if want_path else None
    return QueryResult(
        query, weight=best[0], cost=best[1], path=path, stats=stats
    )


class SkyDijkstraEngine:
    """:func:`sky_dijkstra_csp` behind the uniform engine protocol.

    Index-free, so it is always available — the last rung of the
    serving layer's degradation ladder — and it slots into the workload
    harness like any label-based engine.
    """

    name = "SkyDijkstra"

    def __init__(self, network: RoadNetwork):
        self._network = network

    def query(
        self,
        source: int,
        target: int,
        budget: float,
        want_path: bool = False,
        deadline: "Deadline | None" = None,
    ) -> QueryResult:
        return sky_dijkstra_csp(
            self._network, source, target, budget,
            want_path=want_path, deadline=deadline,
        )


def skyline_pairs_bruteforce(
    network: RoadNetwork, source: int, target: int, max_hops: int | None = None
) -> list[tuple[float, float]]:
    """Skyline ``(w, c)`` pairs by exhaustive simple-path enumeration.

    Exponential — strictly for cross-checking on tiny test graphs.
    """
    limit = max_hops if max_hops is not None else network.num_vertices
    pairs: list[tuple[float, float]] = []
    visited = [False] * network.num_vertices
    visited[source] = True

    def walk(v: int, w: float, c: float, hops: int) -> None:
        if v == target:
            pairs.append((w, c))
            return
        if hops == limit:
            return
        for nbr, ew, ec in network.neighbors(v):
            if not visited[nbr]:
                visited[nbr] = True
                walk(nbr, w + ew, c + ec, hops + 1)
                visited[nbr] = False

    walk(source, 0, 0, 0)
    return [(e[0], e[1]) for e in skyline_of([(w, c, None) for w, c in pairs])]
