"""Command-line interface: ``repro-qhl`` (or ``python -m repro``).

Subcommands::

    generate   write a named synthetic dataset to a network file
    build      build the QHL index for a network file
    query      answer a CSP query against a saved index
    stats      print index statistics (Table 2-style)
    verify     deep-audit a saved index (invariants + spot-checks)
    workload   generate the paper's Q1..Q5 query sets for a network
    bench      race QHL / CSP-2Hop (/ COLA) over a query-set file
    update     apply/replay/inspect journalled live metric updates
    lint       run the AST invariant linter (QHL001..QHL006)
    flight     inspect a flight-recorder dump (dump / tail, --json)

Example session::

    repro-qhl generate --dataset NY --scale small --out ny.csp
    repro-qhl build --network ny.csp --out ny.idx --index-queries 2000
    repro-qhl query --index ny.idx --source 0 --target 140 --budget 400 --path
    repro-qhl query --index ny.idx --source 0 --target 140 --budget 400 --trace
    repro-qhl stats --index ny.idx

``build``, ``workload``, ``bench`` and ``query`` accept
``--metrics-out PATH`` to dump the run's metrics registry as JSON-lines
(counters, gauges, and latency histograms with p50/p95/p99);
``query --trace`` prints the phase-by-phase span tree of one query.

Serving-style robustness flags (see ``docs/robustness.md``): ``query``
takes ``--deadline-ms`` (time budget), ``--fallback`` (degradation
ladder QHL -> CSP-2Hop -> SkyDijkstra, tolerating engine failures and
corrupt indexes) and ``--verify-checksum on|off``; ``bench`` takes
``--deadline-ms`` (over-budget queries land in the fail column).

Build-hardening flags (same doc): ``build`` takes ``--lenient`` /
``--lcc-fallback`` (validating ingestion with typed, located errors and
explicit drop policies), ``--checkpoint-dir`` + ``--resume``
(per-level build checkpoints; an interrupted build continues from its
last completed level and lands on an identical index) and
``--max-build-seconds`` / ``--max-rss-mb`` (checkpoint-then-raise
watchdog); ``verify`` deep-audits a saved index — storage checksum,
skyline canonicality, hoplink coverage, tree/LCA structure, plus
seeded spot-checks against constrained Dijkstra — and exits 1 if any
check fails.

Observability flags (see ``docs/observability.md``): ``query`` and
``bench`` accept ``--flight-out PATH`` (record every query into a
bounded flight-recorder ring and dump it as JSON-lines at exit),
``--flight-size N`` (ring capacity) and ``--slow-ms X`` (slow-query
threshold); ``repro-qhl flight dump|tail --file PATH`` pretty-prints a
dump (``--json`` for machine-readable output).

Live-update flags (see ``docs/robustness.md``): ``update apply``
journals a delta batch (``--deltas FILE`` or ``--edge/--weight/
--cost``) and publishes the repaired epoch, rolling back on any
failure; ``update replay`` re-applies the whole journal onto a fresh
build (the crash-recovery path — exit state is bit-identical to a
fresh build with the final metrics); ``update status`` inspects the
journal (exit 1 when batches are pending); ``bench --updates N``
streams N random deltas through the epoch pipeline while re-running
each query set, reporting p50/p99 under churn.

Performance flags (see ``docs/performance.md``): ``build --workers N``
builds labels level-parallel across N processes; ``bench --cache-size
N`` races a QHL+cache engine (skyline-frontier LRU over N pairs)
alongside the others, ``--batch`` runs each query set through the
batch API in cache-friendly order, and ``--workers N`` fans a batched
run out across N worker processes.
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from repro.core.engine import QHLIndex
from repro.datasets.catalog import DATASET_NAMES, load_dataset
from repro.exceptions import ReproError
from repro.graph.io import read_csp_text, write_csp_text
from repro.instrument.timing import Timer, format_bytes, format_seconds
from repro.observability.metrics import MetricsRegistry, use_registry
from repro.observability.export import write_jsonl
from repro.observability.tracing import SpanTracer, use_tracer
from repro.storage.serialize import (
    load_index,
    load_index_with_retry,
    save_index,
)


@contextlib.contextmanager
def _metrics_scope(path: str | None):
    """Run the body under a live metrics registry, dumping it to ``path``.

    A no-op (the default null registry stays active) when ``path`` is
    falsy, so commands pay nothing unless ``--metrics-out`` was given.
    """
    if not path:
        yield
        return
    registry = MetricsRegistry()
    with use_registry(registry):
        yield
    try:
        count = write_jsonl(registry, path)
    except OSError as exc:
        raise ReproError(f"cannot write metrics to {path}: {exc}") from exc
    print(f"wrote {count} metrics -> {path}")


@contextlib.contextmanager
def _flight_scope(args: argparse.Namespace):
    """Run the body under a live flight recorder, dumping it at exit.

    A no-op (the inert null recorder stays active) when
    ``--flight-out`` was not given, mirroring :func:`_metrics_scope`.
    """
    path = getattr(args, "flight_out", None)
    if not path:
        yield
        return
    from repro.observability.flight import (
        FlightRecorder,
        use_flight_recorder,
    )

    recorder = FlightRecorder(
        capacity=getattr(args, "flight_size", None) or 256,
        slow_ms=getattr(args, "slow_ms", None),
    )
    with use_flight_recorder(recorder):
        yield
    try:
        count = recorder.dump(path, reason="cli")
    except OSError as exc:
        raise ReproError(
            f"cannot write flight records to {path}: {exc}"
        ) from exc
    print(f"wrote {count} flight records -> {path}")


@contextlib.contextmanager
def _incident_scope(args: argparse.Namespace):
    """Run the body under a live incident sink, dumping it at exit.

    A no-op (the inert null sink stays active) when ``--incident-out``
    was not given, mirroring :func:`_metrics_scope`.  The dump is
    JSON-lines, readable back with ``repro-qhl supervise status``.
    """
    path = getattr(args, "incident_out", None)
    if not path:
        yield
        return
    from repro.supervise import IncidentLog, use_incident_log

    log = IncidentLog()
    with use_incident_log(log):
        yield
    try:
        count = log.dump(path)
    except OSError as exc:
        raise ReproError(
            f"cannot write incidents to {path}: {exc}"
        ) from exc
    print(f"wrote {count} supervision incidents -> {path}")


def _supervision_from_args(args: argparse.Namespace):
    """``(supervised, SupervisionConfig | None)`` for ``args``."""
    if not getattr(args, "supervised", False):
        return False, None
    import dataclasses

    from repro.supervise import SupervisionConfig

    config = SupervisionConfig()
    if getattr(args, "max_worker_restarts", None) is not None:
        config = dataclasses.replace(
            config, max_restarts=args.max_worker_restarts
        )
    if getattr(args, "heartbeat_ms", None) is not None:
        # Keep the stall threshold a comfortable multiple of the beat
        # interval so tuning one flag cannot silently create a
        # shoot-healthy-workers configuration.
        config = dataclasses.replace(
            config,
            heartbeat_ms=args.heartbeat_ms,
            stall_after_ms=max(
                config.stall_after_ms, 20.0 * args.heartbeat_ms
            ),
        )
    return True, config


def _add_supervision_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``--supervised`` option group (build and bench)."""
    parser.add_argument(
        "--supervised",
        action="store_true",
        help="run worker fan-outs under process supervision: dead "
        "workers are respawned and their lost chunk retried instead "
        "of failing (requires workers >= 2 to matter)",
    )
    parser.add_argument(
        "--max-worker-restarts",
        type=int,
        help="consecutive deaths that trip a worker's restart circuit "
        "breaker (with --supervised; default 3)",
    )
    parser.add_argument(
        "--heartbeat-ms",
        type=float,
        help="worker heartbeat interval in milliseconds (with "
        "--supervised; default 100)",
    )
    parser.add_argument(
        "--incident-out",
        help="dump supervisor lifecycle incidents (spawns, deaths, "
        "restarts, requeues) as JSON-lines to this path (inspect with "
        "`repro-qhl supervise status`)",
    )


def _add_flight_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``--flight-*`` option group (query and bench)."""
    parser.add_argument(
        "--flight-out",
        help="record every query into a flight-recorder ring and dump "
        "it as JSON-lines to this path (inspect with `repro-qhl "
        "flight`)",
    )
    parser.add_argument(
        "--flight-size",
        type=int,
        default=256,
        help="flight-recorder ring capacity (with --flight-out)",
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        help="flight-recorder slow-query threshold in milliseconds; "
        "slow queries are flagged and kept in the slow/fail side log",
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale)
    write_csp_text(dataset.network, args.out)
    print(
        f"{dataset.name} ({dataset.description}): "
        f"|V|={dataset.network.num_vertices} "
        f"|E|={dataset.network.num_edges} -> {args.out}"
    )
    return 0


def _ingest_policy(args: argparse.Namespace):
    """The :class:`~repro.resilience.ingest.ParsePolicy` for ``args``
    (``None`` = the default strict policy)."""
    import dataclasses

    from repro.resilience.ingest import LENIENT, STRICT

    policy = None
    if getattr(args, "lenient", False):
        policy = LENIENT
    if getattr(args, "lcc_fallback", False):
        policy = dataclasses.replace(policy or STRICT, lcc_fallback=True)
    return policy


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.resilience.checkpoint import BuildBudget, CheckpointStore

    network = read_csp_text(args.network, policy=_ingest_policy(args))
    budget = None
    if args.max_build_seconds is not None or args.max_rss_mb is not None:
        budget = BuildBudget(
            max_seconds=args.max_build_seconds, max_rss_mb=args.max_rss_mb
        )
    supervised, supervision = _supervision_from_args(args)
    with _metrics_scope(args.metrics_out), _incident_scope(args), \
            Timer() as timer:
        index = QHLIndex.build(
            network,
            num_index_queries=args.index_queries,
            store_paths=not args.no_paths,
            seed=args.seed,
            label_workers=args.workers,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            build_budget=budget,
            supervised=supervised,
            supervision=supervision,
        )
    if args.flat:
        from repro.storage import save_flat_index

        size = save_flat_index(index, args.out)
    else:
        size = save_index(index, args.out)
    if args.checkpoint_dir:
        # The index reached durable storage; the checkpoints served
        # their purpose.
        CheckpointStore(args.checkpoint_dir).clear()
    kind = "flat index" if args.flat else "index"
    print(
        f"built {kind} for |V|={network.num_vertices} in "
        f"{format_seconds(timer.seconds)}; file {format_bytes(size)} "
        f"-> {args.out}"
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import json

    from repro.exceptions import SerializationError
    from repro.resilience.audit import AuditCheck, AuditReport, audit_index

    with _metrics_scope(args.metrics_out):
        storage = AuditCheck("storage-checksum", checked=1)
        try:
            if args.flat:
                from repro.storage import load_flat_index

                index = load_flat_index(
                    args.index,
                    verify_checksum=args.verify_checksum != "off",
                )
            else:
                index = load_index(
                    args.index,
                    verify_checksum=args.verify_checksum != "off",
                )
        except SerializationError as exc:
            storage.add(str(exc))
            report = AuditReport(checks=[storage])
        else:
            report = audit_index(
                index, queries=args.queries, seed=args.seed
            )
            report.checks.insert(0, storage)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.exceptions import ReproError
    from repro.service import Deadline, QueryService, ServiceConfig

    if args.flat and args.fallback:
        raise ReproError(
            "--flat cannot be combined with --fallback; the degradation "
            "ladder serves object indexes"
        )
    verify = args.verify_checksum != "off"
    deadline = (
        Deadline.from_ms(args.deadline_ms)
        if args.deadline_ms is not None
        else None
    )
    with _metrics_scope(args.metrics_out), _flight_scope(args):
        if args.fallback:
            network = (
                read_csp_text(args.network) if args.network else None
            )
            service = QueryService(
                index_path=args.index,
                network=network,
                config=ServiceConfig(verify_checksum=verify),
            )
            if service.index_load_error is not None:
                print(
                    f"warning: index unusable "
                    f"({service.index_load_error}); serving degraded "
                    f"via {' -> '.join(service.tiers)}",
                    file=sys.stderr,
                )

            def run(want_path: bool):
                return service.query(
                    args.source, args.target, args.budget,
                    want_path=want_path, deadline=deadline,
                )
        elif args.flat:
            from repro.storage import load_flat_index

            index = load_flat_index(
                args.index,
                verify_checksum=verify,
                use_mmap=args.mmap != "off",
            )

            def run(want_path: bool):
                return index.query(
                    args.source, args.target, args.budget,
                    want_path=want_path, deadline=deadline,
                )
        else:
            index = load_index_with_retry(
                args.index, verify_checksum=verify
            )

            def run(want_path: bool):
                return index.query(
                    args.source, args.target, args.budget,
                    want_path=want_path, deadline=deadline,
                )

        tracer = SpanTracer() if args.trace else None
        if tracer is not None:
            with use_tracer(tracer):
                result = run(args.path)
        else:
            result = run(args.path)
        if not args.fallback:
            # The QueryService path flight-records internally; the
            # plain-index path records here.
            from repro.observability.flight import get_flight_recorder

            recorder = get_flight_recorder()
            if recorder.enabled:
                recorder.record(
                    engine=result.engine or "qhl",
                    source=args.source,
                    target=args.target,
                    budget=args.budget,
                    outcome="ok" if result.feasible else "infeasible",
                    seconds=result.stats.seconds,
                    stats=result.stats,
                )
        if result.feasible:
            via = f" via {result.engine}" if result.engine else ""
            print(
                f"optimal weight {result.weight} at cost {result.cost} "
                f"(budget {args.budget}) in "
                f"{format_seconds(result.stats.seconds)}{via}"
            )
            if args.path and result.path is not None:
                print(" -> ".join(str(v) for v in result.path))
        else:
            print(
                f"no path from {args.source} to {args.target} within "
                f"budget {args.budget}"
            )
        if tracer is not None and tracer.last() is not None:
            from repro.core.explain import explain_trace

            print()
            print(explain_trace(tracer.last()))
    return 0 if result.feasible else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    index = load_index(args.index)
    stats = index.stats()
    print(f"vertices          {index.network.num_vertices}")
    print(f"edges             {index.network.num_edges}")
    print(f"treewidth         {stats.treewidth}")
    print(f"treeheight        {stats.treeheight}")
    print(f"avg height        {stats.average_height:.1f}")
    print(f"tree build        {format_seconds(stats.tree_seconds)}")
    print(f"label build       {format_seconds(stats.label_seconds)}")
    print(f"label size        {format_bytes(stats.label_bytes)}")
    print(f"label entries     {stats.label_entries}")
    print(f"max skyline set   {stats.max_skyline_set}")
    print(f"pruning build     {format_seconds(stats.pruning_seconds)}")
    print(f"pruning size      {format_bytes(stats.pruning_bytes)}")
    print(f"pruning conds     {stats.pruning_conditions}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.graph.algorithms import estimate_diameter
    from repro.observability.metrics import get_registry
    from repro.workloads import generate_distance_sets, write_query_sets

    network = read_csp_text(args.network)
    with _metrics_scope(args.metrics_out):
        registry = get_registry()
        phase_seconds = lambda phase: registry.histogram(  # noqa: E731
            "qhl_workload_phase_seconds",
            {"phase": phase},
            help="query-set generation phase latency",
        )
        with Timer() as timer:
            d_max = estimate_diameter(network)
        phase_seconds("estimate-diameter").observe(timer.seconds)
        with Timer() as timer:
            sets = generate_distance_sets(
                network, size=args.size, d_max=d_max, seed=args.seed
            )
        phase_seconds("generate-sets").observe(timer.seconds)
        for name, query_set in sets.items():
            registry.gauge(
                "qhl_workload_queries", {"set": name}
            ).set(len(query_set))
    write_query_sets(sets, args.out)
    print(
        f"wrote {sum(len(s) for s in sets.values())} queries "
        f"({', '.join(sets)}) for d_max={d_max:g} -> {args.out}"
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.instrument import WorkloadReport, run_workload
    from repro.workloads import index_queries_from_sets, read_query_sets

    network = read_csp_text(args.network)
    sets = read_query_sets(args.queries)
    supervised, supervision = _supervision_from_args(args)
    with _metrics_scope(args.metrics_out), _flight_scope(args), \
            _incident_scope(args):
        index_queries = index_queries_from_sets(
            list(sets.values()), args.index_queries, seed=args.seed
        )
        with Timer() as timer:
            index = QHLIndex.build(
                network,
                index_queries=index_queries,
                store_paths=False,
                seed=args.seed,
            )
        print(f"index built in {format_seconds(timer.seconds)}")

        engines = [index.qhl_engine(), index.csp2hop_engine()]
        if args.flat:
            engines.insert(1, index.flat_engine())
        if args.cache_size:
            engines.insert(0, index.cached_engine(args.cache_size))
        if args.cola:
            from repro.baselines import COLAEngine

            engines.append(COLAEngine(network, num_parts=8, seed=args.seed))

        print(WorkloadReport.header())
        for name, query_set in sets.items():
            for engine in engines:
                report = run_workload(
                    engine, query_set.queries, name,
                    deadline_ms=args.deadline_ms,
                    batch=args.batch,
                    workers=args.workers,
                    supervised=supervised,
                    supervision=supervision,
                )
                print(report.row())
        if args.cache_size:
            if args.batch and args.workers >= 2:
                # Worker processes queried forked engine copies; their
                # caches died with them, so parent-side numbers would
                # read as a (misleading) string of zeros.
                print("cache: per-worker caches are not aggregated")
            else:
                cached = engines[0]
                stats = cached.cache.stats()
                print(
                    f"cache: {stats.entries}/{stats.capacity} pairs, "
                    f"{stats.hits} hits / {stats.misses} misses "
                    f"(hit rate {stats.hit_rate:.1%}), "
                    f"{stats.evictions} evictions"
                )
        if args.updates:
            import os
            import tempfile

            from repro.dynamic import (
                DynamicQHLIndex,
                EpochManager,
                UpdateConfig,
            )

            dyn = DynamicQHLIndex(index, index_queries, store_paths=False)
            manager = EpochManager(
                dyn,
                tempfile.mkdtemp(prefix=f"qhl-epoch-{os.getpid()}-"),
                UpdateConfig(audit_on_publish=False),
            )
            for name, query_set in sets.items():
                _bench_updates(
                    manager, query_set, name, args.updates, args.seed
                )
    return 0


def _read_deltas(path: str):
    """Parse a JSON-lines delta file into :class:`EdgeDelta` rows.

    Each line is ``{"edge": i, "weight": w, "cost": c}`` — ``weight`` /
    ``cost`` optional or ``null`` to leave that metric unchanged.
    """
    import json

    from repro.dynamic import EdgeDelta

    deltas = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    obj = json.loads(line)
                    deltas.append(
                        EdgeDelta(
                            int(obj["edge"]),
                            obj.get("weight"),
                            obj.get("cost"),
                        )
                    )
                except (ValueError, KeyError, TypeError) as exc:
                    raise ReproError(
                        f"{path}, line {lineno}: bad delta record: {exc}"
                    ) from exc
    except OSError as exc:
        raise ReproError(f"cannot read deltas from {path}: {exc}") from exc
    return deltas


def _update_manager(args: argparse.Namespace):
    """Build the epoch manager for ``update apply|replay``.

    Saved indexes drop elimination shortcuts (the repair's raw
    material), so the dynamic index is rebuilt from the network file —
    with the same ``--index-queries`` / ``--seed`` every run, the build
    is deterministic and ``base_seq=0`` replay of the journal converges
    to the exact index a fresh build with the final metrics produces.
    """
    from repro.dynamic import DynamicQHLIndex, EpochManager, UpdateConfig

    network = read_csp_text(args.network)
    with Timer() as timer:
        dyn = DynamicQHLIndex.build(
            network,
            num_index_queries=args.index_queries,
            store_paths=False,
            seed=args.seed,
        )
    print(f"index built in {format_seconds(timer.seconds)}")
    config = UpdateConfig(
        audit_on_publish=args.audit == "on",
        max_repair_seconds=args.max_repair_seconds,
        replay_on_start=False,
    )
    manager = EpochManager(dyn, args.journal, config, base_seq=0)
    return manager


def _print_update_report(manager, report) -> None:
    print(
        f"epoch {manager.epoch.id}: applied {report.edges_applied} "
        f"delta(s) in {format_seconds(report.seconds)} "
        f"({report.shortcuts_changed} shortcuts, "
        f"{report.labels_changed} labels changed, "
        f"pruning {'rebuilt' if report.pruning_rebuilt else 'kept'})"
    )


def _cmd_update(args: argparse.Namespace) -> int:
    import json

    from repro.dynamic import UpdateJournal

    if args.mode == "status":
        journal = UpdateJournal(args.journal)
        pending = journal.pending()
        if args.json:
            print(json.dumps({
                "journal": args.journal,
                "last_seq": journal.last_seq(),
                "published_seq": journal.published_seq(),
                "pending": len(pending),
                "torn_lines": journal.torn_lines,
            }, indent=2, sort_keys=True))
            return 0
        print(f"journal    {args.journal}")
        print(f"acknowledged batches  {journal.last_seq()}")
        print(f"published watermark   {journal.published_seq()}")
        print(f"pending batches       {len(pending)}")
        if journal.torn_lines:
            print(f"torn lines truncated  {journal.torn_lines}")
        for record in pending:
            print(
                f"  seq {record.seq}: {len(record.deltas)} delta(s), "
                f"ts {record.ts:.3f}"
            )
        return 1 if pending else 0

    if not args.network:
        raise ReproError(
            f"update {args.mode} needs --network (the dynamic index is "
            "rebuilt from it; see --help)"
        )
    with _metrics_scope(args.metrics_out), _incident_scope(args):
        manager = _update_manager(args)
        replayed = manager.replay()
        if replayed:
            print(f"replayed {replayed} journalled batch(es)")
        if args.mode == "apply":
            if args.deltas:
                deltas = _read_deltas(args.deltas)
            elif args.edge is not None:
                from repro.dynamic import EdgeDelta

                deltas = [EdgeDelta(args.edge, args.weight, args.cost)]
            else:
                raise ReproError(
                    "update apply needs --deltas FILE or --edge I "
                    "(with --weight/--cost)"
                )
            report = manager.apply(deltas)
            _print_update_report(manager, report)
        else:  # replay
            print(
                f"epoch {manager.epoch.id}, backlog {manager.backlog()}"
            )
        if args.out:
            size = save_index(manager.epoch.dyn.index, args.out)
            print(f"saved repaired index -> {args.out} "
                  f"({format_bytes(size)})")
    return 0


def _bench_updates(manager, query_set, name: str, updates: int,
                   seed: int) -> None:
    """Race a Zipf-ish repeated workload against live update churn.

    Applies one random metric delta every ``len(queries) // updates``
    queries through the epoch manager while timing every query; prints
    a summary row with query p50/p99 and the update pipeline's cost.
    """
    import random
    import statistics
    import time as _time

    from repro.dynamic import EdgeDelta

    rng = random.Random(seed)
    edges = manager.epoch.dyn.network_edges()
    queries = query_set.queries
    every = max(1, len(queries) // max(1, updates))
    latencies = []
    repair_seconds = []
    applied = 0
    for i, (s, t, c) in enumerate(queries):
        if applied < updates and i % every == 0 and i > 0:
            edge = rng.randrange(len(edges))
            u, v, w, cost = edges[edge]
            factor = rng.uniform(0.5, 2.0)
            report = manager.apply([EdgeDelta(edge, w * factor, None)])
            repair_seconds.append(report.seconds)
            applied += 1
        started = _time.perf_counter()
        manager.query(s, t, c)
        latencies.append(_time.perf_counter() - started)
    latencies.sort()
    p50 = latencies[len(latencies) // 2] * 1e3
    p99 = latencies[int(len(latencies) * 0.99)] * 1e3
    mean_repair = (
        statistics.mean(repair_seconds) if repair_seconds else 0.0
    )
    print(
        f"updates[{name}]: {len(queries)} queries with {applied} live "
        f"updates  p50 {p50:.3f} ms  p99 {p99:.3f} ms  "
        f"mean repair {mean_repair * 1e3:.1f} ms  "
        f"epoch {manager.epoch.id}"
    )


def _cmd_supervise(args: argparse.Namespace) -> int:
    import json

    from repro.supervise import INCIDENT_KINDS, load_incidents, summarize

    try:
        incidents = load_incidents(args.incidents)
    except OSError as exc:
        raise ReproError(f"cannot read incident dump: {exc}") from exc
    except (ValueError, TypeError) as exc:
        raise ReproError(
            f"malformed incident dump {args.incidents}: {exc}"
        ) from exc
    summary = summarize(incidents)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    if not incidents:
        print("no incidents")
        return 0
    kinds = list(INCIDENT_KINDS)
    for extra in sorted(summary["totals"]):
        if extra not in kinds:
            kinds.append(extra)
    header = f"{'worker':<10}" + "".join(f"{k:>14}" for k in kinds)
    print(header)
    for worker in sorted(summary["workers"]):
        row = summary["workers"][worker]
        print(
            f"{worker:<10}"
            + "".join(f"{row.get(k, 0):>14}" for k in kinds)
        )
    print(
        f"{'total':<10}"
        + "".join(f"{summary['totals'].get(k, 0):>14}" for k in kinds)
    )
    if args.tail > 0:
        print()
        for incident in incidents[-args.tail:]:
            pid = incident.pid if incident.pid is not None else "-"
            print(
                f"{incident.seq:>5}  {incident.kind:<13}  "
                f"{incident.worker:<10}  pid {pid!s:<8}  "
                f"{incident.detail}"
            )
    return 0


def _cmd_flight(args: argparse.Namespace) -> int:
    import json

    from repro.observability.flight import load_flight

    try:
        records = load_flight(args.file)
    except OSError as exc:
        raise ReproError(f"cannot read flight dump: {exc}") from exc
    except ValueError as exc:
        raise ReproError(
            f"malformed flight dump {args.file}: {exc}"
        ) from exc
    if args.slow:
        records = [r for r in records if r.slow or r.failed]
    if args.mode == "tail":
        records = records[-args.n:] if args.n > 0 else []
    if args.json:
        for record in records:
            print(json.dumps(record.to_dict(), sort_keys=True))
        return 0
    if not records:
        print("no flight records")
        return 0
    print(
        f"{'seq':>5}  {'engine':<10}  {'query':<16}  {'outcome':<22}  "
        f"{'time':>10}  {'flags':<5}  trace"
    )
    for r in records:
        flags = ("S" if r.slow else "") + ("F" if r.failed else "")
        query = f"{r.source}->{r.target}@{r.budget:g}"
        line = (
            f"{r.seq:>5}  {r.engine:<10}  {query:<16}  {r.outcome:<22}  "
            f"{r.seconds * 1e3:>7.3f} ms  {flags:<5}  {r.trace_id or '-'}"
        )
        if r.error:
            line += f"  {r.error}"
        print(line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-qhl",
        description="QHL: exact constrained shortest path search",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="write a synthetic dataset")
    p_gen.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    p_gen.add_argument(
        "--scale", choices=("benchmark", "small"), default="small"
    )
    p_gen.add_argument("--out", required=True)
    p_gen.set_defaults(func=_cmd_generate)

    p_build = sub.add_parser("build", help="build the QHL index")
    p_build.add_argument("--network", required=True)
    p_build.add_argument("--out", required=True)
    p_build.add_argument("--index-queries", type=int, default=2000)
    p_build.add_argument("--seed", type=int, default=0)
    p_build.add_argument(
        "--no-paths",
        action="store_true",
        help="skip path provenance (smaller index, no path retrieval)",
    )
    p_build.add_argument(
        "--flat",
        action="store_true",
        help="save in the flat (version 3) format: raw label columns "
        "behind a checksummed binary header, loadable via mmap with "
        "zero copies (drops provenance, like the compact format)",
    )
    p_build.add_argument(
        "--metrics-out",
        help="dump build metrics (phase timings, index sizes) as "
        "JSON-lines to this path",
    )
    p_build.add_argument(
        "--workers",
        type=int,
        default=1,
        help="label-construction process pool size; >= 2 builds the "
        "tree-depth levels in parallel (same index, faster build)",
    )
    p_build.add_argument(
        "--checkpoint-dir",
        help="persist per-level label-build checkpoints into this "
        "directory (atomic, checksummed); an interrupted build can "
        "then continue with --resume; cleared after a successful build",
    )
    p_build.add_argument(
        "--resume",
        action="store_true",
        help="with --checkpoint-dir, continue an interrupted build "
        "from its last completed level (result identical to a fresh "
        "build)",
    )
    p_build.add_argument(
        "--max-build-seconds",
        type=float,
        help="time budget for the label build; when exceeded, the "
        "build checkpoints and raises instead of running away "
        "(requires --checkpoint-dir)",
    )
    p_build.add_argument(
        "--max-rss-mb",
        type=float,
        help="peak-memory budget (MiB) for the label build; when "
        "exceeded, the build checkpoints and raises (requires "
        "--checkpoint-dir)",
    )
    p_build.add_argument(
        "--lenient",
        action="store_true",
        help="lenient network parsing: skip junk lines, drop "
        "self-loops / duplicate edges / non-positive metrics, and fall "
        "back to the largest connected component (all counted in "
        "--metrics-out) instead of rejecting the file",
    )
    p_build.add_argument(
        "--lcc-fallback",
        action="store_true",
        help="keep only the largest connected component of a "
        "disconnected input (strict parsing otherwise; implied by "
        "--lenient)",
    )
    _add_supervision_arguments(p_build)
    p_build.set_defaults(func=_cmd_build)

    p_verify = sub.add_parser(
        "verify", help="deep-audit a saved index (exit 1 on failure)"
    )
    p_verify.add_argument("--index", required=True)
    p_verify.add_argument(
        "--queries",
        type=int,
        default=8,
        help="seeded random queries to spot-check against the exact "
        "constrained-Dijkstra baseline (0 = structural checks only)",
    )
    p_verify.add_argument("--seed", type=int, default=0)
    p_verify.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable report as JSON",
    )
    p_verify.add_argument(
        "--verify-checksum",
        choices=("on", "off"),
        default="on",
        help="verify the index file's SHA-256 payload checksum before "
        "auditing (a mismatch fails the storage-checksum check)",
    )
    p_verify.add_argument(
        "--metrics-out",
        help="dump audit metrics (audit_* counters) as JSON-lines to "
        "this path",
    )
    p_verify.add_argument(
        "--flat",
        action="store_true",
        help="audit a flat (version 3) index: mmap-load it and run the "
        "full audit plus the flat-columns structural check",
    )
    p_verify.set_defaults(func=_cmd_verify)

    p_query = sub.add_parser("query", help="answer one CSP query")
    p_query.add_argument("--index", required=True)
    p_query.add_argument("--source", type=int, required=True)
    p_query.add_argument("--target", type=int, required=True)
    p_query.add_argument("--budget", type=float, required=True)
    p_query.add_argument(
        "--path", action="store_true", help="print the vertex path"
    )
    p_query.add_argument(
        "--trace",
        action="store_true",
        help="print the per-phase span trace of the query",
    )
    p_query.add_argument(
        "--deadline-ms",
        type=float,
        help="per-query time budget in milliseconds; exceeding it "
        "raises a DeadlineExceededError instead of answering late",
    )
    p_query.add_argument(
        "--fallback",
        action="store_true",
        help="serve through the degradation ladder "
        "(QHL -> CSP-2Hop -> SkyDijkstra): engine failures and a "
        "missing/corrupt index degrade instead of failing",
    )
    p_query.add_argument(
        "--network",
        help="network file backing the index-free fallback tier; with "
        "--fallback, lets a missing/corrupt index degrade to direct "
        "skyline Dijkstra search instead of erroring out",
    )
    p_query.add_argument(
        "--verify-checksum",
        choices=("on", "off"),
        default="on",
        help="verify the index file's SHA-256 payload checksum on "
        "load (default on; v1 files carry no checksum)",
    )
    p_query.add_argument(
        "--metrics-out",
        help="dump query/service metrics (fallbacks, deadline hits) as "
        "JSON-lines to this path",
    )
    p_query.add_argument(
        "--flat",
        action="store_true",
        help="answer from a flat (version 3) index through the "
        "flat-array engine (bit-identical answers, near-zero load "
        "time; incompatible with --fallback)",
    )
    p_query.add_argument(
        "--mmap",
        choices=("on", "off"),
        default="on",
        help="with --flat, map the column file into memory (on, the "
        "default) or read it into arrays (off); answers are identical",
    )
    _add_flight_arguments(p_query)
    p_query.set_defaults(func=_cmd_query)

    p_stats = sub.add_parser("stats", help="print index statistics")
    p_stats.add_argument("--index", required=True)
    p_stats.set_defaults(func=_cmd_stats)

    p_workload = sub.add_parser(
        "workload", help="generate the paper's Q1..Q5 query sets"
    )
    p_workload.add_argument("--network", required=True)
    p_workload.add_argument("--out", required=True)
    p_workload.add_argument("--size", type=int, default=100)
    p_workload.add_argument("--seed", type=int, default=0)
    p_workload.add_argument(
        "--metrics-out",
        help="dump generation metrics as JSON-lines to this path",
    )
    p_workload.set_defaults(func=_cmd_workload)

    p_bench = sub.add_parser(
        "bench", help="race engines over a query-set file"
    )
    p_bench.add_argument("--network", required=True)
    p_bench.add_argument("--queries", required=True)
    p_bench.add_argument("--index-queries", type=int, default=1000)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument(
        "--cola", action="store_true",
        help="include the (slow) COLA baseline",
    )
    p_bench.add_argument(
        "--deadline-ms",
        type=float,
        help="per-query time budget; queries over it are counted in "
        "the report's fail column instead of aborting the run",
    )
    p_bench.add_argument(
        "--metrics-out",
        help="dump per-engine query and phase histograms as JSON-lines "
        "to this path",
    )
    p_bench.add_argument(
        "--cache-size",
        type=int,
        default=0,
        help="add a QHL+cache engine with a skyline-frontier LRU of "
        "this many pairs to the race (0 = off)",
    )
    p_bench.add_argument(
        "--batch",
        action="store_true",
        help="execute each query set through the batch API "
        "(cache-friendly sorted order instead of file order)",
    )
    p_bench.add_argument(
        "--workers",
        type=int,
        default=0,
        help="with --batch, fan each query set out across this many "
        "worker processes (0 = in-process)",
    )
    p_bench.add_argument(
        "--flat",
        action="store_true",
        help="add the flat-array QHL engine (packed columns, same "
        "answers) to the race",
    )
    p_bench.add_argument(
        "--updates",
        type=int,
        default=0,
        help="after the race, stream this many random metric deltas "
        "through the epoch-versioned update pipeline while re-running "
        "each query set, reporting query p50/p99 under churn (0 = off)",
    )
    _add_flight_arguments(p_bench)
    _add_supervision_arguments(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_update = sub.add_parser(
        "update",
        help="apply, replay, or inspect journalled live metric updates",
    )
    p_update.add_argument(
        "mode",
        choices=("apply", "replay", "status"),
        help="apply journals + publishes new deltas; replay re-applies "
        "the journal onto a fresh build; status inspects the journal",
    )
    p_update.add_argument(
        "--journal",
        required=True,
        help="journal directory (created on first use); holds "
        "journal.jsonl and the published-watermark checkpoint",
    )
    p_update.add_argument(
        "--network",
        help="network file (apply/replay rebuild the dynamic index "
        "from it — saved indexes drop the elimination shortcuts the "
        "repair needs)",
    )
    p_update.add_argument(
        "--deltas",
        help="JSON-lines delta file: {\"edge\": i, \"weight\": w, "
        "\"cost\": c} per line (weight/cost optional = unchanged)",
    )
    p_update.add_argument(
        "--edge", type=int, help="single-delta form: edge index"
    )
    p_update.add_argument(
        "--weight", type=float, help="new absolute weight for --edge"
    )
    p_update.add_argument(
        "--cost", type=float, help="new absolute cost for --edge"
    )
    p_update.add_argument(
        "--out", help="save the repaired index to this path"
    )
    p_update.add_argument(
        "--audit",
        choices=("on", "off"),
        default="on",
        help="audit the repaired index before publishing (default on); "
        "a failing audit rolls the batch back",
    )
    p_update.add_argument(
        "--max-repair-seconds",
        type=float,
        help="roll back any repair running longer than this",
    )
    p_update.add_argument("--index-queries", type=int, default=1000)
    p_update.add_argument("--seed", type=int, default=0)
    p_update.add_argument(
        "--json",
        action="store_true",
        help="status: print machine-readable JSON",
    )
    p_update.add_argument(
        "--metrics-out",
        help="dump update_* metrics as JSON-lines to this path",
    )
    p_update.add_argument(
        "--incident-out",
        help="dump rollback/journal incidents as JSON-lines to this "
        "path",
    )
    p_update.set_defaults(func=_cmd_update)

    p_flight = sub.add_parser(
        "flight", help="inspect a flight-recorder JSON-lines dump"
    )
    p_flight.add_argument(
        "mode",
        choices=("dump", "tail"),
        help="dump prints every record; tail prints the last -n",
    )
    p_flight.add_argument(
        "--file",
        required=True,
        help="flight dump written by --flight-out or the QueryService "
        "dump-on-failure hook",
    )
    p_flight.add_argument(
        "-n",
        type=int,
        default=10,
        help="records to show in tail mode (default 10)",
    )
    p_flight.add_argument(
        "--json",
        action="store_true",
        help="print records as JSON-lines instead of a table",
    )
    p_flight.add_argument(
        "--slow",
        action="store_true",
        help="show only slow or failed records",
    )
    p_flight.set_defaults(func=_cmd_flight)

    p_supervise = sub.add_parser(
        "supervise",
        help="inspect a worker-supervision incident dump",
    )
    p_supervise.add_argument(
        "mode",
        choices=("status",),
        help="status prints per-worker lifecycle tallies",
    )
    p_supervise.add_argument(
        "--incidents",
        required=True,
        help="incident JSON-lines dump written by --incident-out",
    )
    p_supervise.add_argument(
        "--tail",
        type=int,
        default=5,
        help="also print the last N raw incidents (0 = table only)",
    )
    p_supervise.add_argument(
        "--json",
        action="store_true",
        help="print the summary as JSON instead of a table",
    )
    p_supervise.set_defaults(func=_cmd_supervise)

    p_lint = sub.add_parser(
        "lint", help="run the AST invariant linter (QHL001..QHL006)"
    )
    from repro.lint.cli import add_lint_arguments, cmd_lint

    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
