"""QHL core: the paper's contribution — query-aware hop labeling."""

from repro.core.concatenation import concat_best_under, concat_cartesian
from repro.core.engine import IndexStats, QHLIndex, random_index_queries
from repro.core.flat import FlatIndex, FlatQHLEngine
from repro.core.explain import (
    ConditionApplication,
    HoplinkWork,
    QueryExplanation,
)
from repro.core.pruning import (
    PruningConditionIndex,
    build_condition,
    build_pruning_index,
    compute_cub,
)
from repro.core.qhl import QHLEngine, candidate_separators
from repro.core.separators import (
    LabelFetcher,
    estimated_cost,
    initial_separators,
)

__all__ = [
    "ConditionApplication",
    "FlatIndex",
    "FlatQHLEngine",
    "HoplinkWork",
    "IndexStats",
    "LabelFetcher",
    "QueryExplanation",
    "PruningConditionIndex",
    "QHLEngine",
    "QHLIndex",
    "build_condition",
    "build_pruning_index",
    "candidate_separators",
    "compute_cub",
    "concat_best_under",
    "concat_cartesian",
    "estimated_cost",
    "initial_separators",
    "random_index_queries",
]
