"""Query-aware path concatenation (paper §3.4, Algorithm 5).

Given the two cost-sorted skyline sets ``P_sh`` and ``P_ht`` of a hoplink
``h`` and the budget ``C``, find the minimum-weight concatenation whose
cost fits the budget in ``O(|P_sh| + |P_ht|)`` — instead of CSP-2Hop's
Cartesian product.

The sweep starts at ``(i=first of P_sh, j=last of P_ht)``:

* if ``c(p_i ⊕ p_j) <= C`` the pair is feasible; any smaller ``j`` pairs a
  *heavier* right part with the same left part (Lemma 6), so record the
  candidate and advance ``i``;
* otherwise every larger ``i`` also busts the budget with this ``j``
  (Lemma 7), so retreat ``j``.

Each inspected pair counts as one "path concatenation" — the unit of the
paper's Figures 7 and 8.
"""

from __future__ import annotations

from typing import Sequence

from repro.skyline.entries import Entry, join_entry


_INF_PAIR = (float("inf"), float("inf"))


def concat_best_under(
    p_sh: Sequence[Entry],
    p_ht: Sequence[Entry],
    budget: float,
    prune: tuple[float, float] | None = None,
) -> tuple[Entry | None, int]:
    """Algorithm 5: the per-hoplink suboptimal path ``p*_h``.

    Parameters
    ----------
    p_sh, p_ht:
        Canonical (cost-sorted) skyline sets.
    budget:
        The query budget ``C``.
    prune:
        Optional current global best ``(weight, cost)``; feasible pairs
        that are not lexicographically better are not materialised.

    Returns
    -------
    (best, concatenations):
        The best entry (or ``None`` if no pair improves on ``prune``
        within the budget) and the number of pairs inspected.

    Notes
    -----
    Any minimum-weight feasible concatenation answers the query; among
    weight ties this picks the cheapest, so every engine in the package
    returns bit-identical ``(w, c)`` pairs.
    """
    best: Entry | None = None
    best_pair = prune if prune is not None else _INF_PAIR
    i = 0
    j = len(p_ht) - 1
    inspected = 0
    n_sh = len(p_sh)
    while i < n_sh and j >= 0:
        left = p_sh[i]
        right = p_ht[j]
        inspected += 1
        cost = left[1] + right[1]
        if cost <= budget:
            if (left[0] + right[0], cost) < best_pair:
                best_pair = (left[0] + right[0], cost)
                best = join_entry(left, right, mid=-1)
            i += 1
        else:
            j -= 1
    return best, inspected


def concat_cartesian(
    p_sh: Sequence[Entry],
    p_ht: Sequence[Entry],
    budget: float,
    prune: tuple[float, float] | None = None,
) -> tuple[Entry | None, int]:
    """The CSP-2Hop-style Cartesian sweep, for the Figure 8b ablation.

    Semantically identical to :func:`concat_best_under`; costs
    ``|P_sh| * |P_ht|`` concatenations.
    """
    best: Entry | None = None
    best_pair = prune if prune is not None else _INF_PAIR
    inspected = 0
    for left in p_sh:
        for right in p_ht:
            inspected += 1
            cost = left[1] + right[1]
            if cost > budget:
                continue
            pair = (left[0] + right[0], cost)
            if pair < best_pair:
                best_pair = pair
                best = join_entry(left, right, mid=-1)
    return best, inspected


def rejoin_with_mid(best: Entry, mid: int) -> Entry:
    """Stamp the hoplink vertex into a winning entry's provenance.

    The sweeps above use a placeholder mid (they do not know which hoplink
    they serve); the query loop re-stamps the winner so path expansion
    splits at the right vertex.
    """
    prov = best[2]
    if prov is None:
        return best
    tag, _mid, left, right = prov
    return (best[0], best[1], (tag, mid, left, right))
