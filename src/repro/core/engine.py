"""High-level facade: build the full QHL index and query it.

:class:`QHLIndex` bundles the four index pieces — tree decomposition,
2-hop skyline labels, LCA structure, and pruning conditions — behind one
``build`` call, and hands out query engines:

>>> from repro import QHLIndex, grid_network
>>> network = grid_network(8, 8, seed=1)
>>> index = QHLIndex.build(network, num_index_queries=200, seed=1)
>>> result = index.query(0, 63, budget=200)
>>> result.feasible
True

Engines for the baselines and the paper's ablation variants share the
same underlying index, so comparisons measure algorithms, not indexes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.baselines.csp2hop import CSP2HopEngine
from repro.core.pruning import PruningConditionIndex, build_pruning_index
from repro.core.qhl import QHLEngine
from repro.graph.algorithms import sample_connected_pair
from repro.graph.network import RoadNetwork
from repro.hierarchy.decomposition import Strategy, build_tree_decomposition
from repro.hierarchy.lca import LCAIndex
from repro.hierarchy.tree import TreeDecomposition
from repro.labeling.builder import build_labels
from repro.labeling.labels import LabelStore
from repro.observability.metrics import get_registry
from repro.observability.tracing import get_tracer
from repro.types import CSPQuery, QueryResult


@dataclass
class IndexStats:
    """Build-cost summary (paper Table 2 + Figure 10)."""

    treewidth: int
    treeheight: int
    average_height: float
    tree_seconds: float
    label_seconds: float
    label_bytes: int
    label_entries: int
    max_skyline_set: int
    pruning_seconds: float
    pruning_bytes: int
    pruning_conditions: int


class QHLIndex:
    """The complete QHL index over one road network."""

    def __init__(
        self,
        network: RoadNetwork,
        tree: TreeDecomposition,
        labels: LabelStore,
        lca: LCAIndex,
        pruning: PruningConditionIndex,
    ):
        self.network = network
        self.tree = tree
        self.labels = labels
        self.lca = lca
        self.pruning = pruning
        self._default_engine = QHLEngine(tree, labels, lca, pruning)
        self._flat_store = None  # packed lazily by flat_engine()

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        network: RoadNetwork,
        index_queries: Sequence[CSPQuery] | None = None,
        num_index_queries: int = 2000,
        strategy: Strategy = "min_degree",
        store_paths: bool = True,
        max_skyline: int | None = None,
        seed: int = 0,
        label_workers: int = 1,
        checkpoint_dir: str | None = None,
        resume: bool = False,
        build_budget=None,
        supervised: bool = False,
        supervision=None,
    ) -> "QHLIndex":
        """Build the full index.

        Parameters
        ----------
        network:
            A connected road network.
        index_queries:
            The workload sample ``Q_index`` driving pruning-condition
            construction (§4.2).  When ``None``, ``num_index_queries``
            uniform random queries are generated (the paper samples
            uniformly from past workloads).
        strategy, store_paths, max_skyline:
            Passed through to the decomposition / label builders.
        seed:
            Seed for query sampling and Algorithm 7's random pruner
            choice.
        label_workers:
            ``>= 2`` builds the labels level-parallel across a process
            pool (:mod:`repro.labeling.parallel`); the index is
            value-identical to a sequential build.
        supervised, supervision:
            With ``label_workers >= 2``, run the level pools under
            worker supervision (:mod:`repro.supervise`): a worker
            killed mid-level is respawned and its chunk recomputed
            instead of failing the build.
        checkpoint_dir, resume, build_budget:
            Checkpoint the label build (the dominant phase) per depth
            level into ``checkpoint_dir``; ``resume=True`` continues an
            interrupted build from its last completed level, and
            ``build_budget`` (a :class:`~repro.resilience.checkpoint.
            BuildBudget`) checkpoints-then-raises when time/memory run
            out.  The resulting index is value-identical to an
            uninterrupted build.
        """
        tracer = get_tracer()
        with tracer.span("qhl.build") as root:
            with tracer.span("tree-decomposition"):
                tree = build_tree_decomposition(
                    network,
                    strategy=strategy,
                    store_paths=store_paths,
                    max_skyline=max_skyline,
                )
            with tracer.span("label-construction"):
                labels = build_labels(
                    tree,
                    store_paths=store_paths,
                    max_skyline=max_skyline,
                    workers=label_workers,
                    checkpoint=checkpoint_dir,
                    resume=resume,
                    budget=build_budget,
                    supervised=supervised,
                    supervision=supervision,
                )
            with tracer.span("lca-index"):
                lca = LCAIndex(tree)
            with tracer.span("pruning-index") as span:
                if index_queries is None:
                    index_queries = random_index_queries(
                        network, num_index_queries, seed=seed
                    )
                pruning = build_pruning_index(
                    tree, labels, lca, index_queries, seed=seed
                )
                span.set("conditions", pruning.num_conditions)
            root.set("vertices", network.num_vertices)
            root.set("edges", network.num_edges)
        index = cls(network, tree, labels, lca, pruning)
        registry = get_registry()
        if registry.enabled:
            index.record_metrics(registry)
        return index

    # ------------------------------------------------------------------
    # Engines
    # ------------------------------------------------------------------
    def qhl_engine(
        self,
        use_pruning_conditions: bool = True,
        use_two_pointer: bool = True,
    ) -> QHLEngine:
        """A QHL engine; flip the flags for the Figure 8 ablations."""
        return QHLEngine(
            self.tree,
            self.labels,
            self.lca,
            self.pruning,
            use_pruning_conditions=use_pruning_conditions,
            use_two_pointer=use_two_pointer,
        )

    def csp2hop_engine(self) -> CSP2HopEngine:
        """The CSP-2Hop baseline over the same labels."""
        return CSP2HopEngine(self.tree, self.labels, self.lca)

    def flat_engine(self, use_pruning_conditions: bool = True):
        """A :class:`~repro.core.flat.FlatQHLEngine` over packed columns.

        The labels are packed into a
        :class:`~repro.storage.flat.FlatLabelStore` on first use and
        cached, so repeated calls share one column set.  Answers are
        bit-identical to :meth:`qhl_engine`; the hot path is index
        arithmetic instead of object-graph walks.
        """
        from repro.core.flat import FlatQHLEngine
        from repro.storage.flat import FlatLabelStore

        if self._flat_store is None:
            self._flat_store = FlatLabelStore.from_store(self.labels)
        return FlatQHLEngine(
            self.tree,
            self._flat_store,
            self.lca,
            self.pruning,
            use_pruning_conditions=use_pruning_conditions,
        )

    def cached_engine(self, cache_size: int = 1024):
        """A :class:`~repro.perf.cached_engine.CachedQHLEngine`.

        Repeated-pair workloads answer from a cached skyline frontier
        in ``O(log k)``; exact for every budget (``docs/performance.md``
        has the argument).
        """
        from repro.perf.cached_engine import CachedQHLEngine

        return CachedQHLEngine(
            self.tree, self.labels, self.lca, cache=cache_size
        )

    def query_many(
        self,
        queries: Sequence,
        want_path: bool = False,
        deadline_ms: float | None = None,
        batch_deadline_ms: float | None = None,
        workers: int = 0,
        cache_size: int = 0,
    ):
        """Batched queries over this index (cache-friendly order).

        ``cache_size > 0`` routes the batch through a fresh
        :meth:`cached_engine`; ``workers >= 2`` fans it out across a
        process pool.  Returns a :class:`~repro.perf.batch.BatchReport`
        with results in input order.
        """
        from repro.perf.batch import execute_batch

        engine = (
            self.cached_engine(cache_size)
            if cache_size > 0
            else self._default_engine
        )
        return execute_batch(
            engine,
            queries,
            want_path=want_path,
            deadline_ms=deadline_ms,
            batch_deadline_ms=batch_deadline_ms,
            workers=workers,
        )

    def query(
        self,
        source: int,
        target: int,
        budget: float,
        want_path: bool = False,
        deadline=None,
    ) -> QueryResult:
        """Answer a CSP query with the default QHL engine."""
        return self._default_engine.query(
            source, target, budget, want_path=want_path, deadline=deadline
        )

    # ------------------------------------------------------------------
    def audit(self, queries: int = 8, seed: int = 0):
        """Deep self-audit; see :func:`repro.resilience.audit.audit_index`.

        Checks skyline canonicality, hoplink coverage, tree/LCA
        well-formedness, and spot-checks ``queries`` seeded random
        queries against the exact constrained-Dijkstra baseline.
        Returns the machine-readable
        :class:`~repro.resilience.audit.AuditReport` (never raises on a
        bad index).
        """
        from repro.resilience.audit import audit_index

        return audit_index(self, queries=queries, seed=seed)

    # ------------------------------------------------------------------
    def record_metrics(self, registry) -> None:
        """Export :meth:`stats` as ``qhl_index_*`` gauges on ``registry``.

        Build phases land in ``qhl_index_build_seconds{phase=...}`` so a
        metrics dump of one build answers the paper's Table 2 / Figure
        10 questions (where the build time and space went).
        """
        stats = self.stats()
        for phase, seconds in (
            ("tree-decomposition", stats.tree_seconds),
            ("label-construction", stats.label_seconds),
            ("pruning-index", stats.pruning_seconds),
        ):
            registry.gauge(
                "qhl_index_build_seconds", {"phase": phase}
            ).set(seconds)
        for name, value in (
            ("qhl_index_treewidth", stats.treewidth),
            ("qhl_index_treeheight", stats.treeheight),
            ("qhl_index_label_bytes", stats.label_bytes),
            ("qhl_index_label_entries", stats.label_entries),
            ("qhl_index_max_skyline_set", stats.max_skyline_set),
            ("qhl_index_pruning_bytes", stats.pruning_bytes),
            ("qhl_index_pruning_conditions", stats.pruning_conditions),
        ):
            registry.gauge(name).set(value)

    # ------------------------------------------------------------------
    def stats(self) -> IndexStats:
        """Build-cost summary for Table 2 / Figure 10 reporting."""
        return IndexStats(
            treewidth=self.tree.treewidth,
            treeheight=self.tree.treeheight,
            average_height=self.tree.average_height,
            tree_seconds=self.tree.build_seconds,
            label_seconds=self.labels.build_seconds,
            label_bytes=self.labels.size_bytes(),
            label_entries=self.labels.num_entries(),
            max_skyline_set=self.labels.max_set_size(),
            pruning_seconds=self.pruning.build_seconds,
            pruning_bytes=self.pruning.size_bytes(),
            pruning_conditions=self.pruning.num_conditions,
        )


def random_index_queries(
    network: RoadNetwork, count: int, seed: int = 0
) -> list[CSPQuery]:
    """Uniform random ``Q_index`` queries (§4.2).

    Budgets are irrelevant to condition *construction* (conditions store
    the largest valid θ), so a placeholder budget of 0 is used.

    RNG contract: the result is a pure function of
    ``(network.num_vertices, count, seed)`` — a private
    ``random.Random(seed)`` drives the sampling, so the global
    :mod:`random` state is neither read nor advanced, and equal seeds
    yield equal query lists across runs and platforms.

    Every query has ``s != t``: a pruning condition describes how one
    *distinct* endpoint's position shrinks a separator, so a degenerate
    ``s == t`` pair carries no information and would only dilute
    ``Q_index``.  Pairs violating this are rejected and redrawn.
    """
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        s, t = sample_connected_pair(network, rng)
        while s == t:  # reject degenerate pairs; redraw from the same RNG
            s, t = sample_connected_pair(network, rng)
        queries.append(CSPQuery(s, t, 0))
    return queries
