"""Query-plan explanation.

``QHLEngine.explain(s, t, C)`` re-runs the query pipeline and records
every decision — which case fired, the initial separators, which
pruning conditions applied and what they removed, each candidate's
estimated cost, and the per-hoplink concatenation work.  The paper's
worked examples (10-15) are exactly this trace for one query; the
feature makes that narration available for *any* query.

:func:`explain_trace` is the observability counterpart: it renders a
captured span tree (from :mod:`repro.observability.tracing`) with each
phase annotated by the paper section it implements, so ``repro-qhl
query --trace`` reads like the worked examples but with measured
timings attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability.export import render_trace
from repro.observability.tracing import Span
from repro.types import CSPQuery


@dataclass
class ConditionApplication:
    """One pruning condition matched during Algorithm 4."""

    separator_child: int
    v_end: int
    before: tuple[int, ...]
    after: tuple[int, ...]

    @property
    def pruned(self) -> tuple[int, ...]:
        return tuple(h for h in self.before if h not in set(self.after))


@dataclass
class HoplinkWork:
    """Concatenation work for one chosen hoplink."""

    hoplink: int
    size_sh: int
    size_ht: int
    inspected: int
    found: tuple[float, float] | None


@dataclass
class QueryExplanation:
    """Structured trace of one QHL query."""

    query: CSPQuery
    case: str  # "same-vertex" | "ancestor-descendant" | "separator"
    lca: int | None = None
    initial_separators: list[tuple[int, tuple[int, ...]]] = field(
        default_factory=list
    )
    conditions: list[ConditionApplication] = field(default_factory=list)
    candidates: list[tuple[tuple[int, ...], int]] = field(
        default_factory=list
    )
    chosen: tuple[int, ...] = ()
    hoplinks: list[HoplinkWork] = field(default_factory=list)
    answer: tuple[float, float] | None = None

    def render(self) -> str:
        """A human-readable multi-line account of the plan."""
        q = self.query
        lines = [
            f"query: {q.source} -> {q.target} within budget {q.budget:g}"
        ]
        if self.case == "same-vertex":
            lines.append("case: source equals target — zero path")
        elif self.case == "ancestor-descendant":
            lines.append(
                "case: ancestor-descendant — answer read from one label"
            )
        else:
            lines.append(f"case: separator search (LCA bag of {self.lca})")
            for child, separator in self.initial_separators:
                lines.append(
                    f"  initial separator via child {child}: "
                    f"{list(separator)}"
                )
            if self.conditions:
                for app in self.conditions:
                    lines.append(
                        f"  condition (child {app.separator_child}, "
                        f"v_end {app.v_end}) pruned {list(app.pruned)}"
                    )
            else:
                lines.append("  no pruning condition matched")
            for separator, cost in self.candidates:
                marker = "*" if separator == self.chosen else " "
                lines.append(
                    f"  {marker} candidate {list(separator)}  "
                    f"T(H) = {cost}"
                )
            for work in self.hoplinks:
                found = (
                    f"best {work.found}" if work.found else "nothing better"
                )
                lines.append(
                    f"  hoplink {work.hoplink}: |P_sh|={work.size_sh} "
                    f"|P_ht|={work.size_ht} inspected {work.inspected} "
                    f"-> {found}"
                )
        lines.append(
            f"answer: {self.answer}"
            if self.answer
            else "answer: infeasible"
        )
        return "\n".join(lines)


#: Query-pipeline span names mapped to the paper phase they implement.
PHASE_NOTES: dict[str, str] = {
    "qhl.query": "Algorithm 3 end-to-end",
    "csp2hop.query": "Algorithm 2 end-to-end",
    "lca": "LCA lookup (Alg. 3 line 1)",
    "label-lookup": "ancestor-descendant label fetch (Alg. 3 lines 2-5)",
    "separator-init": "separator initialisation (paper §3.2)",
    "pruning": "pruning-condition checks (paper §3.3, Alg. 4)",
    "hoplink-select": "hoplink selection by T(H) (Alg. 3 line 9)",
    "concatenation": "two-pointer concatenation (paper §3.4, Alg. 5)",
    "hoplink": "one hoplink's P_sh x P_ht sweep",
    "qhl.build": "index construction (paper §2.3 + §4)",
    "tree-decomposition": "tree decomposition (paper §2.2)",
    "label-construction": "2-hop skyline labels (paper §2.3)",
    "lca-index": "LCA structure",
    "pruning-index": "pruning-condition index (paper §4, Alg. 6-7)",
}


def explain_trace(span: Span) -> str:
    """Render a captured span tree with paper-phase annotations.

    The tree body comes from
    :func:`repro.observability.export.render_trace`; a legend below it
    ties each distinct span name to the paper section it implements, so
    a ``--trace`` dump doubles as a guided tour of Algorithm 3.
    """
    lines = [render_trace(span)]
    seen: list[str] = []

    def collect(node: Span) -> None:
        if node.name in PHASE_NOTES and node.name not in seen:
            seen.append(node.name)
        for child in node.children:
            collect(child)

    collect(span)
    if seen:
        lines.append("")
        width = max(len(name) for name in seen)
        for name in seen:
            lines.append(f"  {name:<{width}}  {PHASE_NOTES[name]}")
    return "\n".join(lines)
