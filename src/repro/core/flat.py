"""The flat-array QHL engine: Algorithm 3 as index arithmetic.

:class:`FlatQHLEngine` answers the same queries as
:class:`~repro.core.qhl.QHLEngine` but reads skyline sets as half-open
slices into the cost-sorted columns of a
:class:`~repro.storage.flat.FlatLabelStore` — no per-entry tuples, no
label dicts, no allocation on the hot path.  The pipeline is shared
piece by piece with the object engine so answers cannot drift:

* separator initialisation — the same
  :func:`~repro.core.separators.initial_separators`;
* condition pruning — the same
  :func:`~repro.core.qhl.candidate_separators` (one implementation,
  same candidate order, same tie-breaks);
* hoplink selection — ``min`` by the same estimated cost
  ``T(H) = Σ_h (|P_sh| + |P_ht|)``, sizes read from the offset table;
* concatenation — :func:`~repro.skyline.flat_ops.sweep_best_pair`,
  Algorithm 5 with identical answer semantics over column slices;
* the ancestor fast path — a pure binary search
  (:func:`~repro.skyline.flat_ops.best_under_cols`) over the cost
  column.

``(feasible, weight, cost)`` triples are therefore bit-identical to the
object engine on every query (the differential suite pins this); only
the ``concatenations`` counter may be lower, because the flat sweep
binary-searches away provably infeasible pairs.

:class:`FlatIndex` is the facade over a flat (possibly mmap-backed)
label store — the flat twin of :class:`~repro.core.engine.QHLIndex` —
as produced by :func:`repro.storage.flatfile.load_flat_index`.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

from repro.core.pruning import PruningConditionIndex
from repro.core.qhl import candidate_separators
from repro.core.separators import initial_separators
from repro.exceptions import IndexBuildError, ReproError
from repro.graph.network import RoadNetwork
from repro.hierarchy.lca import LCAIndex
from repro.hierarchy.tree import TreeDecomposition
from repro.observability.metrics import get_registry, observe_query
from repro.skyline.flat_ops import best_under_cols, sweep_best_pair
from repro.storage.compact import _restore
from repro.storage.flat import FlatLabelStore
from repro.types import CSPQuery, QueryResult, QueryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import QHLIndex
    from repro.service.deadline import Deadline

_INF = float("inf")


class FlatQHLEngine:
    """QHL over flat label columns; bit-identical to :class:`QHLEngine`."""

    name = "QHL-flat"

    def __init__(
        self,
        tree: TreeDecomposition,
        labels: FlatLabelStore,
        lca: LCAIndex | None = None,
        pruning: PruningConditionIndex | None = None,
        use_pruning_conditions: bool = True,
    ):
        self._tree = tree
        self._labels = labels
        self._lca = lca if lca is not None else LCAIndex(tree)
        self._pruning = pruning
        self.use_pruning_conditions = use_pruning_conditions and (
            pruning is not None
        )

    # ------------------------------------------------------------------
    def query(
        self,
        source: int,
        target: int,
        budget: float,
        want_path: bool = False,
        deadline: "Deadline | None" = None,
    ) -> QueryResult:
        """Answer one CSP query exactly (Algorithm 3, flat columns).

        ``deadline`` is checked cooperatively in the hoplink loop, like
        the object engine.  ``want_path=True`` on a feasible query
        raises :class:`ReproError`: flat columns keep no provenance
        (the same trade as compact storage).
        """
        query = CSPQuery(source, target, budget).validated(
            self._tree.num_vertices
        )
        stats = QueryStats()
        started = time.perf_counter()
        result = self._answer(query, stats, want_path, deadline)
        stats.seconds = time.perf_counter() - started
        result.stats = stats
        registry = get_registry()
        if registry.enabled:
            observe_query(registry, self.name, stats)
        return result

    def query_many(
        self,
        queries: Sequence[CSPQuery | tuple[int, int, float]],
        want_path: bool = False,
        deadline: "Deadline | None" = None,
    ) -> list[QueryResult]:
        """Batched :meth:`query` in cache-friendly order.

        Results come back in the *input* order; see
        :func:`repro.perf.batch.execute_batch` for the failure-tolerant
        multi-process variant (flat stores shine there: mmap-backed
        columns stay page-shared across forked workers).
        """
        from repro.perf.batch import sorted_batch_order

        results: list[QueryResult | None] = [None] * len(queries)
        for i in sorted_batch_order(queries):
            s, t, c = queries[i]
            results[i] = self.query(
                s, t, c, want_path=want_path, deadline=deadline
            )
        return results

    # ------------------------------------------------------------------
    def _answer(
        self,
        query: CSPQuery,
        stats: QueryStats,
        want_path: bool,
        deadline: "Deadline | None",
    ) -> QueryResult:
        s, t, budget = query
        if deadline is not None:
            deadline.check(stats)
        if s == t:
            return QueryResult(
                query, weight=0, cost=0, path=[s] if want_path else None
            )
        labels = self._labels
        weights, costs = labels.weights, labels.costs
        lca_v, s_is_anc, t_is_anc = self._lca.relation(s, t)

        # Ancestor-descendant fast path: binary search the cost column.
        if s_is_anc or t_is_anc:
            lo, hi = labels.pair_bounds(s, t)
            stats.label_lookups += 1
            idx = best_under_cols(costs, lo, hi, budget)
            if idx < 0:
                return QueryResult(query)
            return self._finish(query, weights[idx], costs[idx], want_path)

        c_s, h_s, c_t, h_t = initial_separators(self._tree, lca_v, s, t)
        candidates = candidate_separators(
            self._pruning if self.use_pruning_conditions else None,
            ((c_s, h_s), (c_t, h_t)),
            s,
            t,
            budget,
        )
        stats.candidates = len(candidates)

        fetcher = _FlatFetcher(labels, s, t)
        hoplinks = min(
            candidates, key=lambda h: _estimated_cost(fetcher, h)
        )
        stats.hoplinks = len(hoplinks)

        best_weight = _INF
        best_cost = _INF
        for h in hoplinks:
            if deadline is not None:
                deadline.check(stats)
            s_lo, s_hi = fetcher.from_s(h)
            t_lo, t_hi = fetcher.from_t(h)
            best_weight, best_cost, inspected = sweep_best_pair(
                weights, costs, s_lo, s_hi,
                weights, costs, t_lo, t_hi,
                budget, best_weight, best_cost,
            )
            stats.concatenations += inspected
        stats.label_lookups += fetcher.lookups
        if best_weight < _INF:
            return self._finish(query, best_weight, best_cost, want_path)
        return QueryResult(query)

    def _finish(
        self, query: CSPQuery, weight: float, cost: float, want_path: bool
    ) -> QueryResult:
        if want_path:
            raise ReproError(
                "flat label columns keep no provenance; path retrieval "
                "needs an object index built with store_paths=True"
            )
        return QueryResult(
            query, weight=_restore(weight), cost=_restore(cost)
        )


class _FlatFetcher:
    """Memoised per-query slice access — the flat twin of
    :class:`~repro.core.separators.LabelFetcher`.

    Returns ``(lo, hi)`` column bounds instead of entry lists; sizes
    come from the store's per-vertex hub → size dicts, so cost
    estimation touches no entry bytes at all.  Hub lookup goes through
    the store's lazily built hub → row dicts
    (:meth:`FlatLabelStore.hub_rows`) — candidate estimation probes the
    same hubs many times per query, and a per-probe binary search
    dominated the profile where the object fetcher pays one dict get.
    ``lookups`` counts unique (side, hub) bound fetches — the sets the
    concatenation phase actually reads; estimation probes only size
    dicts and is not counted.
    """

    __slots__ = (
        "_entry_offsets", "_s", "_t", "_s_rows", "_t_rows",
        "_s_sizes", "_t_sizes", "_from_s", "_from_t", "lookups",
    )

    def __init__(self, labels: FlatLabelStore, s: int, t: int):
        self._entry_offsets = labels.entry_offsets
        self._s = s
        self._t = t
        self._s_rows = labels.hub_rows(s)
        self._t_rows = labels.hub_rows(t)
        self._s_sizes = labels.hub_sizes(s)
        self._t_sizes = labels.hub_sizes(t)
        self._from_s: dict[int, tuple[int, int]] = {}
        self._from_t: dict[int, tuple[int, int]] = {}
        self.lookups = 0

    def from_s(self, h: int) -> tuple[int, int]:
        """Bounds of ``P_sh`` (always stored in ``L(s)``)."""
        bounds = self._from_s.get(h)
        if bounds is None:
            i = self._s_rows.get(h)
            if i is None:
                raise IndexBuildError(
                    f"L({self._s}) has no skyline set for hub {h}; its "
                    "tree node is not an ancestor"
                )
            offsets = self._entry_offsets
            bounds = (offsets[i], offsets[i + 1])
            self._from_s[h] = bounds
            self.lookups += 1
        return bounds

    def from_t(self, h: int) -> tuple[int, int]:
        """Bounds of ``P_ht`` (always stored in ``L(t)``)."""
        bounds = self._from_t.get(h)
        if bounds is None:
            i = self._t_rows.get(h)
            if i is None:
                raise IndexBuildError(
                    f"L({self._t}) has no skyline set for hub {h}; its "
                    "tree node is not an ancestor"
                )
            offsets = self._entry_offsets
            bounds = (offsets[i], offsets[i + 1])
            self._from_t[h] = bounds
            self.lookups += 1
        return bounds

    def pair_size(self, h: int) -> int:
        """``|P_sh| + |P_ht|`` via the store's per-vertex size dicts."""
        try:
            return self._s_sizes[h] + self._t_sizes[h]
        except KeyError as exc:
            raise IndexBuildError(
                f"neither L({self._s}) nor L({self._t}) covers hub "
                f"{h}; its tree node is not a common ancestor"
            ) from exc


def _estimated_cost(fetcher: _FlatFetcher, separator) -> int:
    """``T(H) = Σ_h (|P_sh| + |P_ht|)`` — same values as the object
    :func:`~repro.core.separators.estimated_cost`, so ``min`` picks the
    same separator.  Two dict hits per hub; the sizes come from the
    store's lazily built per-vertex dicts, so estimation touches no
    entry bytes and allocates nothing."""
    s_sizes = fetcher._s_sizes
    t_sizes = fetcher._t_sizes
    total = 0
    try:
        for h in separator:
            total += s_sizes[h] + t_sizes[h]
    except KeyError as exc:
        raise IndexBuildError(
            f"hub {h} is missing from a query label; its tree node "
            "is not a common ancestor"
        ) from exc
    return total


class FlatIndex:
    """A queryable index whose labels are flat (possibly mmap) columns.

    The flat twin of :class:`~repro.core.engine.QHLIndex`: same
    attribute names (``network`` / ``tree`` / ``labels`` / ``lca`` /
    ``pruning``), same ``query`` / ``query_many`` / ``audit`` surface,
    so the batch executor, the audit, and the CLI treat both shapes
    uniformly.  Produced by
    :func:`repro.storage.flatfile.load_flat_index` or from an object
    index via :meth:`from_index`.
    """

    def __init__(
        self,
        network: RoadNetwork,
        tree: TreeDecomposition,
        labels: FlatLabelStore,
        lca: LCAIndex,
        pruning: PruningConditionIndex,
    ):
        self.network = network
        self.tree = tree
        self.labels = labels
        self.lca = lca
        self.pruning = pruning
        self._default_engine = FlatQHLEngine(tree, labels, lca, pruning)

    @classmethod
    def from_index(cls, index: "QHLIndex") -> "FlatIndex":
        """Pack an object index's labels into a flat index.

        Tree, LCA, network, and pruning conditions are shared (they are
        read-only at query time); only the labels are re-packed.
        """
        return cls(
            index.network,
            index.tree,
            FlatLabelStore.from_store(index.labels),
            index.lca,
            index.pruning,
        )

    # ------------------------------------------------------------------
    def qhl_engine(
        self, use_pruning_conditions: bool = True
    ) -> FlatQHLEngine:
        """A flat engine over this index (the audit spot-check uses
        this name, so flat indexes audit with their own hot path)."""
        return FlatQHLEngine(
            self.tree,
            self.labels,
            self.lca,
            self.pruning,
            use_pruning_conditions=use_pruning_conditions,
        )

    # Alias so index.flat_engine() works on both index shapes.
    flat_engine = qhl_engine

    def cached_engine(self, cache_size: int = 1024):
        """A frontier cache over flat columns.

        :class:`~repro.perf.cached_engine.CachedQHLEngine` only needs
        the ``label`` / ``get`` read API, which
        :class:`FlatLabelStore` speaks — cache hits answer in
        ``O(log k)`` with zero column reads.
        """
        from repro.perf.cached_engine import CachedQHLEngine

        return CachedQHLEngine(
            self.tree, self.labels, self.lca, cache=cache_size
        )

    def query(
        self,
        source: int,
        target: int,
        budget: float,
        want_path: bool = False,
        deadline: "Deadline | None" = None,
    ) -> QueryResult:
        """Answer a CSP query with the default flat engine."""
        return self._default_engine.query(
            source, target, budget, want_path=want_path, deadline=deadline
        )

    def query_many(
        self,
        queries: Sequence,
        want_path: bool = False,
        deadline_ms: float | None = None,
        batch_deadline_ms: float | None = None,
        workers: int = 0,
    ):
        """Batched queries; with ``workers >= 2`` the forked pool reads
        the mapped columns without copying them (page sharing is the
        point of the mmap load)."""
        from repro.perf.batch import execute_batch

        return execute_batch(
            self._default_engine,
            queries,
            want_path=want_path,
            deadline_ms=deadline_ms,
            batch_deadline_ms=batch_deadline_ms,
            workers=workers,
        )

    # ------------------------------------------------------------------
    def audit(self, queries: int = 8, seed: int = 0):
        """Deep self-audit; see :func:`repro.resilience.audit.audit_index`.

        Runs the same checks as an object index — flat stores add the
        ``flat-columns`` structural check (offset monotonicity, sorted
        hubs) — and spot-checks against constrained Dijkstra through
        the flat engine.
        """
        from repro.resilience.audit import audit_index

        return audit_index(self, queries=queries, seed=seed)
