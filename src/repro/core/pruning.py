"""Pruning conditions: QHL's additional index (paper §3.3 and §4).

A *pruning condition* for a separator ``H`` and an end vertex ``v_end``
is the map ``C_ub : H → R+ ∪ {0, +inf}``.  At query time, if ``s`` (or
``t``) equals ``v_end``, every hoplink ``h`` with ``C < C_ub[h]`` is
dropped (Definition 9): Theorem 1 guarantees the optimal path can be
re-routed through the vertex ``u`` that prunes ``h``.

Construction (§4):

* Algorithm 6 (:func:`compute_cub`) — for fixed ``(v_end, h, u)``, find
  the largest ``θ`` with ``P_{v_end,h}^θ ⊆ {p1 ⊕ p2}^θ`` by a single
  merge-like scan of the skyline set against the cost-sorted
  concatenation set.
* Algorithm 7 (:func:`build_condition`) — sort the hoplinks by the
  smallest cost in ``P_{v_end,h}`` (Lemma 8: only an ``h`` with a larger
  minimum cost can be pruned, and only by a ``u`` with a smaller one) and
  try one random earlier hoplink as ``u`` per ``h``.
* §4.2 (:func:`build_pruning_index`) — conditions are built only for the
  (separator, end-vertex) combinations a workload ``Q_index`` of sampled
  queries actually visits: four combinations per query.  Pair results are
  cached: "h pruned by u under C_ub" transfers to any separator
  containing both.
"""

from __future__ import annotations

import random
import time
from typing import Iterable, Mapping, Sequence

from repro.hierarchy.lca import LCAIndex
from repro.hierarchy.tree import TreeDecomposition
from repro.labeling.labels import LabelStore
from repro.core.separators import initial_separators
from repro.skyline.compare import pairs_equal
from repro.skyline.entries import Entry
from repro.skyline.set_ops import cartesian_entries
from repro.types import CSPQuery

INF = float("inf")


def compute_cub(
    p_prime: Sequence[Entry],
    p_vu: Sequence[Entry],
    p_uh: Sequence[Entry],
    mid: int,
) -> float:
    """Algorithm 6: the upper bound ``C_ub`` for pruning ``h`` via ``u``.

    Parameters
    ----------
    p_prime:
        ``P' = P_{v_end, h}`` — canonical skyline set.
    p_vu, p_uh:
        ``P_{v_end, u}`` and ``P_{u, h}``; their concatenations form
        ``P''``.
    mid:
        The vertex ``u`` (for provenance bookkeeping only).

    Returns
    -------
    float
        ``0`` when nothing can be pruned (even the cheapest skyline path
        avoids ``u``), ``+inf`` when ``P' ⊆ P''`` (prunable for every
        budget), otherwise the cost of the first ``P'`` member missing
        from ``P''``.
    """
    p_second = cartesian_entries(p_vu, p_uh, mid)
    j = 0
    m = len(p_second)
    for entry in p_prime:
        while j < m:
            if pairs_equal(p_second[j], entry):
                break
            j += 1
        if j == m:
            return entry[1]
    return INF


class PruningConditionIndex:
    """The store of pruning conditions, keyed by (separator, end vertex).

    A separator is identified by the child vertex ``c`` whose bag defines
    it (``H = X(c)\\{c}``), so the key is ``(c, v_end)``.  Only non-zero
    upper bounds are stored; a missing hoplink means ``C_ub = 0`` (never
    pruned).
    """

    def __init__(self) -> None:
        self._conditions: dict[tuple[int, int], dict[int, float]] = {}
        self.build_seconds = 0.0
        self.algorithm6_calls = 0
        self.cache_hits = 0

    def add(
        self, child: int, v_end: int, bounds: Mapping[int, float]
    ) -> None:
        """Record the condition for separator-of-``child`` and ``v_end``."""
        self._conditions[(child, v_end)] = {
            h: ub for h, ub in bounds.items() if ub > 0
        }

    def lookup(self, child: int, v_end: int) -> dict[int, float] | None:
        """The ``C_ub`` map, or ``None`` when no condition was built."""
        return self._conditions.get((child, v_end))

    def has(self, child: int, v_end: int) -> bool:
        """Whether a condition exists for this combination."""
        return (child, v_end) in self._conditions

    @property
    def num_conditions(self) -> int:
        """Number of stored (separator, end-vertex) conditions."""
        return len(self._conditions)

    def num_bounds(self) -> int:
        """Total number of stored upper-bound values."""
        return sum(len(bounds) for bounds in self._conditions.values())

    def size_bytes(self) -> int:
        """Estimated size: 8 bytes per bound + 16 per condition header.

        This is the paper's "additional index space", shown to be within
        1% of the label size (Fig. 10b).
        """
        return self.num_bounds() * 8 + self.num_conditions * 16

    def prune(
        self, child: int, v_end: int, separator: Sequence[int], budget: float
    ) -> tuple[int, ...] | None:
        """Apply a condition (Definition 9): keep ``h`` iff
        ``C >= C_ub[h]``.

        Returns ``None`` when no condition matches ``(child, v_end)``.
        """
        bounds = self._conditions.get((child, v_end))
        if bounds is None:
            return None
        return tuple(
            h for h in separator if budget >= bounds.get(h, 0)
        )


def build_condition(
    labels: LabelStore,
    separator: Sequence[int],
    v_end: int,
    rng: random.Random,
    index: PruningConditionIndex,
    pair_cache: dict[tuple[int, int], tuple[int, float]],
) -> dict[int, float]:
    """Algorithm 7: compute ``C_ub`` for every hoplink of one separator.

    ``pair_cache`` maps ``(v_end, h)`` to an established ``(u, C_ub)``
    relationship; it is consulted before calling Algorithm 6 (§4.2's
    speed-up) and updated with new positive findings.
    """
    # Sort hoplinks by the smallest cost in P_{v_end, h} (Lemma 8).
    ordered = sorted(separator, key=lambda h: labels.get(v_end, h)[0][1])
    separator_set = set(separator)
    bounds: dict[int, float] = {}
    for i in range(1, len(ordered)):
        h = ordered[i]
        cached = pair_cache.get((v_end, h))
        if cached is not None and cached[0] in separator_set:
            index.cache_hits += 1
            bounds[h] = cached[1]
            continue
        u = ordered[rng.randrange(i)]
        cub = compute_cub(
            labels.get(v_end, h),
            labels.get(v_end, u),
            labels.get(u, h),
            mid=u,
        )
        index.algorithm6_calls += 1
        if cub > 0:
            bounds[h] = cub
            pair_cache[(v_end, h)] = (u, cub)
    return bounds


def build_pruning_index(
    tree: TreeDecomposition,
    labels: LabelStore,
    lca: LCAIndex,
    index_queries: Iterable[CSPQuery],
    seed: int = 0,
) -> PruningConditionIndex:
    """§4.2: build conditions for the combinations ``Q_index`` visits.

    For each sampled query with no ancestor-descendant relationship, the
    four combinations ``(H(s), s)``, ``(H(s), t)``, ``(H(t), s)``,
    ``(H(t), t)`` get a condition (if not already built).
    """
    started = time.perf_counter()
    rng = random.Random(seed)
    index = PruningConditionIndex()
    pair_cache: dict[tuple[int, int], tuple[int, float]] = {}

    for query in index_queries:
        s, t = query.source, query.target
        if s == t:
            continue
        lca_v, s_is_anc, t_is_anc = lca.relation(s, t)
        if s_is_anc or t_is_anc:
            continue
        c_s, h_s, c_t, h_t = initial_separators(tree, lca_v, s, t)
        for child, separator in ((c_s, h_s), (c_t, h_t)):
            if len(separator) < 2:
                continue  # a single hoplink can never be pruned
            for v_end in (s, t):
                if index.has(child, v_end):
                    continue
                bounds = build_condition(
                    labels, separator, v_end, rng, index, pair_cache
                )
                index.add(child, v_end, bounds)

    index.build_seconds = time.perf_counter() - started
    return index
