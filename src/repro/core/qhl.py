"""The QHL query algorithm (paper §3, Algorithm 3).

Pipeline for a non-ancestor-descendant query ``(s, t, C)``:

1. **Separator initialisation** (§3.2) — candidates ``H(s)``, ``H(t)``
   from the LCA's children, both subsets of ``X(l)``.
2. **Separator pruning** (§3.3, Algorithm 4) — each candidate that has a
   matching pruning condition (``v_end ∈ {s, t}``) is replaced by its
   pruned variant(s); each variant applies a *single* end-vertex's
   condition (mixing two conditions in one candidate could create pruning
   cycles and lose the answer — see DESIGN.md §5).  |H| ends up 2..4.
3. **Hoplink selection** — the candidate with the smallest estimated cost
   ``T(H) = Σ_h (|P_sh| + |P_ht|)`` becomes ``Hoplinks``.
4. **Path concatenation** (§3.4, Algorithm 5) — a two-pointer sweep per
   hoplink; the best ``p*_h`` across hoplinks is the answer.

Ablation switches reproduce the paper's Figure 8 variants:
``use_pruning_conditions=False`` ("QHL-w/o Alg. 3/4") skips step 2;
``use_two_pointer=False`` ("QHL-w/o Alg. 4/5") replaces the sweep with the
Cartesian product.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.core.concatenation import (
    concat_best_under,
    concat_cartesian,
    rejoin_with_mid,
)
from repro.core.pruning import PruningConditionIndex
from repro.core.separators import (
    LabelFetcher,
    estimated_cost,
    initial_separators,
)
from repro.hierarchy.lca import LCAIndex
from repro.hierarchy.tree import TreeDecomposition
from repro.labeling.labels import LabelStore
from repro.observability.metrics import get_registry, observe_query
from repro.observability.tracing import SpanTracer, get_tracer
from repro.skyline.entries import Entry, expand
from repro.skyline.set_ops import best_under
from repro.types import CSPQuery, QueryResult, QueryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.deadline import Deadline


class QHLEngine:
    """Query-aware hop labeling engine over a shared label index."""

    name = "QHL"

    def __init__(
        self,
        tree: TreeDecomposition,
        labels: LabelStore,
        lca: LCAIndex | None = None,
        pruning: PruningConditionIndex | None = None,
        use_pruning_conditions: bool = True,
        use_two_pointer: bool = True,
    ):
        self._tree = tree
        self._labels = labels
        self._lca = lca if lca is not None else LCAIndex(tree)
        self._pruning = pruning
        self.use_pruning_conditions = use_pruning_conditions and (
            pruning is not None
        )
        self.use_two_pointer = use_two_pointer

    # ------------------------------------------------------------------
    def query(
        self,
        source: int,
        target: int,
        budget: float,
        want_path: bool = False,
        deadline: "Deadline | None" = None,
    ) -> QueryResult:
        """Answer one CSP query exactly (Algorithm 3).

        ``deadline`` (a :class:`~repro.service.deadline.Deadline`) is
        checked cooperatively in the hoplink loop; on expiry a
        :class:`~repro.exceptions.DeadlineExceededError` carries the
        partial stats.
        """
        query = CSPQuery(source, target, budget).validated(
            self._tree.num_vertices
        )
        stats = QueryStats()
        tracer = get_tracer()
        registry = get_registry()
        if not (tracer.enabled or registry.enabled):
            started = time.perf_counter()
            result = self._answer(query, stats, want_path, deadline)
            stats.seconds = time.perf_counter() - started
            result.stats = stats
            return result
        if not tracer.enabled:
            # Metrics-only mode: a throwaway tracer collects the phase
            # durations the per-phase histograms need.
            tracer = SpanTracer()
        started = time.perf_counter()
        with tracer.span("qhl.query") as root:
            result = self._answer_traced(
                query, stats, want_path, tracer, deadline
            )
        stats.seconds = time.perf_counter() - started
        root.set("hoplinks", stats.hoplinks)
        root.set("concatenations", stats.concatenations)
        root.set("label_lookups", stats.label_lookups)
        root.set("candidates", stats.candidates)
        if registry.enabled:
            observe_query(registry, self.name, stats, root.children)
        result.stats = stats
        return result

    # ------------------------------------------------------------------
    def query_many(
        self,
        queries,
        want_path: bool = False,
        deadline: "Deadline | None" = None,
    ) -> list[QueryResult]:
        """Answer a batch of queries, sharing per-pair initialisation.

        The batch is executed in cache-friendly order (sorted by
        normalised pair, see :func:`repro.perf.batch.
        sorted_batch_order`) and consecutive queries on the same
        ``(s, t)`` pair share one LCA lookup, one separator
        initialisation, and one :class:`~repro.core.separators.
        LabelFetcher` — only the budget-dependent steps (condition
        pruning, hoplink selection, concatenation) run per query.
        Results come back in the *input* order, each carrying the same
        answer (``weight``/``cost``/``path``) as a standalone
        :meth:`query`; only the operation counters differ on repeated
        pairs (shared label lookups are counted once).  ``deadline``
        (shared across the batch) is checked per query and inside each
        hoplink loop.
        """
        from repro.perf.batch import sorted_batch_order

        results: list[QueryResult | None] = [None] * len(queries)
        shared_key: tuple[int, int] | None = None
        shared: tuple | None = None
        for i in sorted_batch_order(queries):
            s, t, budget = queries[i]
            query = CSPQuery(s, t, budget).validated(
                self._tree.num_vertices
            )
            stats = QueryStats()
            started = time.perf_counter()
            if deadline is not None:
                deadline.check(stats)
            if s == t:
                result = QueryResult(
                    query, weight=0, cost=0,
                    path=[s] if want_path else None,
                )
            else:
                if shared_key != (s, t):
                    shared_key = (s, t)
                    shared = self._pair_context(s, t)
                result = self._answer_with_context(
                    query, stats, want_path, shared, deadline
                )
            stats.seconds = time.perf_counter() - started
            result.stats = stats
            results[i] = result
        registry = get_registry()
        if registry.enabled:
            for result in results:  # lint: allow=QHL001 metrics flush after the batch is answered; aborting here would drop finished results
                observe_query(registry, self.name, result.stats)
        return results

    def _pair_context(self, s: int, t: int) -> tuple:
        """The budget-independent query state shared across a pair."""
        lca_v, s_is_anc, t_is_anc = self._lca.relation(s, t)
        if s_is_anc or t_is_anc:
            return (True, None, None, None)
        c_s, h_s, c_t, h_t = initial_separators(self._tree, lca_v, s, t)
        fetcher = LabelFetcher(self._labels, s, t)
        return (False, ((c_s, h_s), (c_t, h_t)), fetcher, None)

    def _answer_with_context(
        self,
        query: CSPQuery,
        stats: QueryStats,
        want_path: bool,
        shared: tuple,
        deadline: "Deadline | None",
    ) -> QueryResult:
        """The budget-dependent tail of :meth:`_answer`.

        Mirrors ``_answer`` exactly from the candidate-pruning step on;
        the ancestor fast path re-reads the label per query (it is one
        dict lookup — nothing worth sharing).
        """
        s, t, budget = query
        is_ancestor, initial, fetcher, _ = shared
        if is_ancestor:
            entries = self._labels.get(s, t)
            stats.label_lookups += 1
            best = best_under(entries, budget)
            return self._finish(query, best, s, t, want_path)

        candidates = self._candidate_separators(initial, s, t, budget)
        stats.candidates = len(candidates)
        lookups_before = fetcher.lookups
        hoplinks = min(
            candidates, key=lambda h: estimated_cost(fetcher, h)
        )
        stats.hoplinks = len(hoplinks)
        concat = (
            concat_best_under if self.use_two_pointer else concat_cartesian
        )
        best: Entry | None = None
        best_hop = -1
        for h in hoplinks:
            if deadline is not None:
                deadline.check(stats)
            p_sh = fetcher.from_s(h)
            p_ht = fetcher.from_t(h)
            prune = (best[0], best[1]) if best is not None else None
            found, inspected = concat(p_sh, p_ht, budget, prune=prune)
            stats.concatenations += inspected
            if found is not None:
                best = found
                best_hop = h
        stats.label_lookups += fetcher.lookups - lookups_before
        if best is not None:
            best = rejoin_with_mid(best, best_hop)
        return self._finish(query, best, s, t, want_path)

    # ------------------------------------------------------------------
    def _answer(
        self,
        query: CSPQuery,
        stats: QueryStats,
        want_path: bool,
        deadline: "Deadline | None" = None,
    ) -> QueryResult:
        s, t, budget = query
        if deadline is not None:
            deadline.check(stats)
        if s == t:
            return QueryResult(
                query, weight=0, cost=0, path=[s] if want_path else None
            )
        lca_v, s_is_anc, t_is_anc = self._lca.relation(s, t)

        # Lines 2-5: ancestor-descendant fast path (as in CSP-2Hop).
        if s_is_anc or t_is_anc:
            entries = self._labels.get(s, t)
            stats.label_lookups += 1
            best = best_under(entries, budget)
            return self._finish(query, best, s, t, want_path)

        # Line 7: initial separators.
        c_s, h_s, c_t, h_t = initial_separators(self._tree, lca_v, s, t)

        # Line 8: separator pruning (Algorithm 4 per initial separator).
        candidates = self._candidate_separators(
            ((c_s, h_s), (c_t, h_t)), s, t, budget
        )
        stats.candidates = len(candidates)

        # Line 9: pick the candidate with the smallest estimated cost.
        fetcher = LabelFetcher(self._labels, s, t)
        hoplinks = min(
            candidates, key=lambda h: estimated_cost(fetcher, h)
        )
        stats.hoplinks = len(hoplinks)

        # Lines 10-12: per-hoplink concatenation.
        concat = (
            concat_best_under if self.use_two_pointer else concat_cartesian
        )
        best: Entry | None = None
        best_hop = -1
        for h in hoplinks:
            if deadline is not None:
                deadline.check(stats)
            p_sh = fetcher.from_s(h)
            p_ht = fetcher.from_t(h)
            prune = (best[0], best[1]) if best is not None else None
            found, inspected = concat(p_sh, p_ht, budget, prune=prune)
            stats.concatenations += inspected
            if found is not None:
                # concat only returns entries better than `prune`.
                best = found
                best_hop = h
        stats.label_lookups += fetcher.lookups
        if best is not None:
            best = rejoin_with_mid(best, best_hop)
        return self._finish(query, best, s, t, want_path)

    # ------------------------------------------------------------------
    def _answer_traced(
        self,
        query: CSPQuery,
        stats: QueryStats,
        want_path: bool,
        tracer: SpanTracer,
        deadline: "Deadline | None" = None,
    ) -> QueryResult:
        """:meth:`_answer` with each pipeline phase wrapped in a span.

        Kept separate so the untraced hot path stays branch-free; the
        phase structure mirrors ``_answer`` line for line.
        """
        s, t, budget = query
        if deadline is not None:
            deadline.check(stats)
        if s == t:
            return QueryResult(
                query, weight=0, cost=0, path=[s] if want_path else None
            )
        with tracer.span("lca"):
            lca_v, s_is_anc, t_is_anc = self._lca.relation(s, t)

        if s_is_anc or t_is_anc:
            with tracer.span("label-lookup") as span:
                entries = self._labels.get(s, t)
                stats.label_lookups += 1
                best = best_under(entries, budget)
                span.set("entries", len(entries))
            return self._finish(query, best, s, t, want_path)

        with tracer.span("separator-init") as span:
            c_s, h_s, c_t, h_t = initial_separators(self._tree, lca_v, s, t)
            span.set("separator_sizes", len(h_s) + len(h_t))

        with tracer.span("pruning") as span:
            candidates = self._candidate_separators(
                ((c_s, h_s), (c_t, h_t)), s, t, budget
            )
            stats.candidates = len(candidates)
            span.set("candidates", len(candidates))

        with tracer.span("hoplink-select") as span:
            fetcher = LabelFetcher(self._labels, s, t)
            hoplinks = min(
                candidates, key=lambda h: estimated_cost(fetcher, h)
            )
            stats.hoplinks = len(hoplinks)
            span.set("hoplinks", len(hoplinks))

        with tracer.span("concatenation") as span:
            concat = (
                concat_best_under
                if self.use_two_pointer
                else concat_cartesian
            )
            best = None
            best_hop = -1
            for h in hoplinks:
                if deadline is not None:
                    deadline.check(stats)
                with tracer.span("hoplink") as hop_span:
                    p_sh = fetcher.from_s(h)
                    p_ht = fetcher.from_t(h)
                    prune = (best[0], best[1]) if best is not None else None
                    found, inspected = concat(p_sh, p_ht, budget, prune=prune)
                    stats.concatenations += inspected
                    hop_span.set("hub", h)
                    hop_span.set("size_sh", len(p_sh))
                    hop_span.set("size_ht", len(p_ht))
                    hop_span.set("inspected", inspected)
                if found is not None:
                    best = found
                    best_hop = h
            stats.label_lookups += fetcher.lookups
            span.set("hoplinks", stats.hoplinks)
            span.set("concatenations", stats.concatenations)
            span.set("label_lookups", fetcher.lookups)
        if best is not None:
            best = rejoin_with_mid(best, best_hop)
        return self._finish(query, best, s, t, want_path)

    # ------------------------------------------------------------------
    def explain(self, source: int, target: int, budget: float):
        """Re-run the query recording every planning decision.

        Returns a :class:`repro.core.explain.QueryExplanation`; its
        ``render()`` produces the paper's Example-10-to-15 style
        narration for any query.
        """
        from repro.core.explain import (
            ConditionApplication,
            HoplinkWork,
            QueryExplanation,
        )

        query = CSPQuery(source, target, budget).validated(
            self._tree.num_vertices
        )
        s, t, _ = query
        if s == t:
            return QueryExplanation(query, "same-vertex", answer=(0, 0))
        lca_v, s_is_anc, t_is_anc = self._lca.relation(s, t)
        if s_is_anc or t_is_anc:
            best = best_under(self._labels.get(s, t), budget)
            return QueryExplanation(
                query,
                "ancestor-descendant",
                lca=lca_v,
                answer=(best[0], best[1]) if best else None,
            )

        trace = QueryExplanation(query, "separator", lca=lca_v)
        c_s, h_s, c_t, h_t = initial_separators(self._tree, lca_v, s, t)
        trace.initial_separators = [(c_s, tuple(h_s)), (c_t, tuple(h_t))]

        if self.use_pruning_conditions:
            for child, separator in trace.initial_separators:
                for v_end in (s, t):
                    pruned = self._pruning.prune(
                        child, v_end, separator, budget
                    )
                    if pruned is not None and pruned != tuple(separator):
                        trace.conditions.append(
                            ConditionApplication(
                                child, v_end, tuple(separator), pruned
                            )
                        )

        candidates = self._candidate_separators(
            trace.initial_separators, s, t, budget
        )
        fetcher = LabelFetcher(self._labels, s, t)
        trace.candidates = [
            (sep, estimated_cost(fetcher, sep)) for sep in candidates
        ]
        trace.chosen = min(trace.candidates, key=lambda item: item[1])[0]

        concat = (
            concat_best_under if self.use_two_pointer else concat_cartesian
        )
        best: Entry | None = None
        for h in trace.chosen:
            p_sh = fetcher.from_s(h)
            p_ht = fetcher.from_t(h)
            prune = (best[0], best[1]) if best is not None else None
            found, inspected = concat(p_sh, p_ht, budget, prune=prune)
            trace.hoplinks.append(
                HoplinkWork(
                    h, len(p_sh), len(p_ht), inspected,
                    (found[0], found[1]) if found else None,
                )
            )
            if found is not None:
                best = found
        trace.answer = (best[0], best[1]) if best else None
        return trace

    # ------------------------------------------------------------------
    def _candidate_separators(
        self,
        initial: tuple[tuple[int, tuple[int, ...]], ...],
        s: int,
        t: int,
        budget: float,
    ) -> list[tuple[int, ...]]:
        return candidate_separators(
            self._pruning if self.use_pruning_conditions else None,
            initial,
            s,
            t,
            budget,
        )

    # ------------------------------------------------------------------
    def _finish(
        self,
        query: CSPQuery,
        best: Entry | None,
        s: int,
        t: int,
        want_path: bool,
    ) -> QueryResult:
        if best is None:
            return QueryResult(query)
        path = expand(best, s, t) if want_path else None
        return QueryResult(query, weight=best[0], cost=best[1], path=path)


def candidate_separators(
    pruning: PruningConditionIndex | None,
    initial: tuple[tuple[int, tuple[int, ...]], ...],
    s: int,
    t: int,
    budget: float,
) -> list[tuple[int, ...]]:
    """Algorithm 4, applied to each initial separator.

    Per separator: if a condition matches ``s`` and/or ``t``, its pruned
    variant(s) replace the original; otherwise the original stays.
    Result size is 2..4.  ``pruning=None`` skips condition pruning (the
    Figure 8 ablation).

    Shared by :class:`QHLEngine` and the flat engine
    (:class:`~repro.core.flat.FlatQHLEngine`): candidate *order* feeds
    the ``min``-by-estimated-cost hoplink choice, so one implementation
    guarantees both engines pick the same separator on ties.
    """
    candidates: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()
    for child, separator in initial:
        if pruning is not None:
            pruned_any = False
            for v_end in (s, t):
                pruned = pruning.prune(child, v_end, separator, budget)
                # Corollary 1 guarantees a pruned separator is never
                # empty; the emptiness check is a defensive guard so
                # a bad condition could only cost speed, not answers.
                if pruned and pruned not in seen:
                    candidates.append(pruned)
                    seen.add(pruned)
                    pruned_any = True
            if pruned_any:
                continue
        separator = tuple(separator)
        if separator not in seen:
            candidates.append(separator)
            seen.add(separator)
    return candidates
