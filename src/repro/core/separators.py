"""Separator initialisation and cost estimation (paper §3.2, Alg. 3 l.9).

For a non-ancestor query QHL does not use the LCA bag ``X(l)`` directly.
Let ``X(c_s)`` / ``X(c_t)`` be the children of ``X(l)`` on the branches
containing ``X(s)`` / ``X(t)``.  Then ``H(s) = X(c_s)\\{c_s}`` and
``H(t) = X(c_t)\\{c_t}`` are both *feasible* separators (every member's
tree node is an ancestor-or-self of ``X(l)``, hence an ancestor of both
``X(s)`` and ``X(t)``, so both labels hold the needed skyline sets) and
both are subsets of ``X(l)`` (Property 2) — usually strict ones.

The estimated execution cost of using a separator ``H`` as the hoplinks
is ``T(H) = Σ_{h∈H} (|P_sh| + |P_ht|)``, matching the linear per-hoplink
concatenation of Algorithm 5.
"""

from __future__ import annotations

from typing import Sequence

from repro.hierarchy.tree import TreeDecomposition
from repro.labeling.labels import LabelStore
from repro.skyline.set_ops import SkylineSet


def initial_separators(
    tree: TreeDecomposition, lca: int, s: int, t: int
) -> tuple[int, tuple[int, ...], int, tuple[int, ...]]:
    """``(c_s, H(s), c_t, H(t))`` for a non-ancestor-descendant query."""
    c_s = tree.child_towards(lca, s)
    c_t = tree.child_towards(lca, t)
    return c_s, tree.bag[c_s], c_t, tree.bag[c_t]


class LabelFetcher:
    """Memoised per-query access to ``P_sh`` / ``P_ht``.

    Cost estimation touches every hoplink of every candidate separator;
    the final concatenation touches the winner's again.  Memoising keeps
    the label-lookup count at one per (side, hub) — and reports that
    count for the stats the paper plots.
    """

    __slots__ = (
        "_label_s", "_label_t", "_from_s", "_from_t", "_sizes", "lookups"
    )

    def __init__(self, labels: LabelStore, s: int, t: int):
        # Every hoplink's tree node is an ancestor of both X(s) and
        # X(t), so P_sh always sits in L(s) and P_ht in L(t) — no
        # symmetric-lookup fallback needed on the query hot path.
        self._label_s = labels.label(s)
        self._label_t = labels.label(t)
        self._from_s: dict[int, SkylineSet] = {}
        self._from_t: dict[int, SkylineSet] = {}
        self._sizes: dict[int, int] = {}
        self.lookups = 0

    def from_s(self, h: int) -> SkylineSet:
        """``P_sh``."""
        entries = self._from_s.get(h)
        if entries is None:
            entries = self._label_s[h]
            self._from_s[h] = entries
            self.lookups += 1
        return entries

    def from_t(self, h: int) -> SkylineSet:
        """``P_ht``."""
        entries = self._from_t.get(h)
        if entries is None:
            entries = self._label_t[h]
            self._from_t[h] = entries
            self.lookups += 1
        return entries

    def pair_size(self, h: int) -> int:
        """``|P_sh| + |P_ht|`` — memoised, as candidates overlap."""
        size = self._sizes.get(h)
        if size is None:
            size = len(self.from_s(h)) + len(self.from_t(h))
            self._sizes[h] = size
        return size


def estimated_cost(fetcher: LabelFetcher, separator: Sequence[int]) -> int:
    """``T(H) = Σ_h (|P_sh| + |P_ht|)`` (Algorithm 3, line 9)."""
    pair_size = fetcher.pair_size
    return sum(pair_size(h) for h in separator)
