"""Named synthetic stand-ins for the paper's DIMACS road networks."""

from repro.datasets.catalog import (
    DATASET_NAMES,
    Dataset,
    load_all,
    load_dataset,
)
from repro.datasets.paper_example import (
    NUM_PAPER_VERTICES,
    PAPER_EDGES,
    paper_figure1_network,
    v,
)

__all__ = [
    "DATASET_NAMES",
    "Dataset",
    "NUM_PAPER_VERTICES",
    "PAPER_EDGES",
    "load_all",
    "load_dataset",
    "paper_figure1_network",
    "v",
]
