"""Named synthetic datasets standing in for the paper's DIMACS networks.

The paper evaluates on NY (264k vertices, dense grid-like), BAY (321k,
ring around the bays, few route alternatives) and COL (436k, very dense
around Denver).  Pure Python cannot build 26-149 GB label indexes, so
each dataset here is a scaled-down generator configuration reproducing
the *structural* property that drives the paper's results (DESIGN.md §3).

Two scales per dataset:

* ``"benchmark"`` — used by the ``benchmarks/`` suite; a few hundred to a
  couple thousand vertices, index builds in seconds.
* ``"small"`` — used by tests; builds in well under a second.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ReproError
from repro.graph.generators import (
    dense_core_network,
    grid_network,
    ring_network,
)
from repro.graph.network import RoadNetwork


@dataclass
class Dataset:
    """A named network plus its provenance description."""

    name: str
    network: RoadNetwork
    description: str


_BUILDERS = {
    ("NY", "benchmark"): lambda: grid_network(
        26, 26, seed=11, diagonal_prob=0.12
    ),
    ("NY", "small"): lambda: grid_network(
        12, 12, seed=11, diagonal_prob=0.12
    ),
    ("BAY", "benchmark"): lambda: ring_network(
        num_towns=18, town_rows=6, town_cols=6, num_bridges=8, seed=12
    ),
    ("BAY", "small"): lambda: ring_network(
        num_towns=8, town_rows=3, town_cols=3, num_bridges=2, seed=12
    ),
    ("COL", "benchmark"): lambda: dense_core_network(
        core_rows=22, core_cols=22, num_corridors=10,
        corridor_length=20, seed=13,
    ),
    ("COL", "small"): lambda: dense_core_network(
        core_rows=8, core_cols=8, num_corridors=4,
        corridor_length=6, seed=13,
    ),
}

_DESCRIPTIONS = {
    "NY": "dense grid with diagonal shortcuts (New York City stand-in)",
    "BAY": "towns on a coastal ring with a few bridges (SF Bay stand-in)",
    "COL": "very dense core with sparse corridors (Colorado stand-in)",
}

DATASET_NAMES = ("NY", "BAY", "COL")


def load_dataset(name: str, scale: str = "benchmark") -> Dataset:
    """Load a named dataset at the given scale.

    Raises
    ------
    ReproError
        For an unknown name or scale.
    """
    key = (name.upper(), scale)
    builder = _BUILDERS.get(key)
    if builder is None:
        raise ReproError(
            f"unknown dataset {name!r} at scale {scale!r}; datasets: "
            f"{DATASET_NAMES}, scales: ('benchmark', 'small')"
        )
    return Dataset(
        name=name.upper(),
        network=builder(),
        description=_DESCRIPTIONS[name.upper()],
    )


def load_all(scale: str = "benchmark") -> list[Dataset]:
    """All three datasets in paper order."""
    return [load_dataset(name, scale) for name in DATASET_NAMES]
