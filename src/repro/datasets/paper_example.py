"""The paper's Figure 1 running example, reconstructed.

The paper never lists its edge-to-metric mapping outright, but the worked
examples over-determine most of it.  The assignment below satisfies every
numeric claim in the paper:

* ``w((v8, v3)) = 2, c = 4`` (Example 1);
* ``P_v8v9 = {(8,7) via v3, (7,8) via v2}`` (Examples 3-4);
* path ``(v8, v1, v13, v11, v10, v9)`` has pair ``(14, 18)`` (Example 3);
* ``P_v8v4 = {(18,12), (17,13), (16,18)}`` and the answer to the query
  ``(v8, v4, C=13)`` is ``(17, 13)`` via ``(v8,v2,v9,v10,v5,v4)``
  (Examples 2 and 5);
* ``P_v8v13 = {(12,11), (11,12), (10,14)}``, ``P_v8v10 = {(9,8), (8,9)}``,
  ``P_v10v13 = {(3,3)}``, ``P_v10v4 = {(9,4), (8,9)}`` (Examples 14-16);
* Algorithm 6 yields ``C_ub = 14`` for pruning ``v13`` by ``v10`` with
  ``v_end = v8`` (Examples 12 and 16);
* min-degree elimination with ties broken by vertex id reproduces the
  paper's Figure 3 tree decomposition exactly (Example 6), including
  ``X(v10) = {v10, v11, v12, v13}`` as LCA bag for ``(v8, v4)``
  (Example 8) and ``H(s) = {v10, v13}``, ``H(t) = {v10, v12}``
  (Example 11);
* the query of Example 10/15 costs QHL exactly 3 path concatenations.

Vertices are 0-based here: paper ``v1`` is vertex ``0`` … ``v13`` is
``12``; use :func:`v` to translate.
"""

from __future__ import annotations

from repro.graph.network import RoadNetwork

PAPER_EDGES = (
    # (paper u, paper v, weight, cost) — 1-based vertex names
    (1, 8, 2, 5),
    (1, 13, 8, 9),
    (2, 8, 1, 6),
    (2, 9, 6, 2),
    (3, 8, 2, 4),
    (3, 9, 6, 3),
    (4, 5, 5, 2),
    (4, 12, 1, 2),
    (5, 10, 4, 2),
    (6, 11, 2, 1),
    (6, 12, 3, 4),
    (7, 10, 3, 2),
    (7, 11, 2, 3),
    (9, 10, 1, 1),
    (10, 11, 2, 2),
    (11, 13, 1, 1),
    (12, 13, 7, 6),
)

NUM_PAPER_VERTICES = 13


def v(paper_id: int) -> int:
    """Translate a paper vertex name (``v1``.. ``v13``) to a vertex id."""
    if not 1 <= paper_id <= NUM_PAPER_VERTICES:
        raise ValueError(f"the paper example has v1..v13, got v{paper_id}")
    return paper_id - 1


def paper_figure1_network() -> RoadNetwork:
    """The 13-vertex road network of Figure 1 (0-based vertex ids)."""
    network = RoadNetwork(NUM_PAPER_VERTICES)
    for pu, pv, weight, cost in PAPER_EDGES:
        network.add_edge(v(pu), v(pv), weight, cost)
    return network
