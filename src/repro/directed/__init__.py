"""Directed-graph extension of QHL/CSP-2Hop (paper §2.3's deferral to
[20]): one-way streets, per-direction metrics, two-directional labels."""

from repro.directed.baselines import (
    directed_constrained_dijkstra,
    directed_skyline_search,
)
from repro.directed.engine import (
    DirectedCSP2HopEngine,
    DirectedQHLEngine,
    DirectedQHLIndex,
    build_directed_pruning,
)
from repro.directed.index import (
    DirectedLabelStore,
    build_directed_labels,
    build_directed_tree,
)
from repro.directed.network import (
    DirectedRoadNetwork,
    directed_from_undirected,
)

__all__ = [
    "DirectedCSP2HopEngine",
    "DirectedLabelStore",
    "DirectedQHLEngine",
    "DirectedQHLIndex",
    "DirectedRoadNetwork",
    "build_directed_labels",
    "build_directed_pruning",
    "build_directed_tree",
    "directed_constrained_dijkstra",
    "directed_from_undirected",
    "directed_skyline_search",
]
