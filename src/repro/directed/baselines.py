"""Index-free exact baselines for directed networks (ground truth)."""

from __future__ import annotations

import heapq

from repro.directed.network import DirectedRoadNetwork
from repro.skyline.set_ops import SkylineSet
from repro.types import CSPQuery, QueryResult, QueryStats


def directed_constrained_dijkstra(
    network: DirectedRoadNetwork, source: int, target: int, budget: float
) -> QueryResult:
    """Exact directed CSP via bi-criteria label setting."""
    query = CSPQuery(source, target, budget).validated(network.num_vertices)
    stats = QueryStats()
    if source == target:
        return QueryResult(query, weight=0, cost=0, stats=stats)

    frontier: list[list[tuple[float, float]]] = [
        [] for _ in range(network.num_vertices)
    ]

    def dominated(v, w, c):
        return any(fw <= w and fc <= c for fw, fc in frontier[v])

    def insert(v, w, c):
        frontier[v] = [
            (fw, fc) for fw, fc in frontier[v] if not (w <= fw and c <= fc)
        ]
        frontier[v].append((w, c))

    heap: list[tuple[float, float, int]] = [(0, 0, source)]
    while heap:
        w, c, v = heapq.heappop(heap)
        if v == target:
            return QueryResult(query, weight=w, cost=c, stats=stats)
        if dominated(v, w, c) and (w, c) not in frontier[v]:
            continue
        for head, aw, ac in network.out_neighbors(v):
            nw, nc = w + aw, c + ac
            if nc > budget or dominated(head, nw, nc):
                continue
            insert(head, nw, nc)
            stats.concatenations += 1
            heapq.heappush(heap, (nw, nc, head))
    return QueryResult(query, stats=stats)


def directed_skyline_search(
    network: DirectedRoadNetwork, source: int
) -> list[SkylineSet]:
    """Skyline sets of directed paths from ``source`` to every vertex."""
    n = network.num_vertices
    frontiers: list[SkylineSet] = [[] for _ in range(n)]
    heap: list[tuple[float, float, int]] = [(0, 0, source)]
    while heap:
        c, w, v = heapq.heappop(heap)
        frontier = frontiers[v]
        if frontier and frontier[-1][0] <= w:
            continue
        frontier.append((w, c, None))
        for head, aw, ac in network.out_neighbors(v):
            nw, nc = w + aw, c + ac
            head_frontier = frontiers[head]
            if head_frontier and head_frontier[-1][0] <= nw:
                continue
            heapq.heappush(heap, (nc, nw, head))
    return frontiers
