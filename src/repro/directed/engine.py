"""Directed QHL and CSP-2Hop query engines.

Identical pipeline to the undirected engines, with label lookups split
by direction: a hoplink ``h`` contributes ``P(s→h) ⊗ P(h→t)``, where
``P(s→h)`` is the *forward* set in ``L(s)`` and ``P(h→t)`` the
*backward* set in ``L(t)``.

Pruning conditions gain a *role*: a condition learned for ``v_end`` as
a **source** (``P(v_end→h) ⊆ P(v_end→u) ⊗ P(u→h)``) only fires when the
query's ``s`` equals ``v_end``; a **target**-role condition
(``P(h→v_end) ⊆ P(h→u) ⊗ P(u→v_end)``) only fires on matching ``t``.
Theorem 1's redirect argument goes through unchanged per role.
"""

from __future__ import annotations

import random
import time
from typing import Iterable

from repro.core.concatenation import (
    concat_best_under,
    concat_cartesian,
    rejoin_with_mid,
)
from repro.core.pruning import PruningConditionIndex, compute_cub
from repro.core.separators import initial_separators
from repro.directed.index import (
    DirectedLabelStore,
    build_directed_labels,
    build_directed_tree,
)
from repro.directed.network import DirectedRoadNetwork
from repro.hierarchy.lca import LCAIndex
from repro.hierarchy.tree import TreeDecomposition
from repro.skyline.entries import Entry, expand, join_entry
from repro.skyline.set_ops import best_under
from repro.types import CSPQuery, QueryResult, QueryStats


class DirectedCSP2HopEngine:
    """Algorithm 2 over a directed label index."""

    name = "CSP-2Hop(directed)"

    def __init__(
        self,
        tree: TreeDecomposition,
        labels: DirectedLabelStore,
        lca: LCAIndex | None = None,
    ):
        self._tree = tree
        self._labels = labels
        self._lca = lca if lca is not None else LCAIndex(tree)

    def query(
        self, source: int, target: int, budget: float,
        want_path: bool = False,
    ) -> QueryResult:
        query = CSPQuery(source, target, budget).validated(
            self._tree.num_vertices
        )
        stats = QueryStats()
        started = time.perf_counter()
        result = self._answer(query, stats, want_path)
        stats.seconds = time.perf_counter() - started
        result.stats = stats
        return result

    def _answer(
        self, query: CSPQuery, stats: QueryStats, want_path: bool
    ) -> QueryResult:
        s, t, budget = query
        if s == t:
            return QueryResult(
                query, weight=0, cost=0, path=[s] if want_path else None
            )
        lca, s_is_anc, t_is_anc = self._lca.relation(s, t)
        if s_is_anc or t_is_anc:
            entries = self._labels.forward(s, t)
            stats.label_lookups += 1
            best = best_under(entries, budget)
            return _finish(query, best, want_path)

        hoplinks = self._tree.bag_with_self(lca)
        stats.hoplinks = len(hoplinks)
        label_s = self._labels.label(s)
        label_t = self._labels.label(t)
        best: Entry | None = None
        for h in hoplinks:
            p_sh = label_s[h][0]   # s -> h
            p_ht = label_t[h][1]   # h -> t
            stats.label_lookups += 2
            for p1 in p_sh:
                w1, c1 = p1[0], p1[1]
                for p2 in p_ht:
                    stats.concatenations += 1
                    total_c = c1 + p2[1]
                    if total_c > budget:
                        continue
                    total_w = w1 + p2[0]
                    if best is None or (total_w, total_c) < (
                        best[0], best[1]
                    ):
                        best = join_entry(p1, p2, mid=h)
        return _finish(query, best, want_path)


class DirectedQHLEngine:
    """Algorithm 3 over a directed label index."""

    name = "QHL(directed)"

    def __init__(
        self,
        tree: TreeDecomposition,
        labels: DirectedLabelStore,
        lca: LCAIndex | None = None,
        pruning_source: PruningConditionIndex | None = None,
        pruning_target: PruningConditionIndex | None = None,
        use_pruning_conditions: bool = True,
        use_two_pointer: bool = True,
    ):
        self._tree = tree
        self._labels = labels
        self._lca = lca if lca is not None else LCAIndex(tree)
        self._pruning_source = pruning_source
        self._pruning_target = pruning_target
        self.use_pruning_conditions = use_pruning_conditions and (
            pruning_source is not None and pruning_target is not None
        )
        self.use_two_pointer = use_two_pointer

    def query(
        self, source: int, target: int, budget: float,
        want_path: bool = False,
    ) -> QueryResult:
        query = CSPQuery(source, target, budget).validated(
            self._tree.num_vertices
        )
        stats = QueryStats()
        started = time.perf_counter()
        result = self._answer(query, stats, want_path)
        stats.seconds = time.perf_counter() - started
        result.stats = stats
        return result

    def _answer(
        self, query: CSPQuery, stats: QueryStats, want_path: bool
    ) -> QueryResult:
        s, t, budget = query
        if s == t:
            return QueryResult(
                query, weight=0, cost=0, path=[s] if want_path else None
            )
        lca, s_is_anc, t_is_anc = self._lca.relation(s, t)
        if s_is_anc or t_is_anc:
            entries = self._labels.forward(s, t)
            stats.label_lookups += 1
            return _finish(query, best_under(entries, budget), want_path)

        c_s, h_s, c_t, h_t = initial_separators(self._tree, lca, s, t)
        candidates = self._candidate_separators(
            ((c_s, h_s), (c_t, h_t)), s, t, budget
        )
        stats.candidates = len(candidates)

        label_s = self._labels.label(s)
        label_t = self._labels.label(t)
        sizes: dict[int, int] = {}

        def pair_size(h: int) -> int:
            size = sizes.get(h)
            if size is None:
                size = len(label_s[h][0]) + len(label_t[h][1])
                sizes[h] = size
                stats.label_lookups += 2
            return size

        hoplinks = min(
            candidates, key=lambda sep: sum(pair_size(h) for h in sep)
        )
        stats.hoplinks = len(hoplinks)

        concat = (
            concat_best_under if self.use_two_pointer else concat_cartesian
        )
        best: Entry | None = None
        best_hop = -1
        for h in hoplinks:
            prune = (best[0], best[1]) if best is not None else None
            found, inspected = concat(
                label_s[h][0], label_t[h][1], budget, prune=prune
            )
            stats.concatenations += inspected
            if found is not None:
                best = found
                best_hop = h
        if best is not None:
            best = rejoin_with_mid(best, best_hop)
        return _finish(query, best, want_path)

    def _candidate_separators(self, initial, s, t, budget):
        candidates: list[tuple[int, ...]] = []
        seen: set[tuple[int, ...]] = set()
        for child, separator in initial:
            if self.use_pruning_conditions:
                pruned_any = False
                for index, v_end in (
                    (self._pruning_source, s),
                    (self._pruning_target, t),
                ):
                    pruned = index.prune(child, v_end, separator, budget)
                    if pruned and pruned not in seen:
                        candidates.append(pruned)
                        seen.add(pruned)
                        pruned_any = True
                if pruned_any:
                    continue
            separator = tuple(separator)
            if separator not in seen:
                candidates.append(separator)
                seen.add(separator)
        return candidates


def _finish(
    query: CSPQuery, best: Entry | None, want_path: bool = False
) -> QueryResult:
    if best is None:
        return QueryResult(query)
    path = None
    if want_path:
        path = expand(best, query.source, query.target)
    return QueryResult(query, weight=best[0], cost=best[1], path=path)


# ----------------------------------------------------------------------
# Pruning-condition construction (directed, per role)
# ----------------------------------------------------------------------
def _build_condition_directed(
    labels: DirectedLabelStore,
    separator,
    v_end: int,
    role: str,
    rng: random.Random,
    index: PruningConditionIndex,
    pair_cache: dict,
) -> dict[int, float]:
    """Algorithm 7, per direction.

    ``role="source"`` prunes over ``P(v_end→h)``; ``role="target"`` over
    ``P(h→v_end)``.  An ``h`` with an empty set can never host the
    optimum, so it gets ``C_ub = +inf`` outright.
    """
    if role == "source":
        def sets_to(h):
            return labels.forward(v_end, h)
    else:
        def sets_to(h):
            return labels.forward(h, v_end)

    reachable = [h for h in separator if sets_to(h)]
    bounds: dict[int, float] = {
        h: float("inf") for h in separator if not sets_to(h)
    }
    ordered = sorted(reachable, key=lambda h: sets_to(h)[0][1])
    separator_set = set(reachable)
    for i in range(1, len(ordered)):
        h = ordered[i]
        cached = pair_cache.get((role, v_end, h))
        if cached is not None and cached[0] in separator_set:
            index.cache_hits += 1
            bounds[h] = cached[1]
            continue
        u = ordered[rng.randrange(i)]
        if role == "source":
            cub = compute_cub(
                sets_to(h), labels.forward(v_end, u),
                labels.forward(u, h), mid=u,
            )
        else:
            cub = compute_cub(
                sets_to(h), labels.forward(h, u),
                labels.forward(u, v_end), mid=u,
            )
        index.algorithm6_calls += 1
        if cub > 0:
            bounds[h] = cub
            pair_cache[(role, v_end, h)] = (u, cub)
    return bounds


def build_directed_pruning(
    tree: TreeDecomposition,
    labels: DirectedLabelStore,
    lca: LCAIndex,
    index_queries: Iterable[CSPQuery],
    seed: int = 0,
) -> tuple[PruningConditionIndex, PruningConditionIndex]:
    """§4.2 driven by a workload, one condition store per role."""
    started = time.perf_counter()
    rng = random.Random(seed)
    source_index = PruningConditionIndex()
    target_index = PruningConditionIndex()
    pair_cache: dict = {}

    for query in index_queries:
        s, t = query.source, query.target
        if s == t:
            continue
        lca_v, s_is_anc, t_is_anc = lca.relation(s, t)
        if s_is_anc or t_is_anc:
            continue
        c_s, h_s, c_t, h_t = initial_separators(tree, lca_v, s, t)
        for child, separator in ((c_s, h_s), (c_t, h_t)):
            if len(separator) < 2:
                continue
            if not source_index.has(child, s):
                source_index.add(
                    child, s,
                    _build_condition_directed(
                        labels, separator, s, "source", rng,
                        source_index, pair_cache,
                    ),
                )
            if not target_index.has(child, t):
                target_index.add(
                    child, t,
                    _build_condition_directed(
                        labels, separator, t, "target", rng,
                        target_index, pair_cache,
                    ),
                )
    elapsed = time.perf_counter() - started
    source_index.build_seconds = elapsed
    target_index.build_seconds = elapsed
    return source_index, target_index


# ----------------------------------------------------------------------
# Facade
# ----------------------------------------------------------------------
class DirectedQHLIndex:
    """The complete directed QHL index over one directed road network."""

    def __init__(self, network, tree, labels, lca, pruning_source,
                 pruning_target):
        self.network = network
        self.tree = tree
        self.labels = labels
        self.lca = lca
        self.pruning_source = pruning_source
        self.pruning_target = pruning_target
        self._default = self.qhl_engine()

    @classmethod
    def build(
        cls,
        network: DirectedRoadNetwork,
        index_queries: Iterable[CSPQuery] | None = None,
        num_index_queries: int = 2000,
        store_paths: bool = False,
        seed: int = 0,
    ) -> "DirectedQHLIndex":
        tree, shortcuts = build_directed_tree(
            network, store_paths=store_paths
        )
        labels = build_directed_labels(
            tree, shortcuts, store_paths=store_paths
        )
        lca = LCAIndex(tree)
        if index_queries is None:
            rng = random.Random(seed)
            n = network.num_vertices
            index_queries = [
                CSPQuery(rng.randrange(n), rng.randrange(n), 0)
                for _ in range(num_index_queries)
            ]
            index_queries = [
                q for q in index_queries if q.source != q.target
            ]
        source_index, target_index = build_directed_pruning(
            tree, labels, lca, index_queries, seed=seed
        )
        return cls(network, tree, labels, lca, source_index, target_index)

    def qhl_engine(self, **flags) -> DirectedQHLEngine:
        return DirectedQHLEngine(
            self.tree, self.labels, self.lca,
            self.pruning_source, self.pruning_target, **flags,
        )

    def csp2hop_engine(self) -> DirectedCSP2HopEngine:
        return DirectedCSP2HopEngine(self.tree, self.labels, self.lca)

    def query(self, source: int, target: int, budget: float) -> QueryResult:
        return self._default.query(source, target, budget)
