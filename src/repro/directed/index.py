"""Directed tree decomposition shortcuts and two-directional labels.

Same skeleton as the undirected build (Algorithm 1 + the top-down label
recurrence), with every skyline set split by direction:

* eliminating ``v`` folds, for each neighbour pair ``(a, b)``, *both*
  ``S(a→v) ⊗ S(v→b)`` into ``S(a→b)`` and ``S(b→v) ⊗ S(v→a)`` into
  ``S(b→a)``;
* the label of ``v`` stores, per ancestor ``u``, the pair
  ``(P(v→u), P(u→v))``.

Correctness mirrors the undirected argument per direction: for a v→u
path, split at the *first* vertex eliminated after ``v`` (prefix covered
by the outgoing shortcut); for a u→v path, split at the *last* such
vertex (suffix covered by the incoming shortcut).
"""

from __future__ import annotations

import heapq
import time

from repro.directed.network import DirectedRoadNetwork
from repro.exceptions import DisconnectedGraphError, IndexBuildError
from repro.hierarchy.tree import TreeDecomposition
from repro.skyline.entries import edge_entry, zero_entry
from repro.skyline.set_ops import SkylineSet, join, merge, skyline_of

DirectedPair = tuple[SkylineSet, SkylineSet]
"""``(forward, backward)`` skyline sets for an ordered vertex pair."""


class DirectedLabelStore:
    """Labels ``L(v) = {u: (P(v→u), P(u→v))}`` for ancestors ``u``."""

    def __init__(self, num_vertices: int, store_paths: bool = True):
        self.num_vertices = num_vertices
        self._labels: list[dict[int, DirectedPair]] = [
            dict() for _ in range(num_vertices)
        ]
        self.build_seconds = 0.0
        self._zero = [zero_entry(with_prov=False)]
        self.store_paths = store_paths

    def set(self, v: int, u: int, fwd: SkylineSet, bwd: SkylineSet) -> None:
        self._labels[v][u] = (fwd, bwd)

    def label(self, v: int) -> dict[int, DirectedPair]:
        return self._labels[v]

    def forward(self, x: int, y: int) -> SkylineSet:
        """Skyline paths ``x → y`` (x and y must be chain-comparable)."""
        if x == y:
            return self._zero
        pair = self._labels[x].get(y)
        if pair is not None:
            return pair[0]
        pair = self._labels[y].get(x)
        if pair is not None:
            return pair[1]
        raise IndexBuildError(
            f"no label covers the directed pair ({x} -> {y})"
        )

    def num_entries(self) -> int:
        return sum(
            len(fwd) + len(bwd)
            for label in self._labels
            for fwd, bwd in label.values()
        )

    def size_bytes(self) -> int:
        return self.num_entries() * 16 + 8 * sum(
            len(label) for label in self._labels
        )


def build_directed_tree(
    network: DirectedRoadNetwork, store_paths: bool = True
) -> tuple[TreeDecomposition, dict[int, dict[int, DirectedPair]]]:
    """Min-degree elimination with direction-split shortcut sets.

    Returns the tree decomposition (built over the underlying undirected
    structure) and ``shortcuts[v][w] = (S(v→w), S(w→v))`` at ``v``'s
    elimination time.
    """
    undirected = network.underlying_undirected()
    if not undirected.is_connected():
        raise DisconnectedGraphError(
            "the underlying undirected network must be connected"
        )
    started = time.perf_counter()
    n = network.num_vertices

    # pair_sets[(a, b)] with a < b  ->  [S(a→b), S(b→a)] (mutable).
    pair_sets: dict[tuple[int, int], list[SkylineSet]] = {}
    nbrs: list[set[int]] = [set() for _ in range(n)]

    def sets_for(a: int, b: int) -> tuple[list[SkylineSet], int]:
        """The pair record and the index of the a→b direction."""
        if a < b:
            record = pair_sets.setdefault((a, b), [[], []])
            return record, 0
        record = pair_sets.setdefault((b, a), [[], []])
        return record, 1

    for tail, head, w, c in network.arcs():
        record, direction = sets_for(tail, head)
        entry = edge_entry(w, c, tail, head, with_prov=store_paths)
        record[direction] = skyline_of(record[direction] + [entry])
        nbrs[tail].add(head)
        nbrs[head].add(tail)

    eliminated = bytearray(n)
    order: list[int] = []
    bag: dict[int, tuple[int, ...]] = {}
    shortcuts: dict[int, dict[int, DirectedPair]] = {}

    heap = [(len(nbrs[v]), v) for v in range(n)]
    heapq.heapify(heap)

    for _ in range(n):
        # Lazy-deletion min-degree pop.
        while True:
            degree, v = heapq.heappop(heap)
            if eliminated[v]:
                continue
            if degree != len(nbrs[v]):
                heapq.heappush(heap, (len(nbrs[v]), v))
                continue
            break
        eliminated[v] = 1
        order.append(v)
        neighbours = sorted(nbrs[v])
        shortcut_v: dict[int, DirectedPair] = {}
        for w in neighbours:
            record, direction = sets_for(v, w)
            shortcut_v[w] = (record[direction], record[1 - direction])
        shortcuts[v] = shortcut_v

        for w in neighbours:
            nbrs[w].discard(v)

        for i, a in enumerate(neighbours):
            s_va, s_av = shortcut_v[a][0], shortcut_v[a][1]
            for b in neighbours[i + 1:]:
                s_vb, s_bv = shortcut_v[b][0], shortcut_v[b][1]
                record, a_to_b = sets_for(a, b)
                through_ab = join(s_av, s_vb, mid=v)  # a→v→b
                through_ba = join(s_bv, s_va, mid=v)  # b→v→a
                if through_ab:
                    record[a_to_b] = merge(record[a_to_b], through_ab)
                if through_ba:
                    record[1 - a_to_b] = merge(
                        record[1 - a_to_b], through_ba
                    )
                nbrs[a].add(b)
                nbrs[b].add(a)

        for w in neighbours:
            heapq.heappush(heap, (len(nbrs[w]), w))
        bag[v] = tuple(neighbours)

    position = {v: i for i, v in enumerate(order)}
    sorted_bags = {
        v: tuple(sorted(members, key=position.__getitem__))
        for v, members in bag.items()
    }
    tree = TreeDecomposition(
        n,
        order,
        sorted_bags,
        {},  # directed shortcuts kept separately (different shape)
        build_seconds=time.perf_counter() - started,
    )
    return tree, shortcuts


def build_directed_labels(
    tree: TreeDecomposition,
    shortcuts: dict[int, dict[int, DirectedPair]],
    store_paths: bool = True,
) -> DirectedLabelStore:
    """Top-down two-directional label construction."""
    started = time.perf_counter()
    store = DirectedLabelStore(tree.num_vertices, store_paths=store_paths)

    for v in tree.topdown_order:
        if v == tree.root:
            continue
        hubs = tree.bag[v]
        shortcut_v = shortcuts[v]
        for u in tree.ancestors(v):
            fwd_acc: SkylineSet = []
            bwd_acc: SkylineSet = []
            for w in hubs:
                s_vw, s_wv = shortcut_v[w]
                if w == u:
                    fwd_part = s_vw
                    bwd_part = s_wv
                else:
                    fwd_part = join(s_vw, store.forward(w, u), mid=w)
                    bwd_part = join(store.forward(u, w), s_wv, mid=w)
                fwd_acc = merge(fwd_acc, fwd_part) if fwd_acc else list(
                    fwd_part
                )
                bwd_acc = merge(bwd_acc, bwd_part) if bwd_acc else list(
                    bwd_part
                )
            store.set(v, u, fwd_acc, bwd_acc)

    store.build_seconds = time.perf_counter() - started
    return store
