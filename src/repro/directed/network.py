"""Directed road networks.

The paper's evaluation is undirected, but §2.3 notes that "the extension
to the directed graph … can be found in [20], and ours are the same".
This package implements that extension: a directed network keeps one-way
streets and per-direction metrics, and the index stores *two* skyline
sets per label pair (v→u and u→v).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import InvalidGraphError
from repro.graph.network import RoadNetwork

Arc = tuple[int, int, float, float]
"""A directed arc ``(tail, head, weight, cost)``."""


class DirectedRoadNetwork:
    """A directed graph whose arcs carry a (weight, cost) pair.

    The tree decomposition is built on the *underlying undirected*
    structure (which must be connected); individual queries may still be
    infeasible when the target is not reachable by directed arcs.
    """

    __slots__ = ("_n", "_out", "_in", "_arcs")

    def __init__(self, num_vertices: int):
        if num_vertices <= 0:
            raise InvalidGraphError("a road network needs at least one vertex")
        self._n = num_vertices
        self._out: list[list[tuple[int, float, float]]] = [
            [] for _ in range(num_vertices)
        ]
        self._in: list[list[tuple[int, float, float]]] = [
            [] for _ in range(num_vertices)
        ]
        self._arcs: list[Arc] = []

    # ------------------------------------------------------------------
    def add_arc(self, tail: int, head: int, weight: float, cost: float) -> None:
        """Add the directed arc ``tail -> head``."""
        for v in (tail, head):
            if not 0 <= v < self._n:
                raise InvalidGraphError(f"vertex {v} out of range")
        if tail == head:
            raise InvalidGraphError(f"self loop at vertex {tail}")
        if weight <= 0 or cost <= 0:
            raise InvalidGraphError(
                f"arc ({tail}, {head}) must have positive metrics"
            )
        self._out[tail].append((head, weight, cost))
        self._in[head].append((tail, weight, cost))
        self._arcs.append((tail, head, weight, cost))

    @classmethod
    def from_arcs(
        cls, num_vertices: int, arcs: Iterable[Arc]
    ) -> "DirectedRoadNetwork":
        network = cls(num_vertices)
        for tail, head, weight, cost in arcs:
            network.add_arc(tail, head, weight, cost)
        return network

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_arcs(self) -> int:
        return len(self._arcs)

    def vertices(self) -> range:
        return range(self._n)

    def arcs(self) -> Sequence[Arc]:
        return self._arcs

    def out_neighbors(self, v: int) -> Sequence[tuple[int, float, float]]:
        """Arcs leaving ``v``: ``(head, weight, cost)``."""
        return self._out[v]

    def in_neighbors(self, v: int) -> Sequence[tuple[int, float, float]]:
        """Arcs entering ``v``: ``(tail, weight, cost)``."""
        return self._in[v]

    def underlying_undirected(self) -> RoadNetwork:
        """The undirected structure (one edge per arc) for decomposition."""
        undirected = RoadNetwork(self._n)
        for tail, head, weight, cost in self._arcs:
            undirected.add_edge(tail, head, weight, cost)
        return undirected

    def path_metrics(self, path: Sequence[int]) -> tuple[float, float]:
        """``(w, c)`` of a directed vertex path; cheapest parallel arc."""
        if not path:
            raise InvalidGraphError("a path needs at least one vertex")
        total_w = 0.0
        total_c = 0.0
        for tail, head in zip(path, path[1:], strict=False):
            options = [
                (w, c) for nbr, w, c in self._out[tail] if nbr == head
            ]
            if not options:
                raise InvalidGraphError(f"({tail} -> {head}) is not an arc")
            w, c = min(options)
            total_w += w
            total_c += c
        return total_w, total_c

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DirectedRoadNetwork(|V|={self._n}, |A|={len(self._arcs)})"


def directed_from_undirected(
    network: RoadNetwork,
    seed: int = 0,
    asymmetry: float = 0.4,
    one_way_prob: float = 0.15,
) -> DirectedRoadNetwork:
    """Derive a directed network from an undirected one.

    Each edge becomes a forward arc plus, with probability
    ``1 - one_way_prob``, a reverse arc whose metrics are jittered by up
    to ``asymmetry`` (rush-hour directionality).  The underlying
    undirected structure stays connected by construction.
    """
    import random

    rng = random.Random(seed)
    directed = DirectedRoadNetwork(network.num_vertices)
    for u, v, w, c in network.edges():
        if rng.random() < 0.5:
            u, v = v, u
        directed.add_arc(u, v, w, c)
        if rng.random() >= one_way_prob:
            factor_w = 1 + rng.uniform(-asymmetry, asymmetry)
            factor_c = 1 + rng.uniform(-asymmetry, asymmetry)
            directed.add_arc(
                v, u, max(1, round(w * factor_w)), max(1, round(c * factor_c))
            )
    return directed
