"""Dynamic maintenance: incremental edge-metric updates for the QHL
index (fixed topology, changing congestion/tolls)."""

from repro.dynamic.updates import DynamicQHLIndex, UpdateReport

__all__ = ["DynamicQHLIndex", "UpdateReport"]
