"""Dynamic maintenance: incremental edge-metric updates for the QHL
index (fixed topology, changing congestion/tolls), made crash-safe by
the journal + epoch pipeline in :mod:`repro.dynamic.epochs`."""

from repro.dynamic.epochs import Epoch, EpochManager, UpdateConfig
from repro.dynamic.journal import EdgeDelta, JournalRecord, UpdateJournal
from repro.dynamic.updates import DynamicQHLIndex, UpdateReport

__all__ = [
    "DynamicQHLIndex",
    "EdgeDelta",
    "Epoch",
    "EpochManager",
    "JournalRecord",
    "UpdateConfig",
    "UpdateJournal",
    "UpdateReport",
]
