"""Epoch-versioned live updates: never-block swap, rollback on failure.

The dynamic repair (:mod:`repro.dynamic.updates`) makes a metric update
cheap, but applying it *in place* is unsafe against live traffic: a
crash mid-repair tears the index, and pre-update cached frontiers keep
serving afterwards.  This module wraps the repair in a crash-safe
pipeline:

1. **Journal** — the delta batch is appended to the checksummed
   write-ahead journal (:class:`~repro.dynamic.journal.UpdateJournal`)
   and fsynced before anything else moves.  An acknowledged batch
   survives any crash.
2. **Repair on a copy** — the repair sweep runs on a copy-on-write
   clone (:meth:`~repro.dynamic.updates.DynamicQHLIndex.clone`) of the
   *current epoch* while readers keep querying it.  Readers never see a
   half-repaired structure.
3. **Publish** — on success (optionally gated by
   :func:`~repro.resilience.audit.audit_index` and a repair deadline)
   the clone becomes the new epoch via an atomic pointer swap; the
   journal watermark advances through the PR-2 atomic envelope.  The
   flat/mmap twin, when enabled, is packed per epoch and swapped with
   the same pointer.
4. **Rollback** — on *any* failure (repair exception, audit failure,
   deadline breach, injected fault at ``update-repair`` /
   ``update-publish``) the clone is discarded, the old epoch keeps
   serving, the incident lands in the PR-7
   :class:`~repro.supervise.incidents.IncidentLog`, and the batch stays
   *pending* in the journal so :meth:`EpochManager.replay` can retry —
   deltas are absolute, so retries converge.

Startup mirrors the PR-4 kill-resume contract: the manager replays
every journalled batch above the published watermark, so updates
acknowledged before a crash are recovered exactly once (idempotently).
Each epoch carries its own :class:`~repro.perf.cache.SkylineCache`, so
cache entries are keyed by epoch construction — a published epoch can
never serve a frontier computed from an older one.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing-only, imported lazily below
    from repro.graph.network import RoadNetwork

from repro.dynamic.journal import EdgeDelta, JournalRecord, UpdateJournal
from repro.dynamic.updates import DynamicQHLIndex, UpdateReport
from repro.exceptions import (
    DeadlineExceededError,
    InvalidGraphError,
    ReproError,
    UpdateFailedError,
)
from repro.observability.metrics import get_registry
from repro.observability.propagation import reap_stale_spools
from repro.resilience.audit import audit_index
from repro.service.deadline import Deadline
from repro.service.faults import get_injector
from repro.storage.flatfile import load_flat_index, save_flat_index
from repro.supervise.incidents import get_incident_log
from repro.types import QueryResult

EPOCH_DIR_PREFIX = "qhl-epoch-"

#: Seconds a repair-timing histogram bucket ladder suited to
#: incremental repairs (milliseconds to tens of seconds).
REPAIR_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 30.0,
)


def validate_deltas(
    deltas: Sequence[EdgeDelta], num_edges: int
) -> None:
    """Reject a batch the repair sweep could never apply.

    Mirrors (and slightly tightens: NaN is refused here) the checks in
    :meth:`DynamicQHLIndex.apply_deltas`, so a batch that passes here
    cannot fail repair-side validation later.  Must run *before*
    :meth:`UpdateJournal.append`: a journalled batch is durably
    acknowledged, and one that deterministically fails repair would
    otherwise stay pending forever and abort every replay.
    """
    for delta in deltas:
        if not 0 <= delta.edge < num_edges:
            raise InvalidGraphError(
                f"edge index {delta.edge} out of range for "
                f"{num_edges} edges"
            )
        for value in (delta.weight, delta.cost):
            if value is not None and not value > 0:
                raise InvalidGraphError(
                    "metrics must stay strictly positive"
                )


@dataclass(frozen=True)
class UpdateConfig:
    """Knobs of the live-update pipeline."""

    #: Per-epoch skyline-cache capacity; 0 queries the plain engine.
    cache_size: int = 0
    #: Pack and mmap-load a flat twin for each published epoch.
    flat: bool = False
    #: Run :func:`audit_index` on the repaired clone before publishing.
    audit_on_publish: bool = True
    audit_queries: int = 8
    audit_seed: int = 0
    #: Abort (and roll back) a repair running longer than this.
    max_repair_seconds: float | None = None
    #: Replay pending journal records when the manager starts.
    replay_on_start: bool = True
    #: Reap orphaned ``qhl-epoch-*`` temp dirs on startup.
    reap_stale: bool = True


class Epoch:
    """One immutable published version of the index.

    Holds the dynamic index, the optional flat/mmap twin, and its own
    skyline cache — readers that grabbed a reference keep a fully
    consistent view even after newer epochs publish.
    """

    def __init__(
        self,
        epoch_id: int,
        dyn: DynamicQHLIndex,
        config: UpdateConfig,
        created_ts: float,
    ) -> None:
        self.id = epoch_id
        self.dyn = dyn
        self.created_ts = created_ts
        self.flat_dir: str | None = None
        self.flat_index = None
        if config.flat:
            # The pid in the name keeps reap_stale_spools off a live
            # manager's dir: flat twins are written once and mmap-read,
            # so mtime age cannot distinguish live from orphaned.
            self.flat_dir = tempfile.mkdtemp(
                prefix=f"{EPOCH_DIR_PREFIX}{os.getpid()}-"
            )
            path = os.path.join(self.flat_dir, "epoch.flat")
            save_flat_index(dyn.index, path)
            self.flat_index = load_flat_index(path, use_mmap=True)
        # The per-epoch cache IS the epoch-keying: a fresh cache per
        # epoch means no frontier outlives the labels it came from.
        self._engine = (
            dyn.index.cached_engine(config.cache_size)
            if config.cache_size > 0
            else None
        )
        self._tier_engines: dict[str, object] = {}

    # ------------------------------------------------------------------
    def tier_engine(self, name: str) -> object:
        """A ladder-tier engine bound to this epoch's frozen view.

        Built lazily and memoised per epoch, so the service's
        degradation ladder (``QHL`` / ``CSP-2Hop`` / ``SkyDijkstra``)
        always runs against one consistent version.
        """
        engine = self._tier_engines.get(name)
        if engine is not None:
            return engine
        if name == "QHL":
            index = self.flat_index if self.flat_index is not None else (
                self.dyn.index
            )
            engine = (
                self._engine
                if self._engine is not None
                else index.qhl_engine()
            )
        elif name == "CSP-2Hop":
            engine = self.dyn.index.csp2hop_engine()
        elif name == "SkyDijkstra":
            from repro.baselines.sky_dijkstra import SkyDijkstraEngine

            engine = SkyDijkstraEngine(self.dyn.index.network)
        else:
            raise ValueError(f"unknown tier {name!r}")
        self._tier_engines[name] = engine
        return engine

    # ------------------------------------------------------------------
    def query(
        self, source: int, target: int, budget: float,
        want_path: bool = False,
    ) -> QueryResult:
        """Answer one query against this epoch's frozen view."""
        if self._engine is not None:
            return self._engine.query(
                source, target, budget, want_path=want_path
            )
        if self.flat_index is not None:
            return self.flat_index.query(
                source, target, budget, want_path=want_path
            )
        return self.dyn.query(source, target, budget, want_path=want_path)

    def discard(self) -> None:
        """Release this epoch's on-disk footprint (flat twin dir).

        Safe while readers still hold the mmap: POSIX keeps the mapping
        alive after the unlink; the pages go away with the last viewer.
        """
        if self.flat_dir is not None:
            shutil.rmtree(self.flat_dir, ignore_errors=True)
            self.flat_dir = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Epoch(id={self.id}, flat={self.flat_index is not None})"


class EpochManager:
    """Owns the journal, the current epoch, and the publish lifecycle."""

    def __init__(
        self,
        dyn: DynamicQHLIndex,
        journal_dir: str,
        config: UpdateConfig | None = None,
        clock: Callable[[], float] | None = None,
        base_seq: int | None = None,
    ) -> None:
        """``base_seq`` anchors replay: the highest journal sequence
        already reflected in ``dyn``.  ``None`` (the default) means the
        published watermark — right when the caller persisted the index
        at publish time or keeps the manager in-process.  Pass ``0``
        when ``dyn`` was rebuilt from the *original* network so every
        journalled batch (published or not) is re-applied; deltas are
        absolute, so over-replay converges and the watermark never
        regresses.
        """
        self.config = config or UpdateConfig()
        self._clock = clock if clock is not None else time.monotonic
        if self.config.reap_stale:
            reap_stale_spools()
        self.journal = UpdateJournal(journal_dir)
        if self.journal.torn_lines:
            get_incident_log().new(
                kind="update-journal-torn",
                worker="epoch-manager",
                pid=os.getpid(),
                detail=(
                    f"truncated {self.journal.torn_lines} torn journal "
                    f"line(s) in {journal_dir}"
                ),
            )
        start = (
            self.journal.published_seq()
            if base_seq is None
            else int(base_seq)
        )
        self._epoch = Epoch(start, dyn, self.config, self._now())
        self._live_net = None
        self._live_net_key: tuple[int, int] | None = None
        self._publish_metrics()
        if self.config.replay_on_start:
            self.replay()

    # ------------------------------------------------------------------
    def _now(self) -> float:
        injector = get_injector()
        if injector.enabled and injector.clock is not None:
            return injector.clock()
        return self._clock()

    @property
    def epoch(self) -> Epoch:
        """The currently published epoch (atomic attribute read)."""
        return self._epoch

    def query(
        self, source: int, target: int, budget: float,
        want_path: bool = False,
    ) -> QueryResult:
        """Answer a query; never blocks on an in-flight update."""
        return self._epoch.query(source, target, budget, want_path)

    # ------------------------------------------------------------------
    def backlog(self) -> int:
        """Acknowledged batches this manager has not yet published."""
        return max(0, self.journal.last_seq() - self._epoch.id)

    def staleness_seconds(self) -> float:
        """Age of the oldest pending batch (0.0 when fully caught up).

        Clamped at zero: journal timestamps come from a monotonic
        clock, which restarts with the process, so a replayed record
        from a previous run can carry a "future" timestamp.
        """
        pending = self._pending()
        if not pending:
            return 0.0
        return max(0.0, self._now() - pending[0].ts)

    def _pending(self) -> list[JournalRecord]:
        return [
            r for r in self.journal.records() if r.seq > self._epoch.id
        ]

    def live_network(self) -> "RoadNetwork":
        """The network with *every* acknowledged delta applied.

        Unlike the serving epoch (which lags behind by the backlog),
        this view includes pending batches — no labels, so it is cheap
        to refresh.  The degradation ladder's index-free tier runs on
        it when the backlog forces a shed: fresh answers at search
        latency instead of fast answers at unbounded staleness.
        """
        from repro.graph.network import RoadNetwork

        key = (self._epoch.id, self.journal.last_seq())
        if self._live_net_key == key and self._live_net is not None:
            return self._live_net
        edges = self._epoch.dyn.network_edges()
        for record in self._pending():
            try:
                validate_deltas(record.deltas, len(edges))
            except InvalidGraphError:
                # Unrepairable batch (foreign/hand-edited journal);
                # replay() quarantines it — don't let it poison the
                # index-free shed tier in the meantime.
                continue
            for delta in record.deltas:
                u, v, w, c = edges[delta.edge]
                edges[delta.edge] = (
                    u,
                    v,
                    w if delta.weight is None else delta.weight,
                    c if delta.cost is None else delta.cost,
                )
        self._live_net = RoadNetwork.from_edges(
            self._epoch.dyn.index.network.num_vertices, edges
        )
        self._live_net_key = key
        return self._live_net

    # ------------------------------------------------------------------
    def apply(
        self,
        deltas: Sequence[EdgeDelta] | Sequence[
            tuple[int, float | None, float | None]
        ],
    ) -> UpdateReport:
        """Journal one delta batch, repair a clone, publish it.

        The batch is validated first (edge range, strictly positive
        metrics — :exc:`InvalidGraphError` rejects it *unacknowledged*),
        then made durable (journalled + fsynced) before the repair
        starts; on any repair/audit/publish failure the update rolls
        back but stays pending, and :exc:`UpdateFailedError` propagates.
        """
        batch = tuple(EdgeDelta(*d) for d in deltas)
        validate_deltas(batch, self._epoch.dyn.index.network.num_edges)
        record = self.journal.append(batch, ts=self._now())
        self._refresh_gauges()
        return self._apply_record(record)

    def replay(self) -> int:
        """Apply every pending journal record, oldest first.

        Returns the number of batches published.  This is the startup
        recovery path *and* the retry path after a rolled-back apply.
        A batch that can *never* repair (fails delta validation — only
        possible in a journal this code did not write, since
        :meth:`apply` validates before acknowledging) is quarantined
        and skipped instead of aborting the replay: re-raising on it
        every restart would permanently brick the journal directory.
        """
        published = 0
        for record in self._pending():
            try:
                self._apply_record(record)
            except UpdateFailedError as exc:
                if isinstance(exc.__cause__, InvalidGraphError):
                    self._quarantine(record, exc.__cause__)
                    continue
                raise
            published += 1
        return published

    # ------------------------------------------------------------------
    def _apply_record(self, record: JournalRecord) -> UpdateReport:
        injector = get_injector()
        clone = self._epoch.dyn.clone()
        new_epoch: Epoch | None = None
        reason = "repair"
        try:
            injector.fire("update-repair", seq=record.seq)
            deadline = None
            if self.config.max_repair_seconds is not None:
                deadline = Deadline(
                    self.config.max_repair_seconds, clock=self._now
                )
            report = clone.apply_deltas(record.deltas, deadline=deadline)
            if self.config.audit_on_publish:
                reason = "audit"
                audit = audit_index(
                    clone.index,
                    queries=self.config.audit_queries,
                    seed=self.config.audit_seed,
                )
                if not audit.ok:
                    raise UpdateFailedError(
                        "repaired index failed its audit: "
                        + ", ".join(audit.failed_checks()),
                        seq=record.seq,
                        reason="audit",
                    )
            reason = "publish"
            new_epoch = Epoch(
                record.seq, clone, self.config, self._now()
            )
            injector.fire(
                "update-publish", seq=record.seq, epoch=record.seq
            )
        except DeadlineExceededError as exc:
            self._rollback(record, new_epoch, "deadline", exc)
            raise UpdateFailedError(
                f"update batch {record.seq} overran its repair budget",
                seq=record.seq,
                reason="deadline",
            ) from exc
        except UpdateFailedError as exc:
            self._rollback(record, new_epoch, exc.reason or reason, exc)
            raise
        except (ReproError, OSError, RuntimeError) as exc:
            self._rollback(record, new_epoch, reason, exc)
            raise UpdateFailedError(
                f"update batch {record.seq} failed during {reason}: {exc}",
                seq=record.seq,
                reason=reason,
            ) from exc

        # The swap: readers racing this line see either epoch, whole.
        old_epoch = self._epoch
        self._epoch = new_epoch
        self.journal.mark_published(record.seq)
        old_epoch.discard()
        self._count_publish(record, report)
        return report

    def _rollback(
        self,
        record: JournalRecord,
        new_epoch: Epoch | None,
        reason: str,
        exc: BaseException,
    ) -> None:
        """Discard the failed clone; the old epoch keeps serving."""
        if new_epoch is not None:
            new_epoch.discard()
        get_incident_log().new(
            kind="update-rollback",
            worker="epoch-manager",
            pid=os.getpid(),
            detail=(
                f"batch seq={record.seq} rolled back during {reason}: "
                f"{exc}"
            ),
        )
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "update_rollbacks_total",
                {"reason": reason},
                help="update batches rolled back, by failure stage",
            ).inc()
            registry.counter(
                "update_batches_total",
                {"status": "rolled-back"},
                help="journalled update batches by outcome",
            ).inc()
        self._refresh_gauges()

    def _quarantine(
        self, record: JournalRecord, exc: BaseException
    ) -> None:
        """Skip past a batch that deterministically can never repair.

        The batch has no legal effect on the index, so the serving
        epoch is re-badged with its sequence number and the watermark
        advances — equivalent to publishing it as a no-op.  The loss is
        logged as an incident and counted; the alternative (re-raising
        on it forever) turns one bad record into a permanent startup
        failure.
        """
        get_incident_log().new(
            kind="update-quarantined",
            worker="epoch-manager",
            pid=os.getpid(),
            detail=(
                f"batch seq={record.seq} quarantined "
                f"(unrepairable, skipped): {exc}"
            ),
        )
        self._epoch.id = record.seq  # lint: allow=QHL009 re-badge only: quarantine publishes the serving epoch as the no-op batch, and an int store is atomic for readers
        self.journal.mark_published(record.seq)
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "update_batches_total",
                {"status": "quarantined"},
                help="journalled update batches by outcome",
            ).inc()
        self._publish_metrics()

    # ------------------------------------------------------------------
    def _count_publish(
        self, record: JournalRecord, report: UpdateReport
    ) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "update_batches_total",
                {"status": "published"},
                help="journalled update batches by outcome",
            ).inc()
            registry.counter(
                "update_edges_total",
                help="edge-metric deltas applied to published epochs",
            ).inc(len(record.deltas))
            registry.histogram(
                "update_repair_seconds",
                help="incremental repair wall time per published batch",
                buckets=REPAIR_BUCKETS,
            ).observe(report.seconds)
        self._publish_metrics()

    def _publish_metrics(self) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.gauge(
                "update_epoch",
                help="journal sequence number of the serving epoch",
            ).set(self._epoch.id)
        self._refresh_gauges()

    def _refresh_gauges(self) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.gauge(
                "update_backlog",
                help="acknowledged update batches not yet published",
            ).set(self.backlog())
            registry.gauge(
                "update_staleness_seconds",
                help="age of the oldest pending update batch",
            ).set(self.staleness_seconds())

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the current epoch's on-disk footprint."""
        self._epoch.discard()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EpochManager(epoch={self._epoch.id}, "
            f"backlog={self.backlog()})"
        )
