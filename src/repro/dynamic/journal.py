"""The crash-safe write-ahead journal for edge-metric updates.

Live-update durability splits into two files inside one journal
directory:

``journal.jsonl``
    Append-only JSON lines, one per acknowledged delta batch::

        {"seq": 3, "ts": 12.5, "deltas": [[7, 2.5, null]], "sha": "..."}

    ``sha`` is the sha256 of the canonical (sorted-keys, compact) JSON
    encoding of the record *without* the ``sha`` field, so a torn or
    bit-flipped line is detectable.  Appends are write+flush+fsync — a
    batch is only acknowledged once it is durable.
``published.ckpt``
    The highest sequence number whose epoch has been published, written
    through :func:`repro.storage.serialize.save_envelope` (the PR-2
    atomic tmp+fsync+replace discipline).  Everything in the journal
    above this watermark is *pending*: acknowledged but not yet
    serving, exactly what replay re-applies after a crash.

Deltas carry **absolute** metric values (``None`` = leave unchanged),
so replaying an already-applied batch converges to the same index —
idempotence is what makes crash-between-publish-and-mark safe.

On open, a torn tail (truncated line, checksum mismatch, non-monotone
sequence) is detected, counted in :attr:`UpdateJournal.torn_lines`, and
the good prefix is rewritten atomically; records before the tear are
never lost.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import BinaryIO, Iterator, NamedTuple

from repro.exceptions import SerializationError, UpdateJournalError
from repro.service.faults import get_injector
from repro.storage.serialize import (
    _atomic_write_bytes,
    load_envelope,
    save_envelope,
)

JOURNAL_NAME = "journal.jsonl"
PUBLISHED_NAME = "published.ckpt"
PUBLISHED_MAGIC = "repro-qhl-update-published"


class EdgeDelta(NamedTuple):
    """One edge-metric change: absolute new values, ``None`` = keep."""

    edge: int
    weight: float | None = None
    cost: float | None = None


class JournalRecord(NamedTuple):
    """One durable delta batch."""

    seq: int
    ts: float
    deltas: tuple[EdgeDelta, ...]


def _canonical(body: dict[str, object]) -> bytes:
    return json.dumps(
        body, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _checksum(body: dict[str, object]) -> str:
    return hashlib.sha256(_canonical(body)).hexdigest()


class UpdateJournal:
    """Append-only, checksummed journal of acknowledged delta batches."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.torn_lines = 0
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            raise UpdateJournalError(
                f"cannot create journal directory {directory!r}: {exc}"
            ) from exc
        self._records: list[JournalRecord] = []
        self._load()

    # ------------------------------------------------------------------
    @property
    def _journal_path(self) -> str:
        return os.path.join(self.directory, JOURNAL_NAME)

    @property
    def _published_path(self) -> str:
        return os.path.join(self.directory, PUBLISHED_NAME)

    # ------------------------------------------------------------------
    def _load(self) -> None:
        """Read the journal, keeping the longest valid prefix.

        A record is valid when its line parses, its checksum matches,
        and its sequence number is exactly one past the previous
        record's.  The first invalid line and everything after it is a
        torn tail: counted, logged out of the file by an atomic rewrite
        of the good prefix, and never re-served.
        """
        path = self._journal_path
        if not os.path.exists(path):
            return
        good_lines: list[bytes] = []
        records: list[JournalRecord] = []
        torn = 0
        with open(path, "rb") as handle:
            raw_lines = handle.read().split(b"\n")
        for raw in raw_lines:
            if not raw.strip():
                continue
            if torn:
                torn += 1
                continue
            record = self._parse_line(raw, expect_seq=len(records) + 1)
            if record is None:
                torn = 1
                continue
            good_lines.append(raw)
            records.append(record)
        self.torn_lines = torn
        self._records = records
        if torn:
            data = b"".join(line + b"\n" for line in good_lines)
            _atomic_write_bytes(path, data)

    @staticmethod
    def _parse_line(raw: bytes, expect_seq: int) -> JournalRecord | None:
        try:
            obj = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        if not isinstance(obj, dict):
            return None
        sha = obj.pop("sha", None)
        if sha != _checksum(obj):
            return None
        seq = obj.get("seq")
        if seq != expect_seq:
            return None
        try:
            deltas = tuple(
                EdgeDelta(int(e), w, c) for e, w, c in obj["deltas"]
            )
            return JournalRecord(
                seq=int(seq), ts=float(obj["ts"]), deltas=deltas
            )
        except (KeyError, TypeError, ValueError):
            return None

    # ------------------------------------------------------------------
    def append(
        self,
        deltas: list[EdgeDelta] | list[tuple[int, float | None, float | None]],
        ts: float,
    ) -> JournalRecord:
        """Durably acknowledge one delta batch; returns its record.

        Fires the ``update-journal-append`` injection point at the
        ``write`` and ``fsync`` stages.  Only after the fsync returns is
        the record added to the in-memory view — a crash mid-append
        leaves at worst a torn tail that the next open truncates.
        """
        record = JournalRecord(
            seq=len(self._records) + 1,
            ts=float(ts),
            deltas=tuple(EdgeDelta(*d) for d in deltas),
        )
        body = {
            "seq": record.seq,
            "ts": record.ts,
            "deltas": [list(d) for d in record.deltas],
        }
        body["sha"] = _checksum(
            {k: v for k, v in body.items() if k != "sha"}
        )
        line = json.dumps(body, sort_keys=True).encode("utf-8") + b"\n"
        injector = get_injector()
        try:
            injector.fire(
                "update-journal-append", stage="write", seq=record.seq
            )
            with open(self._journal_path, "ab") as handle:
                offset = handle.tell()
                try:
                    handle.write(line)
                    handle.flush()
                    injector.fire(
                        "update-journal-append", stage="fsync",
                        seq=record.seq,
                    )
                    os.fsync(handle.fileno())
                except BaseException:
                    self._rewind(handle, offset)
                    raise
        except UpdateJournalError:
            raise
        except OSError as exc:
            raise UpdateJournalError(
                f"journal append failed for seq {record.seq}: {exc}"
            ) from exc
        self._records.append(record)
        return record

    def _rewind(self, handle: BinaryIO, offset: int) -> None:
        """Undo a failed append so disk never runs ahead of memory.

        A fault between write+flush and fsync-return leaves the full
        (valid!) line for an *unacknowledged* seq in the file while
        ``_records`` was not updated.  Left in place, the next
        in-process append would write a duplicate of that seq, and the
        next ``_load`` would keep the failed line and truncate the
        later, actually-acknowledged one as a torn tail — silently
        dropping durable data.  Truncate back to the pre-append offset;
        if even that fails, resynchronise the in-memory view from the
        file instead (the failed batch then replays as a pending
        record, which is safe — deltas are absolute and idempotent —
        while seq reuse is not).
        """
        try:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())
        except OSError:
            self._load()

    # ------------------------------------------------------------------
    def records(self) -> Iterator[JournalRecord]:
        """Every durable record, in sequence order."""
        return iter(self._records)

    def last_seq(self) -> int:
        """The highest acknowledged sequence number (0 when empty)."""
        return len(self._records)

    def published_seq(self) -> int:
        """The highest *published* sequence number (0 when none)."""
        if not os.path.exists(self._published_path):
            return 0
        try:
            envelope = load_envelope(self._published_path, PUBLISHED_MAGIC)
        except SerializationError:
            # A corrupt watermark is recoverable: replay from zero —
            # deltas are absolute, so over-replay converges.
            return 0
        return int(envelope["seq"])

    def pending(self) -> list[JournalRecord]:
        """Acknowledged records not yet published, oldest first."""
        watermark = self.published_seq()
        return [r for r in self._records if r.seq > watermark]

    def mark_published(self, seq: int) -> None:
        """Atomically advance the published watermark to ``seq``.

        Monotone: replaying an already-published batch (idempotent by
        design) never regresses the watermark.
        """
        seq = max(int(seq), self.published_seq())
        save_envelope(
            self._published_path, PUBLISHED_MAGIC, {"seq": seq}
        )
