"""Dynamic maintenance: edge-metric updates without a full rebuild.

The paper's related work (§6.1, [34-36]) studies dynamic hub labeling;
this module brings the capability to the QHL index for the common road-
network case — *metric* changes (congestion, tolls) on a fixed topology.

Key observation: with the topology fixed, the elimination order, bags
and tree are all unchanged, and the shortcut sets obey a clean
order-respecting recurrence::

    S(v, w) = skyline( edges(v, w)
                       ∪ ⋃ { S(x, v) ⊗ S(x, w) : v, w ∈ X(x) } )

for ``w ∈ X(v)\\{v}`` — every contributor ``x`` is eliminated before
``v``, so processing vertices in elimination order revalidates each
shortcut exactly once.  An update therefore:

1. marks the updated edge's pair dirty,
2. sweeps the elimination order recomputing only pairs with a dirty
   input (tracked via a prebuilt contributor index),
3. sweeps the tree top-down recomputing only labels with a dirty input,
4. rebuilds the pruning conditions from the remembered ``Q_index`` when
   any label changed (they are the cheap part of the index).

The result is bit-identical to a fresh build with the same elimination
order — which is what the tests assert.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.engine import QHLIndex, random_index_queries
from repro.core.pruning import build_pruning_index
from repro.exceptions import InvalidGraphError
from repro.graph.network import RoadNetwork
from repro.hierarchy.tree import TreeDecomposition
from repro.labeling.labels import LabelStore
from repro.service.deadline import Deadline
from repro.service.faults import get_injector
from repro.skyline.entries import edge_entry
from repro.skyline.set_ops import SkylineSet, join, merge, skyline_of
from repro.types import CSPQuery, QueryResult


def _timing_clock() -> Callable[[], float]:
    """The repair-timing clock: the injected one when chaos is active.

    Mirrors ``QueryService._deadline_clock`` — tests jump time
    deterministically through :attr:`FaultInjector.clock` while
    production uses the monotonic ``perf_counter``.
    """
    injector = get_injector()
    if injector.enabled and injector.clock is not None:
        return injector.clock
    return time.perf_counter


@dataclass
class UpdateReport:
    """What one metric update cost."""

    shortcuts_checked: int
    shortcuts_changed: int
    labels_checked: int
    labels_changed: int
    pruning_rebuilt: bool
    seconds: float
    edges_applied: int = 1


class DynamicQHLIndex:
    """A QHL index that absorbs edge-metric updates incrementally.

    Construction delegates to :meth:`repro.core.QHLIndex.build`; the
    wrapper additionally remembers the contributor index and the
    ``Q_index`` workload so updates can repair the structures in place.
    """

    def __init__(self, index: QHLIndex, index_queries: list[CSPQuery],
                 store_paths: bool) -> None:
        self.index = index
        self._index_queries = index_queries
        self._store_paths = store_paths
        self._edges: list[tuple[int, int, float, float]] = list(
            index.network.edges()
        )
        self._contributors = _build_contributor_index(index.tree)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        network: RoadNetwork,
        index_queries: list[CSPQuery] | None = None,
        num_index_queries: int = 2000,
        store_paths: bool = True,
        seed: int = 0,
    ) -> "DynamicQHLIndex":
        if index_queries is None:
            index_queries = random_index_queries(
                network, num_index_queries, seed=seed
            )
        index = QHLIndex.build(
            network,
            index_queries=index_queries,
            store_paths=store_paths,
            seed=seed,
        )
        return cls(index, list(index_queries), store_paths)

    # ------------------------------------------------------------------
    def query(
        self, source: int, target: int, budget: float,
        want_path: bool = False,
    ) -> QueryResult:
        """Answer a CSP query against the current metrics."""
        return self.index.query(source, target, budget, want_path=want_path)

    def network_edges(self) -> list[tuple[int, int, float, float]]:
        """The current edge list (insertion order, updated metrics)."""
        return list(self._edges)

    # ------------------------------------------------------------------
    def clone(self) -> "DynamicQHLIndex":
        """A copy-on-write clone safe to repair while ``self`` serves.

        The expensive immutable structures (lca, pruning, contributor
        index, skyline entry lists) are shared; everything the repair
        sweeps *reassign* — the shortcuts dicts, the per-vertex label
        dicts, the edge list — is copied one container level deep.  The
        repair never mutates a skyline list in place (it always binds a
        freshly built one), so sharing the entry lists is safe: readers
        on the original index can never observe a torn frontier.
        """
        old = self.index
        tree = copy.copy(old.tree)
        tree.shortcuts = {v: dict(d) for v, d in old.tree.shortcuts.items()}
        labels = LabelStore(
            old.labels.num_vertices, store_paths=old.labels.store_paths
        )
        labels.build_seconds = old.labels.build_seconds
        labels.version = old.labels.version
        for v, label in enumerate(old.labels._labels):
            labels._labels[v] = dict(label)
        index = QHLIndex(old.network, tree, labels, old.lca, old.pruning)
        twin = DynamicQHLIndex(
            index, self._index_queries, self._store_paths
        )
        twin._edges = list(self._edges)
        twin._contributors = self._contributors  # topology is fixed
        return twin

    # ------------------------------------------------------------------
    def update_edge(
        self,
        edge_index: int,
        weight: float | None = None,
        cost: float | None = None,
    ) -> UpdateReport:
        """Change the metrics of one edge and repair the index.

        ``edge_index`` follows edge-insertion order (as in
        :meth:`RoadNetwork.with_metrics`).
        """
        return self.apply_deltas([(edge_index, weight, cost)])

    def apply_deltas(
        self,
        deltas: Sequence[tuple[int, float | None, float | None]],
        deadline: Deadline | None = None,
    ) -> UpdateReport:
        """Apply a batch of ``(edge_index, weight, cost)`` deltas at once.

        Metric values are **absolute** (``None`` leaves that metric
        unchanged), so re-applying a batch is idempotent — the property
        journal replay relies on after a crash.  The whole batch is
        validated before any state moves, then repaired in one sweep;
        an optional :class:`~repro.service.deadline.Deadline` is checked
        at every outer sweep step so a runaway repair aborts before
        mutating the pruning index.
        """
        clock = _timing_clock()
        started = clock()
        dirty_seeds: set[tuple[int, int]] = set()
        staged = list(self._edges)
        for edge_index, weight, cost in deltas:  # lint: allow=QHL001 validation only, bounded by the batch size
            if not 0 <= edge_index < len(staged):
                raise InvalidGraphError(
                    f"edge index {edge_index} out of range"
                )
            u, v, old_w, old_c = staged[edge_index]
            new_w = old_w if weight is None else weight
            new_c = old_c if cost is None else cost
            if new_w <= 0 or new_c <= 0:
                raise InvalidGraphError(
                    "metrics must stay strictly positive"
                )
            staged[edge_index] = (u, v, new_w, new_c)
            dirty_seeds.add(_ordered(u, v, self.index.tree))
        self._edges = staged

        # Refresh the stored network object (queries never read it, but
        # stats and serialisation do).
        self.index.network = RoadNetwork.from_edges(
            self.index.network.num_vertices, self._edges
        )

        report = self._repair(dirty_seeds=dirty_seeds, deadline=deadline)
        report.seconds = clock() - started
        report.edges_applied = len(list(deltas))
        return report

    # ------------------------------------------------------------------
    def _repair(
        self,
        dirty_seeds: set[tuple[int, int]],
        deadline: Deadline | None = None,
    ) -> UpdateReport:
        tree = self.index.tree
        labels = self.index.labels
        store_paths = self._store_paths

        # Base edge entries per ordered shortcut pair.
        base: dict[tuple[int, int], SkylineSet] = {}
        for a, b, w, c in self._edges:  # lint: allow=QHL001 one append per edge; the sweeps below check the deadline
            key = _ordered(a, b, tree)
            entry = edge_entry(w, c, a, b, with_prov=store_paths)
            base.setdefault(key, []).append(entry)

        dirty_pairs: set[tuple[int, int]] = set()
        shortcuts_checked = 0

        # Sweep 1: shortcuts in elimination order.
        for x in tree.order:
            if deadline is not None:
                deadline.check()
            bag = tree.bag[x]
            if not bag:
                continue
            for w in bag:  # lint: allow=QHL001 outer sweep checks once per vertex
                key = (x, w)
                needs = key in dirty_seeds or any(
                    (c, x) in dirty_pairs or (c, w) in dirty_pairs
                    for c in self._contributors.get(key, ())
                )
                if not needs:
                    continue
                shortcuts_checked += 1
                rebuilt = skyline_of(base.get(key, []))
                for c in self._contributors.get(key, ()):  # lint: allow=QHL001 outer sweep checks once per vertex
                    through = join(
                        tree.shortcuts[c][x], tree.shortcuts[c][w], mid=c
                    )
                    rebuilt = merge(rebuilt, through)
                if _pairs(rebuilt) != _pairs(tree.shortcuts[x][w]):
                    tree.shortcuts[x][w] = rebuilt
                    dirty_pairs.add(key)
                else:
                    tree.shortcuts[x][w] = rebuilt  # refresh provenance

        # Sweep 2: labels top-down.
        dirty_labels: set[tuple[int, int]] = set()
        labels_checked = 0
        for v in tree.topdown_order:
            if v == tree.root:
                continue
            if deadline is not None:
                deadline.check()
            bag = tree.bag[v]
            shortcut_dirty = any((v, w) in dirty_pairs for w in bag)
            for u in tree.ancestors(v):  # lint: allow=QHL001 outer sweep checks once per vertex
                needs = shortcut_dirty or any(
                    _label_key(w, u, tree) in dirty_labels
                    for w in bag
                    if w != u
                )
                if not needs:
                    continue
                labels_checked += 1
                acc: SkylineSet = []
                for w in bag:  # lint: allow=QHL001 outer sweep checks once per vertex
                    s_vw = tree.shortcuts[v][w]
                    if w == u:
                        part = s_vw
                    else:
                        part = join(s_vw, labels.get(w, u), mid=w)
                    acc = merge(acc, part) if acc else list(part)
                if _pairs(acc) != _pairs(labels.get(v, u)):
                    labels.set(v, u, acc)
                    dirty_labels.add((v, u))
                else:
                    labels.set(v, u, acc)

        # Sweep 3: pruning conditions (cheap; rebuild when labels moved).
        pruning_rebuilt = False
        if dirty_labels:
            labels.version += 1
            self.index.pruning = build_pruning_index(
                tree, labels, self.index.lca, self._index_queries, seed=0
            )
            self.index._default_engine = self.index.qhl_engine()
            pruning_rebuilt = True

        return UpdateReport(
            shortcuts_checked=shortcuts_checked,
            shortcuts_changed=len(dirty_pairs),
            labels_checked=labels_checked,
            labels_changed=len(dirty_labels),
            pruning_rebuilt=pruning_rebuilt,
            seconds=0.0,
        )


def _ordered(a: int, b: int, tree: TreeDecomposition) -> tuple[int, int]:
    """Order a pair as (earlier-eliminated, later-eliminated)."""
    if tree.position[a] < tree.position[b]:
        return (a, b)
    return (b, a)


def _label_key(w: int, u: int, tree: TreeDecomposition) -> tuple[int, int]:
    """The (deeper, shallower) key under which P_wu is stored."""
    if tree.depth[w] >= tree.depth[u]:
        return (w, u)
    return (u, w)


def _pairs(entries: SkylineSet) -> list[tuple[float, float]]:
    return [(e[0], e[1]) for e in entries]


def _build_contributor_index(
    tree: TreeDecomposition,
) -> dict[tuple[int, int], list[int]]:
    """``contributors[(v, w)]`` = vertices ``x`` with ``v, w ∈ X(x)``.

    Eliminating such an ``x`` folds ``S(x,v) ⊗ S(x,w)`` into
    ``S(v, w)``; these are exactly the join inputs of the shortcut
    recurrence.
    """
    contributors: dict[tuple[int, int], list[int]] = {}
    for x in tree.order:
        bag = tree.bag[x]
        for i, a in enumerate(bag):
            for b in bag[i + 1:]:
                contributors.setdefault(
                    _ordered(a, b, tree), []
                ).append(x)
    return contributors
