"""Exception hierarchy for the repro package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch one type at the boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidGraphError(ReproError):
    """The graph violates a structural requirement.

    Raised for self loops, non-positive metrics, vertex ids out of range,
    or operations that require a connected graph.
    """


class DisconnectedGraphError(InvalidGraphError):
    """The operation requires a connected road network."""


class IndexBuildError(ReproError):
    """Index construction failed or was given inconsistent inputs."""


class QueryError(ReproError):
    """A CSP query is malformed (bad vertex ids, non-positive budget)."""


class InfeasibleQueryError(QueryError):
    """No s-t path satisfies the cost budget C.

    The paper's queries are generated with ``C >= d_c(s, t)`` so this never
    fires on paper workloads, but arbitrary user queries can be infeasible.
    """


class SerializationError(ReproError):
    """An index file is missing, truncated, or of an unsupported version."""
