"""Exception hierarchy for the repro package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch one type at the boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidGraphError(ReproError):
    """The graph violates a structural requirement.

    Raised for self loops, non-positive metrics, vertex ids out of range,
    or operations that require a connected graph.
    """


class DisconnectedGraphError(InvalidGraphError):
    """The operation requires a connected road network."""


class GraphFormatError(InvalidGraphError):
    """A network file is malformed.

    Carries the file ``path`` and the 1-based ``line``/``column`` of the
    offending token, and prefixes the message with them, so a bad byte in
    a multi-gigabyte DIMACS file is locatable without bisecting it.
    """

    def __init__(
        self,
        message: str,
        path: str | None = None,
        line: int | None = None,
        column: int | None = None,
    ):
        self.path = path
        self.line = line
        self.column = column
        where = []
        if path is not None:
            where.append(str(path))
        if line is not None:
            where.append(f"line {line}")
        if column is not None:
            where.append(f"col {column}")
        prefix = ", ".join(where)
        super().__init__(f"{prefix}: {message}" if prefix else message)


class IndexBuildError(ReproError):
    """Index construction failed or was given inconsistent inputs."""


class BuildBudgetExceededError(IndexBuildError):
    """A label build overran its time or memory budget.

    Raised by the checkpointed builder *after* the last completed level
    was persisted, so ``build --resume`` continues from where the budget
    ran out instead of restarting from zero.
    """

    def __init__(
        self,
        message: str,
        level: int | None = None,
        elapsed_s: float | None = None,
        rss_mb: float | None = None,
    ):
        super().__init__(message)
        self.level = level
        self.elapsed_s = elapsed_s
        self.rss_mb = rss_mb


class AuditError(IndexBuildError):
    """A loaded index failed its structural/semantic self-audit.

    Carries the machine-readable :class:`~repro.resilience.audit.AuditReport`
    so callers can inspect exactly which invariant broke.
    """

    def __init__(self, message: str, report: object = None):
        super().__init__(message)
        self.report = report


class QueryError(ReproError):
    """A CSP query is malformed (bad vertex ids, non-positive budget)."""


class InfeasibleQueryError(QueryError):
    """No s-t path satisfies the cost budget C.

    The paper's queries are generated with ``C >= d_c(s, t)`` so this never
    fires on paper workloads, but arbitrary user queries can be infeasible.
    """


class SerializationError(ReproError):
    """An index file is missing, truncated, corrupt (checksum mismatch),
    or of an unsupported version."""


class DeadlineExceededError(ReproError):
    """A query (or batch) ran out of its time budget.

    Raised cooperatively from the engines' hoplink / heap loops, so the
    partial work done before the budget expired is preserved in
    ``stats`` (a :class:`~repro.types.QueryStats` or ``None``).
    """

    def __init__(
        self,
        message: str,
        budget_ms: float | None = None,
        elapsed_ms: float | None = None,
        stats: object = None,
    ):
        super().__init__(message)
        self.budget_ms = budget_ms
        self.elapsed_ms = elapsed_ms
        self.stats = stats


class LintConfigError(ReproError):
    """The static-analysis runner was misconfigured.

    Raised for unknown rule ids, unreadable lint paths, malformed
    baseline files, or a name registry that declares nothing — all
    cases where the lint run must fail loudly (CI exit 2) instead of
    passing vacuously.
    """


class WorkerCrashError(ReproError):
    """A pooled worker process died before answering (SIGKILL, OOM).

    Surfaces per affected query in a batch's failure rows: the crash
    costs only the dead worker's chunk, every other chunk's answers are
    kept, and the stitched trace marks the worker's span truncated.
    """


class TaskQuarantinedError(WorkerCrashError):
    """A task crashed its worker on every allowed attempt.

    The supervised pool retries work lost to a dead worker, but a task
    that kills whichever worker picks it up is poison: after
    ``max_task_retries`` requeues it is pulled from rotation and
    surfaced as this error (one failure row per affected query) so the
    rest of the batch completes instead of crash-looping the fleet.
    """


class WorkerRestartExhaustedError(WorkerCrashError):
    """The supervised fleet died and no restart breaker allows a respawn.

    Tasks still pending or leased when the fleet gives up surface as
    this error; seeing it means the failure is environmental (every
    worker dies regardless of task), not a poison task.
    """


class UpdateError(ReproError):
    """Base class for live-update pipeline failures (journal or repair)."""


class UpdateJournalError(UpdateError):
    """The write-ahead update journal could not be read or written.

    Raised for unwritable journal directories and for append failures;
    torn tails found on open are *not* errors — the good prefix is kept
    and the damage is reported through ``torn_lines``.
    """


class UpdateFailedError(UpdateError):
    """Applying a journalled update batch failed and was rolled back.

    The batch stays pending in the journal (``replay`` retries it); the
    previously published epoch keeps serving queries.  ``seq`` is the
    journal sequence number of the failed batch and ``reason`` a short
    machine-readable tag (``"repair"``, ``"audit"``, ``"deadline"``,
    ``"publish"``).
    """

    def __init__(
        self,
        message: str,
        seq: int | None = None,
        reason: str | None = None,
    ):
        super().__init__(message)
        self.seq = seq
        self.reason = reason


class ServiceUnavailableError(ReproError):
    """Every tier of the degradation ladder failed (or is circuit-open).

    ``last_error`` keeps the exception from the deepest tier tried, so
    the root cause is not lost behind the ladder.
    """

    def __init__(self, message: str, last_error: BaseException | None = None):
        super().__init__(message)
        self.last_error = last_error
