"""Forest hop labeling: partitioned QHL indexes with an overlay
(the paper's §7 future-work direction / [20]'s forest labeling)."""

from repro.forest.index import ForestQHLIndex, Region

__all__ = ["ForestQHLIndex", "Region"]
