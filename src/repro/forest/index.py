"""Forest hop labeling: the paper's future-work direction (§7).

"One may explore how to divide the network into sub-networks and
combine the intermediate results since the index costs on the
sub-networks should be limited."  This is also [20]'s *forest labeling*,
which the paper's related work notes "sacrifices the query efficiency"
for a smaller index.

Construction:

1. partition the network into connected regions (BFS growth);
2. build a **full QHL index per region subgraph** — label cost grows
   super-linearly with region size, so k regions cost far less than one
   monolithic index;
3. summarise each region by the exact skyline sets between its boundary
   vertices (read straight off the region labels) and assemble the
   overlay graph (boundary summaries + original cross-region edges).

Queries answer from the region index when both endpoints share a region
and the optimum stays inside, and otherwise stitch region-label lookups
to an overlay search — exact either way, by the same maximal-segment
argument as the COLA engine, but with every intra-region search replaced
by label lookups.
"""

from __future__ import annotations

import time

from repro.baselines.cola import partition_network
from repro.baselines.overlay import overlay_csp_search
from repro.core.engine import QHLIndex
from repro.exceptions import IndexBuildError
from repro.graph.network import RoadNetwork
from repro.labeling.derive import skyline_between_via_labels
from repro.skyline.set_ops import SkylineSet, best_under
from repro.types import CSPQuery, QueryResult, QueryStats


class Region:
    """One partition: its induced subgraph, QHL index, and id maps."""

    def __init__(self, pid: int, vertices: list[int],
                 network: RoadNetwork, seed: int,
                 index_queries_per_region: int):
        self.pid = pid
        self.vertices = vertices
        self.to_local = {g: i for i, g in enumerate(vertices)}
        members = set(vertices)
        sub = RoadNetwork(len(vertices))
        for u, v, w, c in network.edges():
            if u in members and v in members:
                sub.add_edge(self.to_local[u], self.to_local[v], w, c)
        if not sub.is_connected():
            raise IndexBuildError(
                f"region {pid} is not connected — BFS partition invariant "
                "violated"
            )
        self.subgraph = sub
        self.index = QHLIndex.build(
            sub,
            # Tiny regions cannot sample (s, t) pairs — and need no
            # pruning conditions anyway.
            index_queries=[] if len(vertices) < 2 else None,
            num_index_queries=index_queries_per_region,
            store_paths=False,
            seed=seed + pid,
        )

    def skyline(self, global_s: int, global_t: int) -> SkylineSet:
        """Exact skyline between two member vertices, region-internal."""
        return skyline_between_via_labels(
            self.index.tree,
            self.index.labels,
            self.index.lca,
            self.to_local[global_s],
            self.to_local[global_t],
        )


class ForestQHLIndex:
    """Partitioned QHL: smaller index, slower cross-region queries."""

    name = "Forest-QHL"

    def __init__(self, network: RoadNetwork, num_parts: int = 8,
                 seed: int = 0, index_queries_per_region: int = 400):
        started = time.perf_counter()
        self._network = network
        part = partition_network(network, num_parts, seed)
        self._part = part

        groups: dict[int, list[int]] = {}
        for v, pid in enumerate(part):
            groups.setdefault(pid, []).append(v)
        self.regions = {
            pid: Region(pid, members, network, seed,
                        index_queries_per_region)
            for pid, members in sorted(groups.items())
        }

        # Boundary vertices and the overlay.
        boundary: set[int] = set()
        cross_edges = []
        for u, v, w, c in network.edges():
            if part[u] != part[v]:
                boundary.add(u)
                boundary.add(v)
                cross_edges.append((u, v, w, c))
        self._boundary = boundary
        self._boundary_of: dict[int, list[int]] = {}
        for v in sorted(boundary):
            self._boundary_of.setdefault(part[v], []).append(v)

        overlay: dict[int, list[tuple[int, SkylineSet]]] = {
            v: [] for v in boundary
        }
        for pid, members in self._boundary_of.items():
            region = self.regions[pid]
            for i, b in enumerate(members):
                for other in members[i + 1:]:
                    entries = region.skyline(b, other)
                    if entries:
                        overlay[b].append((other, entries))
                        overlay[other].append((b, entries))
        for u, v, w, c in cross_edges:
            overlay[u].append((v, [(w, c, None)]))
            overlay[v].append((u, [(w, c, None)]))
        self._overlay = overlay
        self.build_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    def query(self, source: int, target: int, budget: float) -> QueryResult:
        """Answer one CSP query exactly."""
        query = CSPQuery(source, target, budget).validated(
            self._network.num_vertices
        )
        stats = QueryStats()
        started = time.perf_counter()
        if source == target:
            return QueryResult(query, weight=0, cost=0, stats=stats)

        best: tuple[float, float] | None = None
        ps, pt = self._part[source], self._part[target]

        if ps == pt:
            entries = self.regions[ps].skyline(source, target)
            stats.label_lookups += 1
            found = best_under(entries, budget)
            if found is not None:
                best = (found[0], found[1])

        s_links = []
        for b in self._boundary_of.get(ps, []):
            entries = (
                self.regions[ps].skyline(source, b)
                if b != source
                else [(0, 0, None)]
            )
            stats.label_lookups += 1
            if entries:
                s_links.append((b, entries))
        t_links = {}
        for b in self._boundary_of.get(pt, []):
            entries = (
                self.regions[pt].skyline(b, target)
                if b != target
                else [(0, 0, None)]
            )
            stats.label_lookups += 1
            if entries:
                t_links[b] = entries

        overlay_best = overlay_csp_search(
            self._overlay, s_links, t_links, budget, stats
        )
        if overlay_best is not None and (best is None or overlay_best < best):
            best = overlay_best

        stats.seconds = time.perf_counter() - started
        if best is None:
            return QueryResult(query, stats=stats)
        return QueryResult(query, weight=best[0], cost=best[1], stats=stats)

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Region labels + pruning conditions + overlay summaries."""
        total = 0
        for region in self.regions.values():
            total += region.index.labels.size_bytes()
            total += region.index.pruning.size_bytes()
        total += 16 * sum(
            len(entries)
            for edges in self._overlay.values()
            for _v, entries in edges
        )
        return total
