"""Road-network substrate: graph type, generators, file IO, and classic
single-criterion algorithms."""

from repro.graph.algorithms import (
    bfs_hops,
    connected_components,
    dijkstra,
    estimate_diameter,
    exact_diameter,
    shortest_distance,
    shortest_path,
)
from repro.graph.generators import (
    dense_core_network,
    grid_network,
    random_connected_network,
    random_geometric_network,
    ring_network,
)
from repro.graph.io import (
    read_csp_text,
    read_dimacs_pair,
    write_csp_text,
    write_dimacs_pair,
)
from repro.graph.network import Edge, RoadNetwork

__all__ = [
    "Edge",
    "RoadNetwork",
    "bfs_hops",
    "connected_components",
    "dijkstra",
    "estimate_diameter",
    "exact_diameter",
    "shortest_distance",
    "shortest_path",
    "dense_core_network",
    "grid_network",
    "random_connected_network",
    "random_geometric_network",
    "ring_network",
    "read_csp_text",
    "read_dimacs_pair",
    "write_csp_text",
    "write_dimacs_pair",
]
