"""Single-criterion graph algorithms used across the package.

These are the classic building blocks the paper's evaluation setup needs:
Dijkstra over either metric (the query generator bins queries by their
shortest *cost* distance ``d``), BFS, connectivity, and the double-sweep
diameter estimate that stands in for the paper's ``d_max`` column in
Table 1.
"""

from __future__ import annotations

import heapq
import random
from typing import Iterable, Literal

from repro.exceptions import DisconnectedGraphError, InvalidGraphError
from repro.graph.network import RoadNetwork

Metric = Literal["weight", "cost"]

INF = float("inf")


def _metric_index(metric: Metric) -> int:
    if metric == "weight":
        return 1
    if metric == "cost":
        return 2
    raise InvalidGraphError(f"unknown metric {metric!r}; use 'weight' or 'cost'")


def dijkstra(
    network: RoadNetwork,
    source: int,
    metric: Metric = "cost",
    targets: Iterable[int] | None = None,
) -> list[float]:
    """Single-source shortest distances over one metric.

    Parameters
    ----------
    network:
        The road network.
    source:
        Start vertex.
    metric:
        ``"cost"`` (the paper's *distance*, used to bin query sets) or
        ``"weight"`` (the objective).
    targets:
        Optional set of vertices; the search stops early once all of them
        are settled.

    Returns
    -------
    list[float]
        ``dist[v]`` for every vertex, ``inf`` where unreachable (or not
        settled before an early stop).
    """
    idx = _metric_index(metric)
    n = network.num_vertices
    dist = [INF] * n
    dist[source] = 0.0
    pending = set(targets) if targets is not None else None
    if pending is not None:
        pending.discard(source)

    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        if pending is not None:
            pending.discard(v)
            if not pending:
                break
        for entry in network.neighbors(v):
            nbr = entry[0]
            nd = d + entry[idx]
            if nd < dist[nbr]:
                dist[nbr] = nd
                heapq.heappush(heap, (nd, nbr))
    return dist


def shortest_distance(
    network: RoadNetwork, source: int, target: int, metric: Metric = "cost"
) -> float:
    """Shortest distance between two vertices over one metric."""
    return dijkstra(network, source, metric=metric, targets=[target])[target]


def shortest_path(
    network: RoadNetwork, source: int, target: int, metric: Metric = "cost"
) -> list[int]:
    """A concrete shortest vertex path over one metric.

    Raises
    ------
    DisconnectedGraphError
        If ``target`` is unreachable from ``source``.
    """
    idx = _metric_index(metric)
    n = network.num_vertices
    dist = [INF] * n
    parent = [-1] * n
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        if v == target:
            break
        for entry in network.neighbors(v):
            nbr = entry[0]
            nd = d + entry[idx]
            if nd < dist[nbr]:
                dist[nbr] = nd
                parent[nbr] = v
                heapq.heappush(heap, (nd, nbr))
    if dist[target] == INF:
        raise DisconnectedGraphError(
            f"vertex {target} unreachable from {source}"
        )
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def bfs_hops(network: RoadNetwork, source: int) -> list[int]:
    """Hop counts from ``source``; ``-1`` where unreachable."""
    n = network.num_vertices
    hops = [-1] * n
    hops[source] = 0
    frontier = [source]
    while frontier:
        nxt = []
        for v in frontier:
            for nbr, _w, _c in network.neighbors(v):
                if hops[nbr] < 0:
                    hops[nbr] = hops[v] + 1
                    nxt.append(nbr)
        frontier = nxt
    return hops


def connected_components(network: RoadNetwork) -> list[list[int]]:
    """Connected components as lists of vertex ids."""
    n = network.num_vertices
    seen = bytearray(n)
    components = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = 1
        stack = [start]
        comp = [start]
        while stack:
            v = stack.pop()
            for nbr, _w, _c in network.neighbors(v):
                if not seen[nbr]:
                    seen[nbr] = 1
                    comp.append(nbr)
                    stack.append(nbr)
        components.append(comp)
    return components


def farthest_vertex(
    network: RoadNetwork, source: int, metric: Metric = "cost"
) -> tuple[int, float]:
    """The reachable vertex farthest from ``source`` and its distance."""
    dist = dijkstra(network, source, metric=metric)
    best_v, best_d = source, 0.0
    for v, d in enumerate(dist):
        if d != INF and d > best_d:
            best_v, best_d = v, d
    return best_v, best_d


def estimate_diameter(
    network: RoadNetwork,
    metric: Metric = "cost",
    sweeps: int = 4,
    seed: int = 0,
) -> float:
    """Estimate ``d_max``, the maximum shortest distance (Table 1).

    Uses the classic double-sweep heuristic: start from a few random
    vertices, repeatedly hop to the farthest vertex found, and keep the
    largest eccentricity seen.  Exact on trees; a tight lower bound in
    practice on road-like graphs, which is all the query generator needs.

    Raises
    ------
    DisconnectedGraphError
        If the network is not connected (the diameter would be infinite).
    """
    if not network.is_connected():
        raise DisconnectedGraphError("diameter of a disconnected network")
    rng = random.Random(seed)
    n = network.num_vertices
    best = 0.0
    start = rng.randrange(n)
    for _ in range(max(1, sweeps)):
        far, dist = farthest_vertex(network, start, metric=metric)
        if dist > best:
            best = dist
        start = far
    return best


def eccentricity(
    network: RoadNetwork, v: int, metric: Metric = "cost"
) -> float:
    """Exact eccentricity of ``v`` (max shortest distance to any vertex)."""
    dist = dijkstra(network, v, metric=metric)
    finite = [d for d in dist if d != INF]
    return max(finite)


def exact_diameter(network: RoadNetwork, metric: Metric = "cost") -> float:
    """Exact diameter via all-pairs sweeps; only for small test graphs."""
    if not network.is_connected():
        raise DisconnectedGraphError("diameter of a disconnected network")
    return max(
        eccentricity(network, v, metric=metric) for v in network.vertices()
    )


def sample_connected_pair(
    network: RoadNetwork, rng: random.Random
) -> tuple[int, int]:
    """Draw a random ``(s, t)`` pair with ``s != t`` in a connected network."""
    n = network.num_vertices
    if n < 2:
        raise InvalidGraphError("need at least two vertices to sample a pair")
    s = rng.randrange(n)
    t = rng.randrange(n)
    while t == s:
        t = rng.randrange(n)
    return s, t
