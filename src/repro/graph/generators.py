"""Synthetic road-network generators.

The paper evaluates on DIMACS NY / BAY / COL (264k-436k vertices).  Those
inputs are not available offline and are far beyond what a pure-Python
index build can hold, so this module provides scaled-down generators that
reproduce each network's *qualitative* structure, which is what drives the
paper's results:

* :func:`grid_network` — "NY-like": a dense grid with occasional diagonal
  shortcuts.  Many alternative routes ⇒ large skyline sets.
* :func:`ring_network` — "BAY-like": towns around a bay connected by a
  coastal ring and a few bridges.  Few alternatives ⇒ small skyline sets.
* :func:`dense_core_network` — "COL-like": a very dense core (Denver) with
  sparse corridors radiating outwards.  Skyline sets blow up inside the
  core, which is what makes CSP-2Hop's Cartesian concatenation collapse.
* :func:`random_connected_network` / :func:`random_geometric_network` —
  small random graphs for tests and property checks.

All generators take a ``seed`` and are fully deterministic.  Edge metrics
are positive integers: the *cost* models road length and the *weight*
models travel time, correlated with the length but jittered by a speed
factor (mirroring the DIMACS travel-time/distance pairing the paper uses).
"""

from __future__ import annotations

import random

from repro.exceptions import InvalidGraphError
from repro.graph.network import RoadNetwork


def _edge_metrics(rng: random.Random, scale: int = 10) -> tuple[int, int]:
    """A correlated (weight, cost) pair for one road segment.

    ``cost`` is the segment length; ``weight`` is length times a random
    speed factor, so the two metrics correlate but routinely disagree on
    which of two routes is better — the regime in which skyline sets are
    non-trivial.
    """
    cost = rng.randint(max(2, scale // 2), scale + scale // 2)
    # Speed factors span highways to congested streets; the wide range
    # keeps skyline sets non-trivial on scaled-down networks, standing in
    # for the sheer size of the paper's DIMACS inputs (DESIGN.md §3).
    factor = rng.uniform(0.3, 2.5)
    weight = max(1, round(cost * factor))
    return weight, cost


def grid_network(
    rows: int,
    cols: int,
    seed: int = 0,
    diagonal_prob: float = 0.12,
    scale: int = 10,
) -> RoadNetwork:
    """A dense grid with random diagonal shortcuts (NY-like).

    Vertices are laid out row-major; every horizontal/vertical neighbour
    pair is connected, plus each cell gets a diagonal with probability
    ``diagonal_prob``.  Grids maximise route diversity, which is what makes
    New York the paper's large-skyline-set dataset.
    """
    if rows < 2 or cols < 2:
        raise InvalidGraphError("grid needs at least 2x2 vertices")
    rng = random.Random(seed)
    network = RoadNetwork(rows * cols)

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                w, cst = _edge_metrics(rng, scale)
                network.add_edge(vid(r, c), vid(r, c + 1), w, cst)
            if r + 1 < rows:
                w, cst = _edge_metrics(rng, scale)
                network.add_edge(vid(r, c), vid(r + 1, c), w, cst)
            if r + 1 < rows and c + 1 < cols and rng.random() < diagonal_prob:
                w, cst = _edge_metrics(rng, scale + scale // 2)
                if rng.random() < 0.5:
                    network.add_edge(vid(r, c), vid(r + 1, c + 1), w, cst)
                else:
                    network.add_edge(vid(r, c + 1), vid(r + 1, c), w, cst)
    return network


def ring_network(
    num_towns: int = 12,
    town_rows: int = 4,
    town_cols: int = 4,
    num_bridges: int = 3,
    seed: int = 0,
    scale: int = 10,
) -> RoadNetwork:
    """Towns around a bay, joined by a coastal ring and a few bridges
    (BAY-like).

    Each town is a small grid; consecutive towns are linked by a long
    coastal road and ``num_bridges`` random town pairs get a direct bridge.
    Routes between far towns are funnelled through the ring, so skyline
    sets stay small — the reason the paper's BAY numbers track NY's despite
    BAY being bigger.
    """
    if num_towns < 3:
        raise InvalidGraphError("a ring needs at least three towns")
    rng = random.Random(seed)
    town_size = town_rows * town_cols
    network = RoadNetwork(num_towns * town_size)

    def vid(town: int, r: int, c: int) -> int:
        return town * town_size + r * town_cols + c

    # Local streets inside each town.
    for town in range(num_towns):
        for r in range(town_rows):
            for c in range(town_cols):
                if c + 1 < town_cols:
                    w, cst = _edge_metrics(rng, scale)
                    network.add_edge(vid(town, r, c), vid(town, r, c + 1), w, cst)
                if r + 1 < town_rows:
                    w, cst = _edge_metrics(rng, scale)
                    network.add_edge(vid(town, r, c), vid(town, r + 1, c), w, cst)

    def gateway(town: int) -> int:
        return vid(
            town, rng.randrange(town_rows), rng.randrange(town_cols)
        )

    # Coastal ring: long fast roads between consecutive towns.
    for town in range(num_towns):
        nxt = (town + 1) % num_towns
        length = rng.randint(scale * 4, scale * 8)
        weight = max(1, round(length * rng.uniform(0.4, 0.9)))
        network.add_edge(gateway(town), gateway(nxt), weight, length)

    # A few bridges across the bay.
    for _ in range(num_bridges):
        a = rng.randrange(num_towns)
        b = (a + num_towns // 2 + rng.randint(-1, 1)) % num_towns
        if a == b:
            continue
        length = rng.randint(scale * 3, scale * 6)
        weight = max(1, round(length * rng.uniform(0.5, 1.2)))
        network.add_edge(gateway(a), gateway(b), weight, length)
    return network


def dense_core_network(
    core_rows: int = 14,
    core_cols: int = 14,
    num_corridors: int = 8,
    corridor_length: int = 18,
    seed: int = 0,
    scale: int = 10,
) -> RoadNetwork:
    """A very dense core with sparse corridors radiating outwards
    (COL-like).

    The core is a grid with a high diagonal density (Denver); corridors are
    paths of vertices hanging off random core vertices (mountain roads).
    Long queries must cross the dense core, producing the very large
    skyline sets behind the paper's COL blow-up for CSP-2Hop.
    """
    rng = random.Random(seed)
    core = core_rows * core_cols
    total = core + num_corridors * corridor_length
    network = RoadNetwork(total)

    def vid(r: int, c: int) -> int:
        return r * core_cols + c

    for r in range(core_rows):
        for c in range(core_cols):
            if c + 1 < core_cols:
                w, cst = _edge_metrics(rng, scale)
                network.add_edge(vid(r, c), vid(r, c + 1), w, cst)
            if r + 1 < core_rows:
                w, cst = _edge_metrics(rng, scale)
                network.add_edge(vid(r, c), vid(r + 1, c), w, cst)
            # High diagonal density is what differentiates the core.
            if r + 1 < core_rows and c + 1 < core_cols and rng.random() < 0.35:
                w, cst = _edge_metrics(rng, scale + scale // 2)
                network.add_edge(vid(r, c), vid(r + 1, c + 1), w, cst)

    nxt = core
    for _ in range(num_corridors):
        anchor = rng.randrange(core)
        prev = anchor
        for _ in range(corridor_length):
            length = rng.randint(scale, scale * 3)
            weight = max(1, round(length * rng.uniform(0.8, 1.5)))
            network.add_edge(prev, nxt, weight, length)
            prev = nxt
            nxt += 1
    return network


def random_connected_network(
    num_vertices: int,
    extra_edges: int,
    seed: int = 0,
    scale: int = 10,
) -> RoadNetwork:
    """A random tree plus ``extra_edges`` random chords.

    The workhorse for unit and property tests: small, connected by
    construction, and parameterised enough to hit edge cases (trees,
    near-cliques).
    """
    if num_vertices < 1:
        raise InvalidGraphError("need at least one vertex")
    rng = random.Random(seed)
    network = RoadNetwork(num_vertices)
    for v in range(1, num_vertices):
        parent = rng.randrange(v)
        w, c = _edge_metrics(rng, scale)
        network.add_edge(parent, v, w, c)
    added = 0
    attempts = 0
    while added < extra_edges and attempts < extra_edges * 20 + 20:
        attempts += 1
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v or network.has_edge(u, v):
            continue
        w, c = _edge_metrics(rng, scale)
        network.add_edge(u, v, w, c)
        added += 1
    return network


def random_geometric_network(
    num_vertices: int,
    radius: float = 0.18,
    seed: int = 0,
    scale: int = 20,
) -> RoadNetwork:
    """Random points in the unit square, connected within ``radius``.

    Geometric graphs are the standard road-network surrogate: edge length
    (cost) is the Euclidean distance scaled to an integer, travel time adds
    a speed jitter.  A spanning chain over the points sorted by x is added
    first so the network is always connected.
    """
    if num_vertices < 2:
        raise InvalidGraphError("need at least two vertices")
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(num_vertices)]
    order = sorted(range(num_vertices), key=lambda i: points[i])
    network = RoadNetwork(num_vertices)

    def dist(i: int, j: int) -> float:
        (x1, y1), (x2, y2) = points[i], points[j]
        return ((x1 - x2) ** 2 + (y1 - y2) ** 2) ** 0.5

    def add(i: int, j: int) -> None:
        length = max(1, round(dist(i, j) * scale * 5))
        weight = max(1, round(length * rng.uniform(0.7, 1.6)))
        network.add_edge(i, j, weight, length)

    for a, b in zip(order, order[1:], strict=False):
        add(a, b)
    for i in range(num_vertices):
        for j in range(i + 1, num_vertices):
            if dist(i, j) <= radius and not network.has_edge(i, j):
                add(i, j)
    return network
