"""Road-network file formats.

Two formats are supported:

* **DIMACS** ``.gr`` — the 9th DIMACS Implementation Challenge format the
  paper's datasets ship in.  Each file carries one metric, so a network is
  a *pair* of files (travel time ``w`` + distance ``c``) over the same arc
  list; see :func:`read_dimacs_pair` / :func:`write_dimacs_pair`.
* **CSP text** — a single-file convenience format used by this repo's CLI:
  a ``csp <n> <m>`` header followed by ``e u v w c`` lines (0-indexed).

Parsing is delegated to the validating layer in
:mod:`repro.resilience.ingest`: malformed input raises a typed
:class:`~repro.exceptions.GraphFormatError` with path/line/column
context, and the readers here accept an optional
:class:`~repro.resilience.ingest.ParsePolicy` for lenient parsing and
the largest-connected-component fallback.
"""

from __future__ import annotations

import os

from repro.graph.network import RoadNetwork


# ----------------------------------------------------------------------
# DIMACS .gr pairs
# ----------------------------------------------------------------------
def read_dimacs_pair(
    weight_path: str, cost_path: str, policy=None
) -> RoadNetwork:
    """Read an undirected network from a DIMACS (weight, cost) file pair.

    DIMACS road networks list each undirected edge as two opposite arcs;
    duplicate ``(u, v)`` / ``(v, u)`` arcs with identical metrics collapse
    into one undirected edge.  The two files must describe the same arc
    multiset — an edge-set mismatch is reported explicitly (with example
    arcs) rather than producing an inconsistent network.

    ``policy`` (a :class:`~repro.resilience.ingest.ParsePolicy`,
    default strict) governs lenient parsing; use
    :func:`repro.resilience.ingest.load_dimacs_network` to also get the
    :class:`~repro.resilience.ingest.IngestReport`.
    """
    from repro.resilience.ingest import STRICT, load_dimacs_network

    network, _report = load_dimacs_network(
        weight_path, cost_path, policy=policy or STRICT
    )
    return network


def write_dimacs_pair(
    network: RoadNetwork, weight_path: str, cost_path: str
) -> None:
    """Write a network as a DIMACS (weight, cost) file pair.

    Each undirected edge is emitted as two opposite arcs, as the DIMACS
    road networks do.
    """

    def emit(path: str, metric_index: int, name: str) -> None:
        with open(path, "w") as f:
            f.write(f"c {name} metric written by repro\n")
            f.write(f"p sp {network.num_vertices} {2 * network.num_edges}\n")
            for u, v, w, c in network.edges():
                value = (w, c)[metric_index]
                text = _format_number(value)
                f.write(f"a {u + 1} {v + 1} {text}\n")
                f.write(f"a {v + 1} {u + 1} {text}\n")

    emit(weight_path, 0, "weight")
    emit(cost_path, 1, "cost")


# ----------------------------------------------------------------------
# Single-file CSP text format
# ----------------------------------------------------------------------
def read_csp_text(path: str, policy=None) -> RoadNetwork:
    """Read a network from the single-file ``csp`` text format.

    ``policy`` (a :class:`~repro.resilience.ingest.ParsePolicy`,
    default strict) governs lenient parsing; use
    :func:`repro.resilience.ingest.load_csp_network` to also get the
    :class:`~repro.resilience.ingest.IngestReport`.
    """
    from repro.resilience.ingest import STRICT, load_csp_network

    network, _report = load_csp_network(path, policy=policy or STRICT)
    return network


def write_csp_text(network: RoadNetwork, path: str) -> None:
    """Write a network in the single-file ``csp`` text format."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as f:
        f.write("# repro CSP network: e u v weight cost (0-indexed)\n")
        f.write(f"csp {network.num_vertices} {network.num_edges}\n")
        for u, v, w, c in network.edges():
            f.write(f"e {u} {v} {_format_number(w)} {_format_number(c)}\n")


def _format_number(x: float) -> str:
    """Render ints without a trailing '.0' so files round-trip exactly."""
    if isinstance(x, int):
        return str(x)
    if isinstance(x, float) and x.is_integer():
        return str(int(x))
    return repr(x)
