"""Road-network file formats.

Two formats are supported:

* **DIMACS** ``.gr`` — the 9th DIMACS Implementation Challenge format the
  paper's datasets ship in.  Each file carries one metric, so a network is
  a *pair* of files (travel time ``w`` + distance ``c``) over the same arc
  list; see :func:`read_dimacs_pair` / :func:`write_dimacs_pair`.
* **CSP text** — a single-file convenience format used by this repo's CLI:
  a ``csp <n> <m>`` header followed by ``e u v w c`` lines (0-indexed).
"""

from __future__ import annotations

import os
from typing import Iterable, TextIO

from repro.exceptions import InvalidGraphError
from repro.graph.network import RoadNetwork


# ----------------------------------------------------------------------
# DIMACS .gr pairs
# ----------------------------------------------------------------------
def _parse_dimacs(stream: TextIO) -> tuple[int, list[tuple[int, int, float]]]:
    """Parse one DIMACS .gr stream into ``(n, [(u, v, value)])`` (0-indexed)."""
    n = -1
    arcs: list[tuple[int, int, float]] = []
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        parts = line.split()
        if parts[0] == "p":
            if len(parts) != 4 or parts[1] != "sp":
                raise InvalidGraphError(
                    f"line {lineno}: malformed problem line {line!r}"
                )
            n = int(parts[2])
        elif parts[0] == "a":
            if len(parts) != 4:
                raise InvalidGraphError(
                    f"line {lineno}: malformed arc line {line!r}"
                )
            u, v = int(parts[1]) - 1, int(parts[2]) - 1
            arcs.append((u, v, float(parts[3])))
        else:
            raise InvalidGraphError(
                f"line {lineno}: unknown record type {parts[0]!r}"
            )
    if n < 0:
        raise InvalidGraphError("missing 'p sp' problem line")
    return n, arcs


def read_dimacs_pair(weight_path: str, cost_path: str) -> RoadNetwork:
    """Read an undirected network from a DIMACS (weight, cost) file pair.

    DIMACS road networks list each undirected edge as two opposite arcs;
    duplicate ``(u, v)`` / ``(v, u)`` arcs with identical metrics collapse
    into one undirected edge.  The two files must describe the same arcs.
    """
    with open(weight_path) as f:
        n_w, arcs_w = _parse_dimacs(f)
    with open(cost_path) as f:
        n_c, arcs_c = _parse_dimacs(f)
    if n_w != n_c or len(arcs_w) != len(arcs_c):
        raise InvalidGraphError(
            "weight and cost files disagree on network shape: "
            f"{n_w} vs {n_c} vertices, {len(arcs_w)} vs {len(arcs_c)} arcs"
        )
    network = RoadNetwork(n_w)
    seen: set[tuple[int, int, float, float]] = set()
    for (u, v, w), (u2, v2, c) in zip(arcs_w, arcs_c):
        if (u, v) != (u2, v2):
            raise InvalidGraphError(
                f"arc mismatch between files: ({u},{v}) vs ({u2},{v2})"
            )
        key = (min(u, v), max(u, v), w, c)
        if key in seen:
            continue
        seen.add(key)
        network.add_edge(u, v, w, c)
    return network


def write_dimacs_pair(
    network: RoadNetwork, weight_path: str, cost_path: str
) -> None:
    """Write a network as a DIMACS (weight, cost) file pair.

    Each undirected edge is emitted as two opposite arcs, as the DIMACS
    road networks do.
    """

    def emit(path: str, metric_index: int, name: str) -> None:
        with open(path, "w") as f:
            f.write(f"c {name} metric written by repro\n")
            f.write(f"p sp {network.num_vertices} {2 * network.num_edges}\n")
            for u, v, w, c in network.edges():
                value = (w, c)[metric_index]
                text = _format_number(value)
                f.write(f"a {u + 1} {v + 1} {text}\n")
                f.write(f"a {v + 1} {u + 1} {text}\n")

    emit(weight_path, 0, "weight")
    emit(cost_path, 1, "cost")


# ----------------------------------------------------------------------
# Single-file CSP text format
# ----------------------------------------------------------------------
def read_csp_text(path: str) -> RoadNetwork:
    """Read a network from the single-file ``csp`` text format."""
    with open(path) as f:
        return _parse_csp_text(f)


def _parse_csp_text(stream: TextIO) -> RoadNetwork:
    network: RoadNetwork | None = None
    declared_edges = 0
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "csp":
            if len(parts) != 3:
                raise InvalidGraphError(
                    f"line {lineno}: malformed header {line!r}"
                )
            network = RoadNetwork(int(parts[1]))
            declared_edges = int(parts[2])
        elif parts[0] == "e":
            if network is None:
                raise InvalidGraphError(
                    f"line {lineno}: edge before 'csp' header"
                )
            if len(parts) != 5:
                raise InvalidGraphError(
                    f"line {lineno}: malformed edge line {line!r}"
                )
            u, v = int(parts[1]), int(parts[2])
            network.add_edge(u, v, _parse_number(parts[3]), _parse_number(parts[4]))
        else:
            raise InvalidGraphError(
                f"line {lineno}: unknown record type {parts[0]!r}"
            )
    if network is None:
        raise InvalidGraphError("missing 'csp' header line")
    if network.num_edges != declared_edges:
        raise InvalidGraphError(
            f"header declares {declared_edges} edges, file has "
            f"{network.num_edges}"
        )
    return network


def write_csp_text(network: RoadNetwork, path: str) -> None:
    """Write a network in the single-file ``csp`` text format."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as f:
        f.write("# repro CSP network: e u v weight cost (0-indexed)\n")
        f.write(f"csp {network.num_vertices} {network.num_edges}\n")
        for u, v, w, c in network.edges():
            f.write(f"e {u} {v} {_format_number(w)} {_format_number(c)}\n")


def _format_number(x: float) -> str:
    """Render ints without a trailing '.0' so files round-trip exactly."""
    if isinstance(x, int):
        return str(x)
    if isinstance(x, float) and x.is_integer():
        return str(int(x))
    return repr(x)


def _parse_number(text: str) -> float:
    value = float(text)
    if value.is_integer():
        return int(value)
    return value
