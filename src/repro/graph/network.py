"""Bi-criteria road network representation.

The paper (Definition 1) models a road network as a connected undirected
graph where every edge carries a *weight* ``w(e) > 0`` (the objective, e.g.
travel time) and a *cost* ``c(e) > 0`` (the constrained metric, e.g.
distance or toll).  :class:`RoadNetwork` is the single graph type used by
every subsystem in this package.

Design notes
------------
* Vertices are dense integers ``0 .. n-1``; adjacency is a list of
  ``(neighbour, weight, cost)`` tuples per vertex.  This is the fastest
  layout pure Python offers for Dijkstra-style scans.
* Parallel edges are allowed (two roads between the same junctions with
  different trade-offs both matter for skyline paths); self loops are not.
* Metrics are kept as numbers (typically ``int``).  Integer metrics make
  skyline-set equality exact, which Algorithm 6 of the paper relies on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.exceptions import InvalidGraphError

Edge = tuple[int, int, float, float]
"""An undirected edge ``(u, v, weight, cost)``."""


class RoadNetwork:
    """An undirected graph whose edges carry a (weight, cost) pair.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids are ``0 .. num_vertices - 1``.

    Examples
    --------
    >>> g = RoadNetwork(3)
    >>> g.add_edge(0, 1, weight=2, cost=5)
    >>> g.add_edge(1, 2, weight=4, cost=1)
    >>> sorted(g.neighbors(1))
    [(0, 2, 5), (2, 4, 1)]
    """

    __slots__ = ("_n", "_adj", "_edges")

    def __init__(self, num_vertices: int):
        if num_vertices <= 0:
            raise InvalidGraphError("a road network needs at least one vertex")
        self._n = num_vertices
        self._adj: list[list[tuple[int, float, float]]] = [
            [] for _ in range(num_vertices)
        ]
        self._edges: list[Edge] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float, cost: float) -> None:
        """Add the undirected edge ``(u, v)`` with the given metrics.

        Raises
        ------
        InvalidGraphError
            If either endpoint is out of range, ``u == v``, or either
            metric is not strictly positive (the paper requires
            ``w, c ∈ R+``; several lemmas, e.g. Lemma 4, depend on it).
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise InvalidGraphError(f"self loop at vertex {u} is not allowed")
        if weight <= 0 or cost <= 0:
            raise InvalidGraphError(
                f"edge ({u}, {v}) must have positive metrics, "
                f"got weight={weight}, cost={cost}"
            )
        self._adj[u].append((v, weight, cost))
        self._adj[v].append((u, weight, cost))
        self._edges.append((u, v, weight, cost))

    @classmethod
    def from_edges(cls, num_vertices: int, edges: Iterable[Edge]) -> "RoadNetwork":
        """Build a network from an iterable of ``(u, v, weight, cost)``."""
        network = cls(num_vertices)
        for u, v, weight, cost in edges:
            network.add_edge(u, v, weight, cost)
        return network

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|`` (parallel edges counted)."""
        return len(self._edges)

    def vertices(self) -> range:
        """All vertex ids."""
        return range(self._n)

    def edges(self) -> Iterator[Edge]:
        """Iterate over the edges as ``(u, v, weight, cost)`` tuples."""
        return iter(self._edges)

    def neighbors(self, v: int) -> Sequence[tuple[int, float, float]]:
        """The adjacency list of ``v``: tuples ``(neighbour, weight, cost)``."""
        self._check_vertex(v)
        return self._adj[v]

    def degree(self, v: int) -> int:
        """Number of incident edge endpoints at ``v``."""
        self._check_vertex(v)
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether at least one edge connects ``u`` and ``v``."""
        self._check_vertex(u)
        self._check_vertex(v)
        # Scan the smaller adjacency list.
        if len(self._adj[u]) > len(self._adj[v]):
            u, v = v, u
        return any(nbr == v for nbr, _w, _c in self._adj[u])

    def edge_metrics(self, u: int, v: int) -> list[tuple[float, float]]:
        """All ``(weight, cost)`` pairs of edges between ``u`` and ``v``."""
        self._check_vertex(u)
        self._check_vertex(v)
        return [(w, c) for nbr, w, c in self._adj[u] if nbr == v]

    def is_connected(self) -> bool:
        """Whether the graph is connected (Definition 1 requires it)."""
        seen = bytearray(self._n)
        stack = [0]
        seen[0] = 1
        count = 1
        adj = self._adj
        while stack:
            v = stack.pop()
            for nbr, _w, _c in adj[v]:
                if not seen[nbr]:
                    seen[nbr] = 1
                    count += 1
                    stack.append(nbr)
        return count == self._n

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def copy(self) -> "RoadNetwork":
        """An independent deep copy of the network."""
        return RoadNetwork.from_edges(self._n, self._edges)

    def with_metrics(
        self,
        weights: Sequence[float] | None = None,
        costs: Sequence[float] | None = None,
    ) -> "RoadNetwork":
        """A copy with per-edge metrics replaced.

        ``weights`` / ``costs`` are indexed in edge-insertion order; pass
        ``None`` to keep the existing values.  Used by the weak-correlation
        experiment (paper §5.2.1) to swap in traffic-signal weights.
        """
        if weights is not None and len(weights) != len(self._edges):
            raise InvalidGraphError(
                f"expected {len(self._edges)} weights, got {len(weights)}"
            )
        if costs is not None and len(costs) != len(self._edges):
            raise InvalidGraphError(
                f"expected {len(self._edges)} costs, got {len(costs)}"
            )
        edges = []
        for idx, (u, v, w, c) in enumerate(self._edges):
            new_w = w if weights is None else weights[idx]
            new_c = c if costs is None else costs[idx]
            edges.append((u, v, new_w, new_c))
        return RoadNetwork.from_edges(self._n, edges)

    def path_metrics(self, path: Sequence[int]) -> tuple[float, float]:
        """``(w(p), c(p))`` of a concrete vertex path (Definition 2).

        When parallel edges exist between consecutive vertices the cheapest
        consistent choice is ambiguous; this takes, per hop, the pair with
        the smallest weight and, among those, the smallest cost.

        Raises
        ------
        InvalidGraphError
            If a consecutive pair in ``path`` is not an edge.
        """
        if len(path) < 1:
            raise InvalidGraphError("a path needs at least one vertex")
        total_w = 0.0
        total_c = 0.0
        for u, v in zip(path, path[1:], strict=False):
            options = self.edge_metrics(u, v)
            if not options:
                raise InvalidGraphError(f"({u}, {v}) is not an edge")
            w, c = min(options)
            total_w += w
            total_c += c
        return total_w, total_c

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise InvalidGraphError(
                f"vertex {v} out of range [0, {self._n - 1}]"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RoadNetwork(|V|={self._n}, |E|={len(self._edges)})"
