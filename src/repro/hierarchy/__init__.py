"""Tree decomposition of road networks: construction (Algorithm 1 with
skyline shortcuts), the tree structure, LCA, and structural validation."""

from repro.hierarchy.decomposition import build_tree_decomposition
from repro.hierarchy.lca import LCAIndex
from repro.hierarchy.tree import TreeDecomposition
from repro.hierarchy.validation import (
    is_separator,
    validate_definition7,
    validate_property1,
    validate_property2,
)

__all__ = [
    "LCAIndex",
    "TreeDecomposition",
    "build_tree_decomposition",
    "is_separator",
    "validate_definition7",
    "validate_property1",
    "validate_property2",
]
