"""Tree decomposition construction (paper Algorithm 1) with skyline
shortcuts.

The construction eliminates vertices in a heuristic order (min-degree by
default, as in the paper; min-fill as an alternative).  Eliminating ``v``

1. records ``X(v) = {v} ∪ N_H(v)`` and the shortcut skyline sets
   ``S(v, w)`` for each current neighbour ``w``, and
2. for every neighbour pair ``(a, b)`` folds the paths through ``v`` into
   the working graph: ``S(a, b) ← skyline(S(a, b) ∪ S(a, v) ⊗ S(v, b))``.

Step 2 is the multi-criteria analogue of the fill-in edge of Algorithm 1,
line 6: at the moment ``v`` is eliminated, ``S(v, w)`` is exactly the
skyline over v-w paths whose interior vertices were eliminated earlier —
the invariant the label recurrence relies on (DESIGN.md §5).
"""

from __future__ import annotations

import heapq
import time
from typing import Literal

from repro.exceptions import DisconnectedGraphError, IndexBuildError
from repro.graph.network import RoadNetwork
from repro.hierarchy.tree import TreeDecomposition
from repro.skyline.entries import edge_entry
from repro.skyline.set_ops import SkylineSet, join, merge, skyline_of, truncate

Strategy = Literal["min_degree", "min_fill"]


def build_tree_decomposition(
    network: RoadNetwork,
    strategy: Strategy = "min_degree",
    store_paths: bool = True,
    max_skyline: int | None = None,
) -> TreeDecomposition:
    """Run Algorithm 1 and return the decomposition with shortcuts.

    Parameters
    ----------
    network:
        A connected road network.
    strategy:
        ``"min_degree"`` (the paper's choice) eliminates the vertex with
        the fewest current neighbours; ``"min_fill"`` the vertex whose
        elimination adds the fewest fill edges (slower build, often
        smaller width).
    store_paths:
        Keep provenance on skyline entries so concrete paths can be
        retrieved later.  Disable to halve index memory.
    max_skyline:
        Optional cap on shortcut skyline-set sizes (approximation knob;
        ``None`` = exact, the default).

    Raises
    ------
    DisconnectedGraphError
        If the network is not connected.
    """
    if not network.is_connected():
        raise DisconnectedGraphError(
            "tree decomposition requires a connected network"
        )
    started = time.perf_counter()
    n = network.num_vertices

    # Working graph H: adjacency dict v -> {neighbour: skyline set}.
    # Parallel input edges collapse into one skyline set per vertex pair.
    adjacency: list[dict[int, SkylineSet]] = [dict() for _ in range(n)]
    for u, v, w, c in network.edges():
        entry = edge_entry(w, c, u, v, with_prov=store_paths)
        existing = adjacency[u].get(v)
        if existing is None:
            adjacency[u][v] = [entry]
            adjacency[v][u] = adjacency[u][v]
        else:
            updated = skyline_of(existing + [entry])
            adjacency[u][v] = updated
            adjacency[v][u] = updated

    eliminated = bytearray(n)
    order: list[int] = []
    bag: dict[int, tuple[int, ...]] = {}
    shortcuts: dict[int, dict[int, SkylineSet]] = {}

    heap = _initial_heap(adjacency, strategy)

    for _step in range(n):
        v = _pop_next(heap, adjacency, eliminated, strategy)
        eliminated[v] = 1
        order.append(v)
        neighbours = list(adjacency[v].keys())
        shortcuts[v] = {w: adjacency[v][w] for w in neighbours}

        # Detach v from the working graph.
        for w in neighbours:
            del adjacency[w][v]

        # Fold paths through v into each neighbour pair.
        for i, a in enumerate(neighbours):
            s_av = shortcuts[v][a]
            for b in neighbours[i + 1:]:
                through = join(s_av, shortcuts[v][b], mid=v)
                combined = merge(adjacency[a].get(b, []), through)
                if max_skyline is not None:
                    combined = truncate(combined, max_skyline)
                adjacency[a][b] = combined
                adjacency[b][a] = combined

        for w in neighbours:
            _push_key(heap, w, adjacency, strategy)
        bag[v] = tuple(neighbours)

    if len(order) != n:
        raise IndexBuildError("elimination did not cover all vertices")

    td = TreeDecomposition(
        n,
        order,
        _sort_bags(bag, order),
        shortcuts,
        build_seconds=time.perf_counter() - started,
    )
    return td


def _sort_bags(
    bag: dict[int, tuple[int, ...]], order: list[int]
) -> dict[int, tuple[int, ...]]:
    """Sort each bag by elimination position (nearest ancestor first)."""
    position = {v: i for i, v in enumerate(order)}
    return {
        v: tuple(sorted(nbrs, key=position.__getitem__))
        for v, nbrs in bag.items()
    }


# ----------------------------------------------------------------------
# Elimination-order heuristics (lazy-deletion heaps)
# ----------------------------------------------------------------------
def _degree_key(v: int, adjacency: list[dict[int, SkylineSet]]) -> int:
    return len(adjacency[v])


def _fill_key(v: int, adjacency: list[dict[int, SkylineSet]]) -> int:
    """Number of fill edges eliminating ``v`` would create."""
    nbrs = list(adjacency[v].keys())
    fill = 0
    for i, a in enumerate(nbrs):
        adj_a = adjacency[a]
        for b in nbrs[i + 1:]:
            if b not in adj_a:
                fill += 1
    return fill


def _current_key(
    v: int, adjacency: list[dict[int, SkylineSet]], strategy: Strategy
) -> int:
    if strategy == "min_degree":
        return _degree_key(v, adjacency)
    if strategy == "min_fill":
        return _fill_key(v, adjacency)
    raise IndexBuildError(f"unknown elimination strategy {strategy!r}")


def _initial_heap(
    adjacency: list[dict[int, SkylineSet]], strategy: Strategy
) -> list[tuple[int, int]]:
    heap = [
        (_current_key(v, adjacency, strategy), v)
        for v in range(len(adjacency))
    ]
    heapq.heapify(heap)
    return heap


def _push_key(
    heap: list[tuple[int, int]],
    v: int,
    adjacency: list[dict[int, SkylineSet]],
    strategy: Strategy,
) -> None:
    heapq.heappush(heap, (_current_key(v, adjacency, strategy), v))


def _pop_next(
    heap: list[tuple[int, int]],
    adjacency: list[dict[int, SkylineSet]],
    eliminated: bytearray,
    strategy: Strategy,
) -> int:
    """Pop the next vertex, skipping stale heap entries."""
    while heap:
        key, v = heapq.heappop(heap)
        if eliminated[v]:
            continue
        current = _current_key(v, adjacency, strategy)
        if current != key:
            heapq.heappush(heap, (current, v))
            continue
        return v
    raise IndexBuildError("elimination heap exhausted early")
