"""Constant-time LCA on the tree decomposition.

Classic Euler tour + sparse table over depths (Bender & Farach-Colton,
cited by the paper as [2]): ``O(n log n)`` preprocessing, ``O(1)`` per
query.  Every QHL/CSP-2Hop query starts with one LCA lookup.
"""

from __future__ import annotations

from repro.hierarchy.tree import TreeDecomposition


class LCAIndex:
    """Lowest-common-ancestor index over a tree decomposition."""

    def __init__(self, tree: TreeDecomposition):
        self._tree = tree
        n = tree.num_vertices

        # Euler tour (iterative: road hierarchies are deep).
        tour: list[int] = []
        tour_depth: list[int] = []
        first = [-1] * n
        stack: list[tuple[int, int]] = [(tree.root, 0)]
        while stack:
            v, child_idx = stack.pop()
            if child_idx == 0:
                first[v] = len(tour)
            tour.append(v)
            tour_depth.append(tree.depth[v])
            children = tree.children[v]
            if child_idx < len(children):
                stack.append((v, child_idx + 1))
                stack.append((children[child_idx], 0))
        self._first = first
        self._tour = tour

        # Sparse table of argmin-depth positions over the tour.
        m = len(tour)
        log = [0] * (m + 1)
        for i in range(2, m + 1):
            log[i] = log[i // 2] + 1
        self._log = log
        table = [list(range(m))]
        k = 1
        while (1 << k) <= m:
            prev = table[k - 1]
            width = 1 << (k - 1)
            row = [
                prev[i]
                if tour_depth[prev[i]] <= tour_depth[prev[i + width]]
                else prev[i + width]
                for i in range(m - (1 << k) + 1)
            ]
            table.append(row)
            k += 1
        self._table = table
        self._tour_depth = tour_depth

    def query(self, u: int, v: int) -> int:
        """The vertex ``l`` with ``X(l)`` the LCA of ``X(u)`` and ``X(v)``."""
        lo, hi = self._first[u], self._first[v]
        if lo > hi:
            lo, hi = hi, lo
        k = self._log[hi - lo + 1]
        left = self._table[k][lo]
        right = self._table[k][hi - (1 << k) + 1]
        best = left if self._tour_depth[left] <= self._tour_depth[right] else right
        return self._tour[best]

    def relation(self, u: int, v: int) -> tuple[int, bool, bool]:
        """``(lca, u_is_ancestor_or_self, v_is_ancestor_or_self)``.

        The two flags encode the ancestor-descendant fast path of
        Algorithms 2 and 3 (lines 2-5).
        """
        lca = self.query(u, v)
        return lca, lca == u, lca == v
