"""The tree decomposition structure (paper Definition 7).

A :class:`TreeDecomposition` is the output of Algorithm 1: one tree node
``X(v)`` per vertex ``v``, holding ``v`` plus its neighbours at elimination
time, with the parent of ``X(v)`` being ``X(u)`` for the earliest-eliminated
``u ∈ X(v)\\{v}``.  The object also retains the *shortcut* skyline sets
``S(v, w)`` created during elimination, which the label builder consumes.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import IndexBuildError
from repro.skyline.set_ops import SkylineSet


class TreeDecomposition:
    """Tree decomposition of a road network with skyline shortcuts.

    Attributes
    ----------
    num_vertices:
        ``|V|`` of the underlying network.
    order:
        Elimination order; ``order[i]`` is the i-th eliminated vertex.
    position:
        Inverse of ``order``: ``position[v]`` is when ``v`` was eliminated.
        Higher position = higher in the hierarchy.
    bag:
        ``bag[v] = X(v)\\{v}`` — the neighbours of ``v`` at elimination
        time, sorted by elimination position (nearest ancestor first).
    shortcuts:
        ``shortcuts[v][w]`` for ``w ∈ bag[v]`` — the skyline set over v-w
        paths whose interior vertices were eliminated before ``v``.
    parent:
        ``parent[v]`` is the vertex ``u`` with ``X(u)`` the tree parent of
        ``X(v)``; ``-1`` for the root.
    root:
        The root vertex (the last vertex eliminated).
    """

    def __init__(
        self,
        num_vertices: int,
        order: Sequence[int],
        bag: Mapping[int, tuple[int, ...]],
        shortcuts: Mapping[int, Mapping[int, SkylineSet]],
        build_seconds: float = 0.0,
    ):
        if len(order) != num_vertices:
            raise IndexBuildError(
                f"elimination order covers {len(order)} of "
                f"{num_vertices} vertices"
            )
        self.num_vertices = num_vertices
        self.order = list(order)
        self.position = [0] * num_vertices
        for pos, v in enumerate(self.order):
            self.position[v] = pos
        self.bag = {v: tuple(bag[v]) for v in range(num_vertices)}
        self.shortcuts = shortcuts
        self.build_seconds = build_seconds

        self.parent = [-1] * num_vertices
        roots = []
        for v in range(num_vertices):
            nbrs = self.bag[v]
            if nbrs:
                # Parent = earliest-eliminated member of X(v)\{v}
                # (Algorithm 1, lines 7-9).
                self.parent[v] = min(nbrs, key=lambda u: self.position[u])
            else:
                roots.append(v)
        if len(roots) != 1:
            raise IndexBuildError(
                f"expected exactly one root, found {len(roots)} "
                "(is the network connected?)"
            )
        self.root = roots[0]

        self.children: list[list[int]] = [[] for _ in range(num_vertices)]
        for v in range(num_vertices):
            if self.parent[v] >= 0:
                self.children[self.parent[v]].append(v)

        # Depths via an explicit stack (road hierarchies can be deep).
        self.depth = [0] * num_vertices
        stack = [self.root]
        topdown = []
        while stack:
            v = stack.pop()
            topdown.append(v)
            for child in self.children[v]:
                self.depth[child] = self.depth[v] + 1
                stack.append(child)
        if len(topdown) != num_vertices:
            raise IndexBuildError("tree decomposition is not connected")
        self.topdown_order = topdown

    # ------------------------------------------------------------------
    # Queries on the tree
    # ------------------------------------------------------------------
    def bag_with_self(self, v: int) -> tuple[int, ...]:
        """``X(v)`` including ``v`` itself."""
        return (v,) + self.bag[v]

    def ancestors(self, v: int) -> list[int]:
        """Ancestor vertices of ``X(v)``, nearest (parent) first."""
        result = []
        u = self.parent[v]
        while u >= 0:
            result.append(u)
            u = self.parent[u]
        return result

    def is_ancestor(self, a: int, b: int) -> bool:
        """Whether ``X(a)`` is a (strict) ancestor of ``X(b)``.

        Walks the parent chain; for bulk use prefer depth comparison with
        the LCA index.
        """
        u = self.parent[b]
        while u >= 0:
            if u == a:
                return True
            u = self.parent[u]
        return False

    def child_towards(self, ancestor: int, descendant: int) -> int:
        """The child of ``X(ancestor)`` on the branch containing
        ``X(descendant)`` (the paper's ``X(c_s)`` / ``X(c_t)``).

        ``descendant`` must be a strict descendant of ``ancestor``.
        """
        v = descendant
        while self.parent[v] != ancestor:
            v = self.parent[v]
            if v < 0:
                raise IndexBuildError(
                    f"{descendant} is not a descendant of {ancestor}"
                )
        return v

    # ------------------------------------------------------------------
    # Statistics (paper Table 2)
    # ------------------------------------------------------------------
    @property
    def treewidth(self) -> int:
        """``ω = max_v |X(v)|`` (bag including the vertex itself)."""
        return max(len(self.bag[v]) + 1 for v in range(self.num_vertices))

    @property
    def treeheight(self) -> int:
        """``η`` — the maximum node depth, counting the root as 1."""
        return max(self.depth) + 1

    @property
    def average_height(self) -> float:
        """Average node depth (paper Table 2's "Avg. η")."""
        return sum(d + 1 for d in self.depth) / self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TreeDecomposition(|V|={self.num_vertices}, "
            f"width={self.treewidth}, height={self.treeheight})"
        )
