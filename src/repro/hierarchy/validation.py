"""Structural validation of tree decompositions.

Used by the test suite to assert Definition 7's three conditions and the
separator properties (Lemma 1, Properties 1-2) on generated networks —
the load-bearing assumptions behind both CSP-2Hop and QHL.
"""

from __future__ import annotations

from repro.graph.network import RoadNetwork
from repro.hierarchy.tree import TreeDecomposition


def validate_definition7(
    network: RoadNetwork, tree: TreeDecomposition
) -> list[str]:
    """Check the three conditions of Definition 7.

    Returns a list of human-readable violations (empty = valid).
    """
    problems: list[str] = []
    n = network.num_vertices

    # Condition 1: the union of bags covers V.  (Trivially true here since
    # v ∈ X(v), but check it anyway — it guards bag bookkeeping bugs.)
    covered = set()
    for v in range(n):
        covered.update(tree.bag_with_self(v))
    if covered != set(range(n)):
        problems.append(
            f"condition 1: bags cover {len(covered)} of {n} vertices"
        )

    # Condition 2: every edge is inside some bag.
    bags = {v: set(tree.bag_with_self(v)) for v in range(n)}
    for u, v, _w, _c in network.edges():
        if not any(u in bags[x] and v in bags[x] for x in (u, v)):
            # The standard argument: the earlier-eliminated endpoint's bag
            # contains both.  Check all bags only if the fast check fails.
            if not any(u in b and v in b for b in bags.values()):
                problems.append(f"condition 2: edge ({u}, {v}) in no bag")

    # Condition 3: for each vertex, the nodes whose bags contain it form a
    # connected subtree.
    for target in range(n):
        holders = [v for v in range(n) if target in bags[v]]
        if not holders:
            continue
        holder_set = set(holders)
        # Walk up from each holder; within the subtree-of-holders, every
        # non-deepest holder must reach another holder via its parent
        # chain without leaving... equivalently: holders minus the
        # shallowest one must each have a parent chain that re-enters
        # holder_set immediately (parent in holder_set).
        shallowest = min(holders, key=lambda v: tree.depth[v])
        for v in holders:
            if v == shallowest:
                continue
            if tree.parent[v] not in holder_set:
                problems.append(
                    f"condition 3: nodes containing {target} are not a "
                    f"connected subtree (breaks at {v})"
                )
                break
    return problems


def validate_property1(tree: TreeDecomposition) -> list[str]:
    """Property 1: every ``u ∈ X(v)\\{v}`` has ``X(u)`` an ancestor of
    ``X(v)``."""
    problems = []
    for v in range(tree.num_vertices):
        ancestors = set(tree.ancestors(v))
        for u in tree.bag[v]:
            if u not in ancestors:
                problems.append(
                    f"property 1: {u} ∈ X({v}) but X({u}) is not an ancestor"
                )
    return problems


def validate_property2(tree: TreeDecomposition) -> list[str]:
    """Property 2: for any child ``X(c)`` of ``X(v)``,
    ``X(c)\\{c} ⊂ X(v)``."""
    problems = []
    for v in range(tree.num_vertices):
        parent_bag = set(tree.bag_with_self(v))
        for child in tree.children[v]:
            if not set(tree.bag[child]).issubset(parent_bag):
                problems.append(
                    f"property 2: X({child})\\{{{child}}} ⊄ X({v})"
                )
    return problems


def is_separator(
    network: RoadNetwork, s: int, t: int, separator: set[int]
) -> bool:
    """Whether removing ``separator`` disconnects ``s`` from ``t``
    (Definition 8)."""
    if s in separator or t in separator:
        return True
    seen = {s}
    stack = [s]
    while stack:
        v = stack.pop()
        for nbr, _w, _c in network.neighbors(v):
            if nbr == t:
                return False
            if nbr not in seen and nbr not in separator:
                seen.add(nbr)
                stack.append(nbr)
    return True
