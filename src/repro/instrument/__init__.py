"""Instrumentation: workload harness and timing helpers."""

from repro.instrument.harness import (
    COLUMNS,
    Column,
    QueryEngine,
    WorkloadReport,
    run_workload,
)
from repro.instrument.timing import Timer, format_bytes, format_seconds

__all__ = [
    "COLUMNS",
    "Column",
    "QueryEngine",
    "Timer",
    "WorkloadReport",
    "format_bytes",
    "format_seconds",
    "run_workload",
]
