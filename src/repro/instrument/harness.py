"""Workload measurement harness.

Runs a query engine over a query set and aggregates exactly the numbers
the paper plots: average query time (Figures 6 and 9), average hoplinks
(Figure 7 left), and average path concatenations (Figures 7 right, 8).
Every benchmark in ``benchmarks/`` reports through this module so the
printed rows are uniform.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Protocol

from repro.types import CSPQuery, QueryResult


class QueryEngine(Protocol):
    """Anything with ``query(s, t, C) -> QueryResult`` and a ``name``."""

    name: str

    def query(
        self, source: int, target: int, budget: float
    ) -> QueryResult: ...


@dataclass
class WorkloadReport:
    """Aggregated measurements of one engine over one query set."""

    engine: str
    workload: str
    num_queries: int
    total_seconds: float
    avg_hoplinks: float
    avg_concatenations: float
    avg_label_lookups: float
    feasible: int

    @property
    def avg_ms(self) -> float:
        """Mean per-query wall-clock in milliseconds."""
        return self.total_seconds / self.num_queries * 1e3 if (
            self.num_queries
        ) else 0.0

    @property
    def avg_us(self) -> float:
        """Mean per-query wall-clock in microseconds."""
        return self.avg_ms * 1e3

    def row(self) -> str:
        """One formatted table row (used by the bench printers)."""
        return (
            f"{self.workload:>8}  {self.engine:>10}  "
            f"{self.avg_ms:>10.3f} ms  "
            f"{self.avg_hoplinks:>9.1f}  {self.avg_concatenations:>12.1f}  "
            f"{self.feasible:>5d}/{self.num_queries}"
        )

    @staticmethod
    def header() -> str:
        """The column header matching :meth:`row`."""
        return (
            f"{'workload':>8}  {'engine':>10}  {'avg time':>13}  "
            f"{'hoplinks':>9}  {'concats':>12}  {'feas':>5}"
        )


def run_workload(
    engine: QueryEngine,
    queries: Iterable[CSPQuery],
    workload_name: str = "",
) -> WorkloadReport:
    """Run every query through the engine and aggregate the statistics."""
    total = 0.0
    hoplinks = 0
    concatenations = 0
    lookups = 0
    feasible = 0
    count = 0
    for query in queries:
        started = time.perf_counter()
        result = engine.query(query.source, query.target, query.budget)
        total += time.perf_counter() - started
        count += 1
        hoplinks += result.stats.hoplinks
        concatenations += result.stats.concatenations
        lookups += result.stats.label_lookups
        if result.feasible:
            feasible += 1
    divisor = max(1, count)
    return WorkloadReport(
        engine=engine.name,
        workload=workload_name,
        num_queries=count,
        total_seconds=total,
        avg_hoplinks=hoplinks / divisor,
        avg_concatenations=concatenations / divisor,
        avg_label_lookups=lookups / divisor,
        feasible=feasible,
    )
