"""Workload measurement harness.

Runs a query engine over a query set and aggregates the numbers the
paper plots — average query time (Figures 6 and 9), average hoplinks
(Figure 7 left), average path concatenations (Figures 7 right, 8) —
plus the tail latencies the paper's averages hide: every run feeds a
fixed-bucket histogram, so reports carry p50/p95/p99 alongside the
mean.  Every benchmark in ``benchmarks/`` reports through this module
so the printed rows are uniform.

A query that raises a :class:`~repro.exceptions.ReproError` no longer
aborts the run: it is recorded as a :class:`QueryFailure` row and
counted in ``WorkloadReport.failed``, so one pathological query cannot
take down a whole workload.  Per-query and per-batch time budgets
(``deadline_ms`` / ``batch_deadline_ms``) thread
:class:`~repro.service.deadline.Deadline` objects into the engines.

The table layout is driven by one column spec (:data:`COLUMNS`):
``WorkloadReport.header()`` and ``row()`` are derived from the same
tuple, so they cannot drift apart when columns are added.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol

from repro.exceptions import ReproError
from repro.observability.flight import get_flight_recorder
from repro.observability.metrics import Histogram, get_registry
from repro.service.deadline import Deadline
from repro.types import CSPQuery, QueryResult


class QueryEngine(Protocol):
    """Anything with ``query(s, t, C) -> QueryResult`` and a ``name``."""

    name: str

    def query(
        self, source: int, target: int, budget: float
    ) -> QueryResult: ...


@dataclass(frozen=True)
class QueryFailure:
    """One query that raised instead of answering.

    ``trace_id`` and ``flight_seq`` join the row to its batch trace and
    flight-recorder record (``None`` when observability was off), so a
    failure in a report is greppable back to its forensic evidence.
    """

    index: int
    query: CSPQuery
    error: str
    message: str
    trace_id: str | None = None
    flight_seq: int | None = None


@dataclass
class WorkloadReport:
    """Aggregated measurements of one engine over one query set."""

    engine: str
    workload: str
    num_queries: int
    total_seconds: float
    avg_hoplinks: float
    avg_concatenations: float
    avg_label_lookups: float
    feasible: int
    latency: Histogram | None = field(default=None, repr=False)
    failed: int = 0
    failures: list[QueryFailure] = field(default_factory=list, repr=False)
    skipped: int = 0

    @property
    def avg_ms(self) -> float:
        """Mean per-query wall-clock in milliseconds."""
        return self.total_seconds / self.num_queries * 1e3 if (
            self.num_queries
        ) else 0.0

    @property
    def avg_us(self) -> float:
        """Mean per-query wall-clock in microseconds."""
        return self.avg_ms * 1e3

    def _percentile_ms(self, q: float) -> float:
        if self.latency is None or self.num_queries == 0:
            return 0.0
        return self.latency.percentile(q) * 1e3

    @property
    def p50_ms(self) -> float:
        """Median per-query latency in milliseconds."""
        return self._percentile_ms(50)

    @property
    def p95_ms(self) -> float:
        """95th-percentile per-query latency in milliseconds."""
        return self._percentile_ms(95)

    @property
    def p99_ms(self) -> float:
        """99th-percentile per-query latency in milliseconds."""
        return self._percentile_ms(99)

    def row(self) -> str:
        """One formatted table row (used by the bench printers)."""
        return "  ".join(
            f"{column.cell(self):>{column.width}}" for column in COLUMNS
        )

    @staticmethod
    def header() -> str:
        """The column header matching :meth:`row` — same spec, no drift."""
        return "  ".join(
            f"{column.title:>{column.width}}" for column in COLUMNS
        )


@dataclass(frozen=True)
class Column:
    """One report column: a title, a width, and a cell renderer."""

    title: str
    width: int
    cell: Callable[[WorkloadReport], str]


#: The single source of truth for the report table layout.
COLUMNS: tuple[Column, ...] = (
    Column("workload", 8, lambda r: r.workload),
    Column("engine", 10, lambda r: r.engine),
    Column("avg time", 13, lambda r: f"{r.avg_ms:.3f} ms"),
    Column("p50", 10, lambda r: f"{r.p50_ms:.3f} ms"),
    Column("p95", 10, lambda r: f"{r.p95_ms:.3f} ms"),
    Column("p99", 10, lambda r: f"{r.p99_ms:.3f} ms"),
    Column("hoplinks", 9, lambda r: f"{r.avg_hoplinks:.1f}"),
    Column("concats", 12, lambda r: f"{r.avg_concatenations:.1f}"),
    Column("feas", 5, lambda r: f"{r.feasible}/{r.num_queries}"),
    Column("fail", 4, lambda r: str(r.failed)),
)


def run_workload(
    engine: QueryEngine,
    queries: Iterable[CSPQuery],
    workload_name: str = "",
    deadline_ms: float | None = None,
    batch_deadline_ms: float | None = None,
    batch: bool = False,
    workers: int = 0,
    supervised: bool = False,
    supervision=None,
) -> WorkloadReport:
    """Run every query through the engine and aggregate the statistics.

    Per-query latencies land in a fixed-bucket histogram; when a live
    metrics registry is installed (:func:`repro.observability.metrics.
    set_registry`) the histogram is also attached to it under
    ``qhl_workload_query_seconds{engine=...,workload=...}``.

    A query raising :class:`~repro.exceptions.ReproError` (including
    :class:`~repro.exceptions.DeadlineExceededError` from
    ``deadline_ms``) is recorded as a failure row, not a crash.  With
    ``batch_deadline_ms``, queries remaining when the batch budget
    expires are skipped and counted in ``WorkloadReport.skipped``.
    Deadline arguments require an engine whose ``query`` accepts a
    ``deadline`` keyword (every engine in this package does).

    ``batch=True`` executes through the batch API
    (:func:`repro.perf.batch.execute_batch`): queries run in
    cache-friendly sorted order (``workers >= 2`` fans them out over a
    process pool) and per-query latency is the engine-measured
    ``stats.seconds`` rather than harness wall-clock.  ``supervised``
    (with ``batch=True`` and ``workers >= 2``) runs the fan-out on
    self-healing workers — see :func:`repro.perf.batch.execute_batch`.
    """
    if batch:
        return _run_workload_batched(
            engine, queries, workload_name,
            deadline_ms, batch_deadline_ms, workers,
            supervised=supervised, supervision=supervision,
        )
    latency = Histogram(
        "qhl_workload_query_seconds",
        labels={"engine": engine.name, "workload": workload_name},
        help="per-query latency measured by the workload harness",
    )
    registry = get_registry()
    if registry.enabled:
        registry.attach(latency)
    batch_deadline = (
        Deadline.from_ms(batch_deadline_ms)
        if batch_deadline_ms is not None
        else None
    )
    total = 0.0
    hoplinks = 0
    concatenations = 0
    lookups = 0
    feasible = 0
    count = 0
    failed = 0
    skipped = 0
    failures: list[QueryFailure] = []
    for i, query in enumerate(queries):
        if batch_deadline is not None and batch_deadline.expired():
            skipped += 1
            continue
        deadline = (
            Deadline.from_ms(deadline_ms) if deadline_ms is not None
            else batch_deadline
        )
        started = time.perf_counter()
        try:
            if deadline is None:
                result = engine.query(
                    query.source, query.target, query.budget
                )
            else:
                result = engine.query(
                    query.source, query.target, query.budget,
                    deadline=deadline,
                )
        except ReproError as exc:
            elapsed = time.perf_counter() - started
            total += elapsed
            count += 1
            failed += 1
            # A QueryService engine has already flight-recorded this
            # failure itself; reuse its record instead of writing a
            # duplicate.  Plain engines get one from the harness.
            entry = getattr(engine, "_last_flight", None)
            if entry is None:
                recorder = get_flight_recorder()
                if recorder.enabled:
                    entry = recorder.record(
                        engine=engine.name,
                        source=query.source,
                        target=query.target,
                        budget=query.budget,
                        outcome=type(exc).__name__,
                        seconds=elapsed,
                        error=str(exc),
                    )
            flight_seq = entry.seq if entry is not None else None
            trace_id = entry.trace_id if entry is not None else None
            failures.append(
                QueryFailure(
                    i, query, type(exc).__name__, str(exc),
                    trace_id=trace_id, flight_seq=flight_seq,
                )
            )
            if registry.enabled:
                registry.counter(
                    "qhl_workload_failures_total",
                    {
                        "engine": engine.name,
                        "workload": workload_name,
                        "error": type(exc).__name__,
                    },
                    help="queries that raised instead of answering",
                ).inc()
            continue
        elapsed = time.perf_counter() - started
        total += elapsed
        latency.observe(elapsed)
        count += 1
        recorder = get_flight_recorder()
        if recorder.enabled and getattr(engine, "flight", None) is None:
            # Engines with their own ring (QueryService) already
            # recorded this query; everything else gets a row here.
            recorder.record(
                engine=engine.name,
                source=query.source,
                target=query.target,
                budget=query.budget,
                outcome="ok" if result.feasible else "infeasible",
                seconds=elapsed,
                stats=result.stats,
            )
        hoplinks += result.stats.hoplinks
        concatenations += result.stats.concatenations
        lookups += result.stats.label_lookups
        if result.feasible:
            feasible += 1
    divisor = max(1, count)
    return WorkloadReport(
        engine=engine.name,
        workload=workload_name,
        num_queries=count,
        total_seconds=total,
        avg_hoplinks=hoplinks / divisor,
        avg_concatenations=concatenations / divisor,
        avg_label_lookups=lookups / divisor,
        feasible=feasible,
        latency=latency,
        failed=failed,
        failures=failures,
        skipped=skipped,
    )


def _run_workload_batched(
    engine: QueryEngine,
    queries: Iterable[CSPQuery],
    workload_name: str,
    deadline_ms: float | None,
    batch_deadline_ms: float | None,
    workers: int,
    supervised: bool = False,
    supervision=None,
) -> WorkloadReport:
    """The ``batch=True`` body of :func:`run_workload`."""
    from repro.perf.batch import execute_batch

    query_list = list(queries)
    latency = Histogram(
        "qhl_workload_query_seconds",
        labels={"engine": engine.name, "workload": workload_name},
        help="per-query latency measured by the workload harness",
    )
    registry = get_registry()
    if registry.enabled:
        registry.attach(latency)
    batch_report = execute_batch(
        engine,
        query_list,
        deadline_ms=deadline_ms,
        batch_deadline_ms=batch_deadline_ms,
        workers=workers,
        supervised=supervised,
        supervision=supervision,
    )
    total = 0.0
    hoplinks = 0
    concatenations = 0
    lookups = 0
    feasible = 0
    count = 0
    for result in batch_report.results:
        if result is None:
            continue
        count += 1
        total += result.stats.seconds
        latency.observe(result.stats.seconds)
        hoplinks += result.stats.hoplinks
        concatenations += result.stats.concatenations
        lookups += result.stats.label_lookups
        if result.feasible:
            feasible += 1
    failures = [
        QueryFailure(
            f.index, f.query, f.error, f.message,
            trace_id=f.trace_id, flight_seq=f.flight_seq,
        )
        for f in batch_report.failures
    ]
    count += len(failures)  # failed queries still count as attempted
    divisor = max(1, count)
    return WorkloadReport(
        engine=engine.name,
        workload=workload_name,
        num_queries=count,
        total_seconds=total,
        avg_hoplinks=hoplinks / divisor,
        avg_concatenations=concatenations / divisor,
        avg_label_lookups=lookups / divisor,
        feasible=feasible,
        latency=latency,
        failed=len(failures),
        failures=failures,
        skipped=batch_report.skipped,
    )
