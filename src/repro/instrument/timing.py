"""Small timing utilities shared by benches and the CLI."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring wall-clock seconds.

    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.seconds >= 0
    True
    """

    def __init__(self):
        self.seconds = 0.0
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._started


def format_bytes(size: float) -> str:
    """Human-readable byte count (``1536`` → ``'1.5 KB'``)."""
    for unit in ("B", "KB", "MB", "GB"):
        if size < 1024 or unit == "GB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Human-readable duration (``0.0042`` → ``'4.2 ms'``)."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.2f} s"
