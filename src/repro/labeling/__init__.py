"""2-hop skyline labels: the CSP-2Hop index shared by the baseline and by
QHL."""

from repro.labeling.builder import build_labels
from repro.labeling.labels import LabelStore

__all__ = ["LabelStore", "build_labels"]
