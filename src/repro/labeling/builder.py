"""Label construction for CSP-2Hop / QHL (paper §2.3 and [20]).

Processes tree nodes top-down.  For each vertex ``v`` and each ancestor
``u`` of ``X(v)``::

    P(v, u) = skyline(  ⋃_{w ∈ X(v)\\{v}}  S(v, w) ⊗ P(w, u)  )

where ``S(v, w)`` are the elimination shortcuts and ``P(w, w)`` is the
zero path.  Correctness: ``X(v)\\{v}`` separates ``v`` from everything
higher (Lemma 1); take any v-u path and split it at the first vertex ``w``
eliminated after ``v`` — the prefix is dominated by a member of
``S(v, w)`` (its interior was eliminated before ``v``) and the suffix by a
member of ``P(w, u)``.  Both ``w`` and ``u`` are ancestors of ``X(v)``,
hence chain-comparable, so the needed ``P(w, u)`` was computed earlier in
the top-down sweep and is found by the store's symmetric lookup.

The per-vertex kernel lives in
:func:`repro.labeling.parallel.label_rows_for`, shared with the
level-parallel builder (``workers >= 2``) so the sequential and
parallel paths cannot drift.
"""

from __future__ import annotations

import time

from repro.hierarchy.tree import TreeDecomposition
from repro.labeling.labels import LabelStore
from repro.observability.metrics import get_registry
from repro.observability.tracing import get_tracer


def build_labels(
    tree: TreeDecomposition,
    store_paths: bool = True,
    max_skyline: int | None = None,
    workers: int = 1,
    checkpoint=None,
    resume: bool = False,
    budget=None,
    supervised: bool = False,
    supervision=None,
) -> LabelStore:
    """Build the full 2-hop skyline labels from a tree decomposition.

    Parameters
    ----------
    tree:
        The decomposition (with shortcuts) from
        :func:`repro.hierarchy.build_tree_decomposition`.
    store_paths:
        Must match the flag the decomposition was built with; entries
        without provenance cannot regain it here.
    max_skyline:
        Optional cap on label skyline-set sizes (approximation knob;
        ``None`` = exact).
    workers:
        ``>= 2`` builds each tree-depth level across a process pool
        (:func:`repro.labeling.parallel.build_labels_parallel`); the
        result is value-identical to the sequential build.  ``1``
        (default) keeps the sequential top-down sweep.
    checkpoint:
        A :class:`~repro.resilience.checkpoint.CheckpointStore` or
        directory path.  When given, the build persists per-level
        checkpoints and ``resume=True`` continues an interrupted build
        from its last completed level (value-identical result; see
        :func:`repro.resilience.checkpoint.build_labels_checkpointed`).
    resume, budget:
        Resume flag and optional
        :class:`~repro.resilience.checkpoint.BuildBudget` watchdog for
        the checkpointed path; ``budget`` requires ``checkpoint``.
    supervised, supervision:
        With ``workers >= 2``, run each level's pool under worker
        supervision (:mod:`repro.supervise`): dead workers respawn and
        their lost chunk is recomputed, still value-identical.
        ``supervision`` optionally overrides the
        :class:`~repro.supervise.supervisor.SupervisionConfig`.

    Returns
    -------
    LabelStore
        Labels for every vertex, with ``build_seconds`` filled in.
    """
    from repro.labeling.parallel import (
        build_labels_parallel,
        fork_available,
        label_rows_for,
    )

    if checkpoint is not None:
        from repro.resilience.checkpoint import build_labels_checkpointed

        return build_labels_checkpointed(
            tree,
            checkpoint,
            store_paths=store_paths,
            max_skyline=max_skyline,
            workers=workers,
            resume=resume,
            budget=budget,
            supervised=supervised,
            supervision=supervision,
        )
    if budget is not None:
        from repro.exceptions import IndexBuildError

        raise IndexBuildError(
            "a build budget requires a checkpoint directory: the "
            "watchdog checkpoints-then-raises so --resume can continue"
        )
    if resume:
        from repro.exceptions import IndexBuildError

        raise IndexBuildError(
            "resume requires the checkpoint directory the interrupted "
            "build was writing to"
        )

    if workers >= 2 and fork_available():
        return build_labels_parallel(
            tree,
            store_paths=store_paths,
            max_skyline=max_skyline,
            workers=workers,
            supervised=supervised,
            supervision=supervision,
        )

    started = time.perf_counter()
    store = LabelStore(tree.num_vertices, store_paths=store_paths)
    registry = get_registry()
    observed = registry.enabled
    vertex_seconds = registry.histogram(
        "qhl_label_vertex_seconds",
        help="per-vertex label construction time",
    )
    joins = 0

    with get_tracer().span("labels.topdown-sweep") as span:
        for v in tree.topdown_order:
            if v == tree.root:
                continue
            vertex_started = time.perf_counter() if observed else 0.0
            rows, vertex_joins = label_rows_for(tree, store, v, max_skyline)
            joins += vertex_joins
            for u, acc in rows:
                store.set(v, u, acc)
            if observed:
                vertex_seconds.observe(time.perf_counter() - vertex_started)
        span.set("vertices", tree.num_vertices)
        span.set("joins", joins)
        span.set("entries", store.num_entries())

    store.build_seconds = time.perf_counter() - started
    if observed:
        registry.gauge("qhl_label_build_seconds").set(store.build_seconds)
        registry.counter("qhl_label_joins_total").inc(joins)
    return store
