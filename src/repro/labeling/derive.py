"""Deriving full skyline sets from the label index.

CSP-2Hop's original mission (paper §2.3): ``P_st`` is contained in the
union of per-hoplink joins over the LCA bag, so the exact skyline set of
*any* vertex pair can be read off the index without touching the graph.
QHL's query algorithm deliberately avoids materialising ``P_st``; this
utility exists for the callers that genuinely want the whole trade-off
curve (and for the forest-labeling index, which uses it to summarise
regions).
"""

from __future__ import annotations

from repro.hierarchy.lca import LCAIndex
from repro.hierarchy.tree import TreeDecomposition
from repro.labeling.labels import LabelStore
from repro.skyline.set_ops import SkylineSet, join, merge


def skyline_between_via_labels(
    tree: TreeDecomposition,
    labels: LabelStore,
    lca: LCAIndex,
    source: int,
    target: int,
) -> SkylineSet:
    """The exact skyline set ``P_st``, assembled from the labels."""
    if source == target:
        return labels.get(source, source)
    lca_v, s_is_anc, t_is_anc = lca.relation(source, target)
    if s_is_anc or t_is_anc:
        return labels.get(source, target)
    result: SkylineSet = []
    for h in tree.bag_with_self(lca_v):
        part = join(labels.get(source, h), labels.get(h, target), mid=h)
        result = merge(result, part) if result else part
    return result
