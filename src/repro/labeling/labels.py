"""The 2-hop skyline label store.

CSP-2Hop's index (paper §2.3) stores, for every vertex ``v``, the label
``L(v) = {(u, P_vu) : X(u) ancestor of X(v)}``.  Because ancestors of a
node form a chain, any pair of hub vertices a query touches is comparable,
and ``P_xy`` lives in the label of the *deeper* of the two — the store
resolves both directions (the network is undirected, so ``P_xy = P_yx``).
"""

from __future__ import annotations

from typing import Iterator

from repro.exceptions import IndexBuildError
from repro.skyline.entries import zero_entry
from repro.skyline.set_ops import SkylineSet

_PAIR_BYTES = 16
"""Size accounting: one skyline entry ≈ two 8-byte numbers, matching how a
C++ implementation (and the paper's 'label size' column) would store it."""


class LabelStore:
    """Skyline labels ``L(v)`` keyed by vertex, with symmetric lookup."""

    def __init__(self, num_vertices: int, store_paths: bool = True):
        self.num_vertices = num_vertices
        self.store_paths = store_paths
        self._labels: list[dict[int, SkylineSet]] = [
            dict() for _ in range(num_vertices)
        ]
        self.build_seconds = 0.0
        #: Bumped by the dynamic repair whenever any stored set changes;
        #: caching engines compare it to invalidate stale frontiers.
        self.version = 0
        self._zero = [zero_entry(with_prov=store_paths)]

    def set(self, v: int, u: int, entries: SkylineSet) -> None:
        """Record ``P_vu`` in ``L(v)`` (``X(u)`` must be an ancestor)."""
        self._labels[v][u] = entries

    def label(self, v: int) -> dict[int, SkylineSet]:
        """The raw label ``L(v)``: hub vertex → skyline set."""
        return self._labels[v]

    def hubs_of(self, v: int) -> list[int]:
        """The hub vertices of ``L(v)``, sorted.

        The column builders (:func:`repro.storage.compact.pack_labels`)
        and the flat store's binary-search lookup both rely on this
        order; exposing it here keeps the two stores' iteration
        contracts aligned.
        """
        return sorted(self._labels[v])

    def get(self, x: int, y: int) -> SkylineSet:
        """``P_xy`` wherever it is stored.

        Checks ``L(x)`` then ``L(y)``; for ``x == y`` returns the
        zero-length path (the identity of concatenation).

        Raises
        ------
        IndexBuildError
            If neither label holds the pair — the caller asked for a
            non-ancestor pair, which indicates a bug upstream.
        """
        if x == y:
            return self._zero
        entries = self._labels[x].get(y)
        if entries is not None:
            return entries
        entries = self._labels[y].get(x)
        if entries is not None:
            return entries
        raise IndexBuildError(
            f"no label covers the pair ({x}, {y}); their tree nodes are "
            "not in an ancestor chain"
        )

    def has(self, x: int, y: int) -> bool:
        """Whether ``P_xy`` is available."""
        return (
            x == y
            or y in self._labels[x]
            or x in self._labels[y]
        )

    # ------------------------------------------------------------------
    # Size accounting (paper Table 2 "Label size", Fig. 10b)
    # ------------------------------------------------------------------
    def num_entries(self) -> int:
        """Total number of skyline entries across all labels."""
        return sum(
            len(entries)
            for label in self._labels
            for entries in label.values()
        )

    def num_sets(self) -> int:
        """Total number of stored skyline sets (label pairs)."""
        return sum(len(label) for label in self._labels)

    def size_bytes(self) -> int:
        """Estimated on-disk size: 16 bytes per entry + 8 per set header."""
        return self.num_entries() * _PAIR_BYTES + self.num_sets() * 8

    def max_set_size(self) -> int:
        """The largest stored skyline set (paper: ``|P|`` up to ~1500)."""
        sizes = [
            len(entries)
            for label in self._labels
            for entries in label.values()
        ]
        return max(sizes, default=0)

    def average_set_size(self) -> float:
        """Mean skyline-set size over all stored sets."""
        count = self.num_sets()
        return self.num_entries() / count if count else 0.0

    def items(self) -> Iterator[tuple[int, int, SkylineSet]]:
        """Iterate ``(v, u, P_vu)`` over every stored set."""
        for v, label in enumerate(self._labels):
            for u, entries in label.items():
                yield v, u, entries

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LabelStore(|V|={self.num_vertices}, sets={self.num_sets()}, "
            f"entries={self.num_entries()})"
        )
