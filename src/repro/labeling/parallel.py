"""Level-parallel label construction.

The sequential top-down sweep (:func:`repro.labeling.builder.
build_labels`) computes, per vertex ``v`` and ancestor ``u``::

    P(v, u) = skyline(  ⋃_{w ∈ X(v)\\{v}}  S(v, w) ⊗ P(w, u)  )

Every ``w ∈ X(v)\\{v}`` is a *strict ancestor* of ``v`` in the tree, so
``P(v, ·)`` depends only on labels of strictly shallower vertices —
which makes each tree-decomposition **depth level an independent
batch** (the partition the hierarchical-cut-labelling line of work
parallelises over).  This module builds each level across a process
pool and merges the per-vertex label rows back in deterministic
top-down order, so the resulting store is *value-identical* to the
sequential build: identical ``(weight, cost)`` sequences for every
``(v, u)`` pair, identical compact serialisation bytes
(:func:`repro.storage.compact.pack_labels`), identical query answers
and expanded paths.  (Object *identity* differs — entries that cross a
process boundary come back as copies — which is why "byte-identical"
is asserted on the canonical compact form, not on pickle output.)

Workers are forked, so they inherit the tree and the partially built
store by memory snapshot instead of pickling them; one fresh pool per
level keeps each snapshot current.  Platforms without the ``fork``
start method (or ``workers <= 1``) fall back to the sequential sweep.

``supervised=True`` swaps each level's bare pool for a
:class:`~repro.supervise.pool.SupervisedPool`: a worker SIGKILLed
mid-level is respawned (re-forking the current store snapshot, which
is still exactly "everything shallower than this level") and its lost
vertex chunk recomputed, so the build completes byte-identically
instead of dying.  Unlike the batch path, a label build cannot tolerate
missing vertices — a quarantined (poison) chunk or an exhausted fleet
raises instead of degrading.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.exceptions import (
    TaskQuarantinedError,
    WorkerRestartExhaustedError,
)
from repro.hierarchy.tree import TreeDecomposition
from repro.labeling.labels import LabelStore
from repro.observability.metrics import get_registry
from repro.observability.propagation import (
    TraceContext,
    WorkerSpool,
    stitch,
)
from repro.observability.tracing import get_tracer
from repro.skyline.set_ops import SkylineSet, join, merge, truncate
from repro.supervise.pool import SupervisedPool
from repro.supervise.supervisor import (
    SupervisionConfig,
    annotate_succession,
)

#: Levels smaller than this are built inline — forking a pool costs
#: more than computing a handful of vertices.
MIN_PARALLEL_LEVEL = 8

# Worker-side state, inherited by fork (set immediately before each
# level's pool is created, read-only in the children).
_TREE: TreeDecomposition | None = None
_STORE: LabelStore | None = None
_MAX_SKYLINE: int | None = None
_SPOOL: WorkerSpool | None = None


def label_rows_for(
    tree: TreeDecomposition,
    store: LabelStore,
    v: int,
    max_skyline: int | None,
) -> tuple[list[tuple[int, SkylineSet]], int]:
    """The complete label of ``v``: ``([(u, P(v, u))], joins)``.

    Pure function of the tree and the labels of ``v``'s strict
    ancestors; the single per-vertex kernel shared by the sequential
    and parallel builders, so the two cannot drift.  ``joins`` counts
    the skyline joins performed (the build-cost unit the sequential
    builder reports).
    """
    hubs = tree.bag[v]  # X(v)\{v}, all ancestors of X(v)
    shortcuts_v = tree.shortcuts[v]
    rows: list[tuple[int, SkylineSet]] = []
    joins = 0
    for u in tree.ancestors(v):
        acc: SkylineSet = []
        for w in hubs:
            s_vw = shortcuts_v[w]
            if w == u:
                part = s_vw
            else:
                part = join(s_vw, store.get(w, u), mid=w)
                joins += 1
            acc = merge(acc, part) if acc else list(part)
        if max_skyline is not None:
            acc = truncate(acc, max_skyline)
        rows.append((u, acc))
    return rows, joins


def _build_vertex(v: int) -> tuple[int, list[tuple[int, SkylineSet]]]:
    """Worker task: one vertex's label rows from the forked snapshot."""
    rows, _joins = label_rows_for(_TREE, _STORE, v, _MAX_SKYLINE)
    return v, rows


def _init_level_worker() -> None:
    """Pool initializer: announce this worker on the level's spool."""
    if _SPOOL is not None:
        _SPOOL.announce()


def _build_chunk(
    vertices: list[int],
) -> list[tuple[int, list[tuple[int, SkylineSet]]]]:
    """Worker task: a contiguous run of one level's vertices.

    With a spool attached (observability live in the parent), the chunk
    runs under a fresh worker-local tracer/registry: per-vertex build
    latency lands in ``qhl_label_vertex_seconds`` and join counts in
    ``qhl_label_joins_total``, both merged into the parent registry at
    stitch time — the pool path used to report neither.
    """
    spool = _SPOOL
    if spool is None:
        return [_build_vertex(v) for v in vertices]
    with spool.observe("labels.worker-chunk") as root:
        registry = get_registry()
        out = []
        joins = 0
        for v in vertices:
            vertex_started = time.perf_counter()
            rows, vertex_joins = label_rows_for(
                _TREE, _STORE, v, _MAX_SKYLINE
            )
            if registry.enabled:
                registry.histogram(
                    "qhl_label_vertex_seconds",
                    help="per-vertex label construction time",
                ).observe(time.perf_counter() - vertex_started)
            joins += vertex_joins
            out.append((v, rows))
        if registry.enabled and joins:
            registry.counter(
                "qhl_label_joins_total",
                help="skyline joins during label construction",
            ).inc(joins)
        root.set("vertices", len(vertices))
        root.set("joins", joins)
        return out


def _supervised_level_chunk(payload, span, heartbeat):
    """Supervised entrypoint: one vertex chunk, heartbeating per vertex.

    Same work as :func:`_build_chunk`, but the spool observation is
    done by the supervisor's worker loop (``span`` is the observed
    root) and every vertex beats the heartbeat so a slow level never
    reads as a stall.
    """
    registry = get_registry()
    out = []
    joins = 0
    for v in payload:
        heartbeat()
        vertex_started = time.perf_counter()
        rows, vertex_joins = label_rows_for(_TREE, _STORE, v, _MAX_SKYLINE)
        if registry.enabled:
            registry.histogram(
                "qhl_label_vertex_seconds",
                help="per-vertex label construction time",
            ).observe(time.perf_counter() - vertex_started)
        joins += vertex_joins
        out.append((v, rows))
    if registry.enabled and joins:
        registry.counter(
            "qhl_label_joins_total",
            help="skyline joins during label construction",
        ).inc(joins)
    span.set("vertices", len(out))
    span.set("joins", joins)
    return out


def _split_vertices(payload):
    """Decompose a vertex-chunk payload into singleton chunks."""
    return [[v] for v in payload]


def _supervised_level_rows(
    tree: TreeDecomposition,
    store: LabelStore,
    level: list[int],
    max_skyline: int | None,
    workers: int,
    supervision: SupervisionConfig | None,
) -> tuple[list[tuple[int, list[tuple[int, SkylineSet]]]], int]:
    """One level's rows on a self-healing pool (see module docstring).

    Raises :class:`~repro.exceptions.TaskQuarantinedError` /
    :class:`~repro.exceptions.WorkerRestartExhaustedError` when a
    vertex could not be computed — an incomplete label store is not a
    degraded result, it is a broken index.
    """
    global _TREE, _STORE, _MAX_SKYLINE
    tracer = get_tracer()
    registry = get_registry()
    spool = None
    if tracer.enabled or registry.enabled:
        spool = WorkerSpool.create(
            TraceContext.new("labels.level-fanout"),
            want_spans=tracer.enabled,
            want_metrics=registry.enabled,
        )
    chunk_size = max(1, len(level) // (workers * 4))
    chunks = [
        level[i:i + chunk_size] for i in range(0, len(level), chunk_size)
    ]
    _TREE, _STORE, _MAX_SKYLINE = tree, store, max_skyline
    try:
        with tracer.span("labels.level-fanout") as parent:
            parent.set("workers", workers)
            parent.set("vertices", len(level))
            parent.set("supervised", 1)
            pool = SupervisedPool(
                _supervised_level_chunk,
                workers,
                config=supervision,
                spool=spool,
                label="labels.worker-chunk",
                split=_split_vertices,
            )
            report = pool.run(chunks)
            if spool is not None:
                stitch(spool, parent=parent)
                annotate_succession(parent, pool.supervisor)
        if report.failures:
            lost = report.failures[0]
            detail = (
                f"level of {len(level)} vertices lost chunk "
                f"{lost.payload!r} ({lost.reason}: {lost.message})"
            )
            if lost.reason == "quarantined":
                raise TaskQuarantinedError(detail)
            raise WorkerRestartExhaustedError(detail)
        rows_by_vertex: dict[int, list] = {}
        for chunk_out in report.results.values():
            for v, rows in chunk_out:
                rows_by_vertex[v] = rows
        # Reassemble in level order — independent of which worker (or
        # which retry) computed each vertex — so the merge into the
        # store stays deterministic and the build byte-identical.
        out = [(v, rows_by_vertex[v]) for v in level]
    finally:
        _TREE = _STORE = _MAX_SKYLINE = None
        if spool is not None:
            spool.cleanup()
    return out, 0


def depth_levels(tree: TreeDecomposition) -> list[list[int]]:
    """Tree vertices grouped by depth, root level first.

    Within a level, vertices keep their top-down-order positions, so
    the merge order is deterministic.
    """
    levels: dict[int, list[int]] = {}
    for v in tree.topdown_order:
        levels.setdefault(tree.depth[v], []).append(v)
    return [levels[d] for d in sorted(levels)]


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def level_rows(
    tree: TreeDecomposition,
    store: LabelStore,
    level: list[int],
    max_skyline: int | None,
    workers: int,
    supervised: bool = False,
    supervision: SupervisionConfig | None = None,
) -> tuple[list[tuple[int, list[tuple[int, SkylineSet]]]], int]:
    """Label rows for one depth level: ``([(v, rows)], joins)``.

    The single per-level kernel shared by :func:`build_labels_parallel`
    and the checkpointed builder
    (:func:`repro.resilience.checkpoint.build_labels_checkpointed`), so
    the two cannot drift.  ``store`` must already hold every strictly
    shallower level.  Levels smaller than :data:`MIN_PARALLEL_LEVEL`
    (or ``workers < 2``, or platforms without ``fork``) are computed
    inline.  The returned join count covers only the inline path; on
    the process-pool path joins flow back through the worker spool as
    ``qhl_label_joins_total`` metric deltas instead (when observability
    is live).
    """
    global _TREE, _STORE, _MAX_SKYLINE, _SPOOL
    level = [v for v in level if v != tree.root]
    if not level:
        return [], 0
    if (
        workers < 2
        or len(level) < MIN_PARALLEL_LEVEL
        or not fork_available()
    ):
        out = []
        joins = 0
        for v in level:
            rows, vertex_joins = label_rows_for(tree, store, v, max_skyline)
            out.append((v, rows))
            joins += vertex_joins
        return out, joins
    if supervised:
        return _supervised_level_rows(
            tree, store, level, max_skyline, workers, supervision
        )
    # Fork a fresh pool so the children see the store as built up to
    # (and excluding) this level.
    context = multiprocessing.get_context("fork")
    tracer = get_tracer()
    registry = get_registry()
    spool = None
    if tracer.enabled or registry.enabled:
        spool = WorkerSpool.create(
            TraceContext.new("labels.level-fanout"),
            want_spans=tracer.enabled,
            want_metrics=registry.enabled,
        )
    chunk_size = max(1, len(level) // (workers * 4))
    chunks = [
        level[i:i + chunk_size] for i in range(0, len(level), chunk_size)
    ]
    _TREE, _STORE, _MAX_SKYLINE, _SPOOL = tree, store, max_skyline, spool
    pool = context.Pool(processes=workers, initializer=_init_level_worker)
    try:
        with tracer.span("labels.level-fanout") as parent:
            parent.set("workers", workers)
            parent.set("vertices", len(level))
            chunk_outs = pool.map(_build_chunk, chunks)
            # close + join — not the Pool context manager, whose
            # terminate() SIGTERMs workers before their finalizers can
            # flush the spool end markers stitch() relies on.
            pool.close()
            pool.join()
            if spool is not None:
                stitch(spool, parent=parent)
    except BaseException:
        pool.terminate()
        pool.join()
        raise
    finally:
        if spool is not None:
            spool.cleanup()
        _TREE = _STORE = _MAX_SKYLINE = None
        _SPOOL = None
    out = [pair for chunk_out in chunk_outs for pair in chunk_out]
    return out, 0


def build_labels_parallel(
    tree: TreeDecomposition,
    store_paths: bool = True,
    max_skyline: int | None = None,
    workers: int = 2,
    supervised: bool = False,
    supervision: SupervisionConfig | None = None,
) -> LabelStore:
    """Parallel :func:`~repro.labeling.builder.build_labels`.

    Value-identical to the sequential build (see the module docstring
    for exactly what "identical" means).  ``workers`` caps the process
    pool; levels smaller than :data:`MIN_PARALLEL_LEVEL` are built
    inline.  ``supervised`` runs each level's pool under worker
    supervision (deaths healed by respawn + recompute).
    """
    if workers < 2 or not fork_available():
        from repro.labeling.builder import build_labels

        return build_labels(
            tree, store_paths=store_paths, max_skyline=max_skyline
        )

    started = time.perf_counter()
    store = LabelStore(tree.num_vertices, store_paths=store_paths)
    registry = get_registry()
    levels = depth_levels(tree)
    parallel_vertices = 0

    with get_tracer().span("labels.parallel-sweep") as span:
        for level in levels:
            rows_by_vertex, _joins = level_rows(
                tree, store, level, max_skyline, workers,
                supervised=supervised, supervision=supervision,
            )
            for v, rows in rows_by_vertex:
                for u, acc in rows:
                    store.set(v, u, acc)
            if len(rows_by_vertex) >= MIN_PARALLEL_LEVEL:
                parallel_vertices += len(rows_by_vertex)
        span.set("vertices", tree.num_vertices)
        span.set("levels", len(levels))
        span.set("parallel_vertices", parallel_vertices)
        span.set("workers", workers)

    store.build_seconds = time.perf_counter() - started
    if registry.enabled:
        registry.gauge("qhl_label_build_seconds").set(store.build_seconds)
        registry.gauge(
            "qhl_label_build_workers",
            help="process-pool size of the last label build",
        ).set(workers)
        registry.gauge(
            "qhl_label_build_levels",
            help="depth levels (independent batches) in the last build",
        ).set(len(levels))
        registry.gauge(
            "qhl_label_build_parallel_vertices",
            help="vertices whose labels were built in worker processes",
        ).set(parallel_vertices)
    return store
