"""``repro.lint``: AST invariant linter for the QHL codebase.

PRs 1-4 layered conventions on top of the algorithm — cooperative
deadline checkpoints, a single exception taxonomy, seeded-RNG-only
determinism, registered metric and fault-point names, one sanctioned
weight/cost comparison policy — all previously enforced by reviewer
memory.  This package machine-checks them on every commit:

======  ====================  ============================================
 id      name                  invariant
======  ====================  ============================================
QHL001  deadline-checkpoint   loops in deadline-taking functions check
                              or forward the deadline
QHL002  exception-taxonomy    library raises stay inside ReproError (or
                              builtin argument errors); no silent
                              catch-alls
QHL003  determinism           pure algorithm packages: no wall clock,
                              no global/unseeded RNG
QHL004  metric-name-registry  emitted metric names == declared registry
                              (repro.observability.names), both ways
QHL005  fault-point-registry  fired fault points are registered
                              INJECTION_POINTS
QHL006  float-equality        weight/cost equality only through
                              repro.skyline.compare
======  ====================  ============================================

Run it with ``repro-qhl lint src/`` (see ``docs/static-analysis.md``
for the rule catalog, suppression pragma, and baseline workflow).
"""

from repro.lint.baseline import DEFAULT_BASELINE, Baseline
from repro.lint.config import LintConfig, load_config
from repro.lint.context import Module
from repro.lint.findings import Finding, LintError, LintResult
from repro.lint.report import render_json, render_text
from repro.lint.runner import collect_files, run_lint
from repro.lint.rules import Project, Rule, all_rules, register

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE",
    "Finding",
    "LintConfig",
    "LintError",
    "LintResult",
    "Module",
    "Project",
    "Rule",
    "all_rules",
    "collect_files",
    "load_config",
    "register",
    "render_json",
    "render_text",
    "run_lint",
]
