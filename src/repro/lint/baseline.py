"""Baseline suppression file: grandfathered findings with an expiry path.

A baseline lets the linter land with strict rules *now* while existing
violations are burned down incrementally: every entry suppresses
exactly one finding (by stable fingerprint, see
:mod:`repro.lint.findings`) and must carry a ``reason``.  The workflow:

* **add** — ``repro-qhl lint --write-baseline`` snapshots all current
  findings into the file (default reason ``"grandfathered"``; edit the
  reasons before committing — review rejects unexplained entries);
* **expire** — once the underlying code is fixed the entry no longer
  matches anything and is reported *stale*; ``--strict-exit`` turns
  stale entries into a failing run, and ``--write-baseline`` drops
  them.  Baselines only shrink, never rot.

The file format is JSON (``version`` + ``entries``); entries are kept
sorted by path/rule for diff-friendly churn.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.exceptions import LintConfigError
from repro.lint.findings import Finding

FORMAT_VERSION = 1

#: Default baseline location, relative to the lint root.
DEFAULT_BASELINE = "lint-baseline.json"


@dataclass
class Baseline:
    """The parsed baseline: fingerprint -> entry dict."""

    path: str | None = None
    entries: dict[str, dict[str, object]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not os.path.exists(path):
            return cls(path=path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise LintConfigError(
                f"cannot read baseline {path!r}: {exc}"
            ) from exc
        if not isinstance(raw, dict) or "entries" not in raw:
            raise LintConfigError(
                f"baseline {path!r} is not a lint baseline file"
            )
        version = raw.get("version")
        if version != FORMAT_VERSION:
            raise LintConfigError(
                f"baseline {path!r} has unsupported version {version!r}"
            )
        entries: dict[str, dict[str, object]] = {}
        for entry in raw["entries"]:
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise LintConfigError(
                    f"baseline {path!r} holds a malformed entry: {entry!r}"
                )
            entries[str(entry["fingerprint"])] = entry
        return cls(path=path, entries=entries)

    # ------------------------------------------------------------------
    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[dict[str, object]]]:
        """Partition findings into (new, baselined) plus stale entries.

        Stale entries are baseline lines whose fingerprint matched no
        current finding — the fixed-but-not-expired half of the
        workflow.
        """
        new: list[Finding] = []
        baselined: list[Finding] = []
        matched: set[str] = set()
        for finding in findings:
            if finding.fingerprint in self.entries:
                matched.add(finding.fingerprint)
                baselined.append(finding)
            else:
                new.append(finding)
        stale = [
            entry
            for fingerprint, entry in self.entries.items()
            if fingerprint not in matched
        ]
        return new, baselined, stale

    # ------------------------------------------------------------------
    def write(self, findings: list[Finding], path: str) -> int:
        """Snapshot ``findings`` as the new baseline; returns the count.

        Reasons of surviving entries are preserved; new entries get the
        placeholder reason ``"grandfathered"`` for the author to edit.
        """
        entries = []
        for finding in sorted(
            findings, key=lambda f: (f.path, f.rule, f.line)
        ):
            previous = self.entries.get(finding.fingerprint, {})
            entries.append(
                {
                    "fingerprint": finding.fingerprint,
                    "rule": finding.rule,
                    "path": finding.path,
                    "line": finding.line,  # advisory; matching is by fingerprint
                    "snippet": finding.snippet,
                    "reason": previous.get("reason", "grandfathered"),
                }
            )
        payload = {
            "version": FORMAT_VERSION,
            "comment": (
                "Grandfathered lint findings. Every entry needs a real "
                "reason; stale entries fail --strict-exit and are "
                "dropped by --write-baseline."
            ),
            "entries": entries,
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        return len(entries)
