"""The ``repro-qhl lint`` subcommand (also ``python -m repro.lint``).

Exit codes (CI contract):

* ``0`` — clean (baselined findings and inline pragmas do not fail);
* ``1`` — findings present, or (with ``--strict-exit``) stale baseline
  entries that should have been expired;
* ``2`` — the linter itself could not run: unreadable paths, syntax
  errors in linted files, malformed baseline/config.
"""

from __future__ import annotations

import argparse
import sys

from repro.exceptions import LintConfigError, ReproError
from repro.lint.baseline import DEFAULT_BASELINE, Baseline
from repro.lint.config import load_config
from repro.lint.report import render_json, render_text
from repro.lint.runner import run_lint
from repro.lint.rules import all_rules


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to ``parser`` (shared with the main CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="project root for relative paths, pyproject config and the "
        "baseline (default: current directory)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report",
    )
    parser.add_argument(
        "--strict-exit",
        action="store_true",
        help="also exit 1 when the baseline holds stale (already fixed) "
        "entries — keeps the baseline shrink-only in CI",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline suppression file, relative to the root "
        f"(default: {DEFAULT_BASELINE}; missing file = empty baseline)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file: report grandfathered findings too",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot all current findings into the baseline file "
        "(dropping stale entries) and exit 0",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print baselined findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--graph-out",
        metavar="FILE",
        default=None,
        help="export the whole-program call graph (modules, functions, "
        "call/reference edges, spawn sites, reachability) as JSON",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="GIT_REF",
        help="lint only files that differ from GIT_REF (default HEAD), "
        "plus untracked ones; whole-program completeness rules skip",
    )


def _rule_set(value: str | None) -> frozenset[str] | None:
    if value is None:
        return None
    rules = frozenset(part.strip() for part in value.split(",") if part.strip())
    known = set(all_rules())
    unknown = rules - known
    if unknown:
        raise LintConfigError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return rules


def _list_rules() -> str:
    lines = []
    for rule_id, rule_cls in all_rules().items():
        lines.append(f"{rule_id}  {rule_cls.name}")
        lines.append(f"    {rule_cls.rationale}")
    return "\n".join(lines)


def _changed_files(
    root: str, ref: str, paths: list[str]
) -> list[str]:
    """Python files under ``paths`` differing from ``ref`` (plus
    untracked ones), root-relative.  Raises :class:`LintConfigError`
    when git cannot answer — a broken ref must fail loudly (exit 2),
    not lint nothing and report clean."""
    import subprocess

    def git(*argv: str) -> list[str]:
        proc = subprocess.run(
            ["git", *argv],
            cwd=root,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise LintConfigError(
                f"git {' '.join(argv)} failed: "
                f"{proc.stderr.strip() or proc.stdout.strip()}"
            )
        return [line for line in proc.stdout.splitlines() if line]

    candidates = set(git("diff", "--name-only", ref, "--", *paths))
    candidates.update(
        git("ls-files", "--others", "--exclude-standard", "--", *paths)
    )
    import os

    return sorted(
        path
        for path in candidates
        if path.endswith(".py")
        and os.path.isfile(os.path.join(root, path))
    )


def cmd_lint(args: argparse.Namespace) -> int:
    """The subcommand body; returns the process exit code."""
    if args.list_rules:
        print(_list_rules())
        return 0
    import os

    root = os.path.abspath(args.root or os.getcwd())
    config = load_config(
        root, select=_rule_set(args.select), ignore=_rule_set(args.ignore)
    )
    baseline_path = (
        args.baseline
        if os.path.isabs(args.baseline)
        else os.path.join(root, args.baseline)
    )
    baseline = None if args.no_baseline else Baseline.load(baseline_path)
    paths = args.paths
    partial = False
    if args.changed is not None:
        paths = _changed_files(root, args.changed, args.paths)
        partial = True
        if not paths:
            print(
                f"no python files changed against {args.changed}; "
                f"nothing to lint"
            )
            return 0
    result = run_lint(
        paths, config=config, root=root, baseline=baseline,
        partial=partial,
    )

    if args.graph_out is not None and result.project is not None:
        graph_path = (
            args.graph_out
            if os.path.isabs(args.graph_out)
            else os.path.join(root, args.graph_out)
        )
        with open(graph_path, "w", encoding="utf-8") as handle:
            handle.write(result.project.graph().to_json())
            handle.write("\n")
        print(f"wrote call graph -> {graph_path}", file=sys.stderr)

    if args.write_baseline:
        if result.errors:
            print(render_text(result), file=sys.stderr)
            return 2
        snapshot = result.findings + result.baselined
        writer = baseline or Baseline(path=baseline_path)
        count = writer.write(snapshot, baseline_path)
        print(f"wrote {count} baseline entries -> {baseline_path}")
        return 0

    output = render_json(result) if args.json else render_text(
        result, verbose=args.verbose
    )
    print(output)
    return result.exit_code(strict=args.strict_exit)


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-qhl lint",
        description="AST invariant linter for the QHL codebase",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return cmd_lint(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
