"""Lint configuration: rule selection and per-rule options.

Configuration merges three layers, weakest first:

1. each rule's ``default_options`` (in its class);
2. the ``[tool.qhl-lint]`` table of ``pyproject.toml`` at the lint
   root — ``select`` / ``ignore`` lists plus per-rule sub-tables, e.g.::

       [tool.qhl-lint]
       ignore = []

       [tool.qhl-lint.QHL003]
       packages = ["repro/core/", "repro/skyline/"]

3. command-line ``--select`` / ``--ignore``.

``tomllib`` ships with Python 3.11; on 3.10 the pyproject layer is
skipped silently (the defaults are the shipped policy, so a 3.10 run
is still correct for this repo — it just cannot be *re*-configured
from pyproject).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.exceptions import LintConfigError


@dataclass
class LintConfig:
    """Resolved configuration for one lint run."""

    select: frozenset[str] | None = None  # None = all registered rules
    ignore: frozenset[str] = frozenset()
    rule_options: dict[str, dict[str, object]] = field(default_factory=dict)

    def enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        return self.select is None or rule_id in self.select

    def options_for(self, rule_id: str) -> dict[str, object]:
        return self.rule_options.get(rule_id, {})


def _as_rule_set(value: object, key: str) -> frozenset[str]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise LintConfigError(
            f"[tool.qhl-lint] {key} must be a list of rule ids"
        )
    return frozenset(value)


def load_config(
    root: str,
    select: frozenset[str] | None = None,
    ignore: frozenset[str] | None = None,
) -> LintConfig:
    """Build the effective config for ``root``.

    ``select`` / ``ignore`` (from the CLI) override pyproject's.
    """
    config = LintConfig()
    table = _pyproject_table(root)
    if "select" in table:
        config.select = _as_rule_set(table["select"], "select")
    if "ignore" in table:
        config.ignore = _as_rule_set(table["ignore"], "ignore")
    for key, value in table.items():
        if isinstance(value, dict):
            options = {
                name: tuple(option) if isinstance(option, list) else option
                for name, option in value.items()
            }
            config.rule_options[key] = options
    if select is not None:
        config.select = select
    if ignore is not None:
        config.ignore = ignore
    return config


def _pyproject_table(root: str) -> dict[str, object]:
    path = os.path.join(root, "pyproject.toml")
    if not os.path.exists(path):
        return {}
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python 3.10
        return {}
    try:
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        raise LintConfigError(
            f"cannot read {path!r}: {exc}"
        ) from exc
    table = data.get("tool", {}).get("qhl-lint", {})
    if not isinstance(table, dict):
        raise LintConfigError("[tool.qhl-lint] must be a table")
    return table
