"""Per-module lint context: parsed AST, source lines, suppressions.

Inline suppressions use the comment pragma::

    risky_call()  # lint: allow=QHL003 backoff jitter is intentional

The pragma must sit on the *reported* line of the finding (for loops
and ``except`` clauses, the line of the ``for``/``while``/``except``
keyword) and should carry a justification after the rule list — the
repo convention is that a naked ``allow=`` does suppress, but review
rejects it.  Multiple rules are comma-separated
(``# lint: allow=QHL001,QHL006``).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

_PRAGMA = re.compile(r"lint:\s*allow=([A-Z0-9,\s]+?)(?:\s+\S|$)")


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids allowed on that line.

    Comments are found with :mod:`tokenize`, not a regex over raw
    lines, so a ``#`` inside a string literal never reads as a pragma.
    """
    allowed: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(token.string)
            if match is None:
                continue
            rules = {
                rule.strip()
                for rule in match.group(1).split(",")
                if rule.strip()
            }
            if rules:
                allowed.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenError:  # pragma: no cover - ast.parse catches first
        pass
    return allowed


@dataclass
class Module:
    """One parsed source file, as the rules see it."""

    path: str  # absolute
    rel: str  # relative to the lint root, POSIX separators
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, rel: str, source: str) -> "Module":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            rel=rel,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            suppressions=parse_suppressions(source),
        )

    @property
    def package_rel(self) -> str:
        """The path inside the package tree, with any ``src/`` prefix
        stripped — what package-scoped rule options match against
        (e.g. ``repro/skyline/set_ops.py``)."""
        rel = self.rel
        if rel.startswith("src/"):
            rel = rel[len("src/"):]
        return rel

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, lineno: int, rule: str) -> bool:
        return rule in self.suppressions.get(lineno, ())
