"""Intraprocedural reaching-assignments: what a name is bound to.

The whole-program rules (QHL007/QHL009) and the call-graph builder all
need one small fact about local names: *which expressions could this
name be bound to at this use site?*  Full dataflow is overkill for a
linter — this helper is deliberately flow-insensitive per function
(every binding in the function "reaches", optionally filtered to
bindings on earlier lines) which over-approximates in exactly the
conservative direction the rules want.

Bindings come from plain/annotated/augmented assignments, ``with ... as
name``, walrus expressions, and parameter annotations/defaults.  Loop
targets and ``except`` aliases bind too but carry an opaque value.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass(frozen=True)
class Binding:
    """One place a local (or module-level) name gets a value."""

    name: str
    lineno: int
    value: ast.expr | None  # None = opaque (loop target, except alias)
    annotation: ast.expr | None = None
    is_param: bool = False
    is_default: bool = False


def _target_names(target: ast.expr) -> Iterator[tuple[str, ast.expr]]:
    """Names bound by an assignment target (tuples unpack opaquely)."""
    if isinstance(target, ast.Name):
        yield target.id, target
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            inner = (
                element.value
                if isinstance(element, ast.Starred)
                else element
            )
            if isinstance(inner, ast.Name):
                yield inner.id, inner


def iter_scope(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` over one scope: never descends into nested defs.

    Lambdas *are* descended into — they share the enclosing scope for
    everything a linter cares about (names they close over run in the
    enclosing function's world).
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            stack.extend(ast.iter_child_nodes(child))


def scope_bindings(scope: ast.AST) -> dict[str, list[Binding]]:
    """Every binding of every name inside ``scope`` (one function body
    or a module), *excluding* nested function/class bodies.

    For function scopes the parameters are included: annotated
    parameters carry their annotation, defaulted parameters their
    default expression (the QHL007 default-argument-capture case).
    """
    bindings: dict[str, list[Binding]] = {}

    def add(binding: Binding) -> None:
        bindings.setdefault(binding.name, []).append(binding)

    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        positional = [*args.posonlyargs, *args.args]
        defaults: list[ast.expr | None] = [None] * (
            len(positional) - len(args.defaults)
        ) + list(args.defaults)
        for arg, default in zip(positional, defaults, strict=True):
            add(Binding(
                arg.arg, arg.lineno, default, arg.annotation,
                is_param=True, is_default=default is not None,
            ))
        for arg, kw_default in zip(
            args.kwonlyargs, args.kw_defaults, strict=True
        ):
            add(Binding(
                arg.arg, arg.lineno, kw_default, arg.annotation,
                is_param=True, is_default=kw_default is not None,
            ))
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None:
                add(Binding(
                    vararg.arg, vararg.lineno, None, None, is_param=True
                ))

    for node in iter_scope(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for name, tnode in _target_names(target):
                    add(Binding(name, tnode.lineno, node.value))
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                add(Binding(
                    node.target.id, node.target.lineno,
                    node.value, node.annotation,
                ))
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                add(Binding(node.target.id, node.target.lineno, None))
        elif isinstance(node, ast.NamedExpr):
            if isinstance(node.target, ast.Name):
                add(Binding(node.target.id, node.target.lineno, node.value))
        elif isinstance(node, ast.withitem):
            if node.optional_vars is not None:
                for name, tnode in _target_names(node.optional_vars):
                    add(Binding(name, tnode.lineno, node.context_expr))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name, tnode in _target_names(node.target):
                add(Binding(name, tnode.lineno, None))
        elif isinstance(node, ast.ExceptHandler):
            if node.name is not None:
                add(Binding(node.name, node.lineno, None))
    return bindings


def reaching(
    bindings: dict[str, list[Binding]], name: str, lineno: int
) -> list[Binding]:
    """Bindings of ``name`` that could reach a use on ``lineno``.

    Flow-insensitive with a line filter: bindings strictly *after* the
    use only reach it through a loop, so they are kept when any loop
    could carry them back — which this helper approximates by keeping
    them always.  Callers wanting the stricter "bound before use"
    reading filter on ``lineno`` themselves.
    """
    return list(bindings.get(name, ()))


def call_name(node: ast.expr) -> str | None:
    """The dotted name of a call's callee, e.g. ``"mmap.mmap"``.

    Returns ``None`` for non-trivial callees (subscripts, calls).
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None
