"""Findings: what a lint rule reports.

A :class:`Finding` pins one rule violation to a file/line/column and
carries a stable *fingerprint* for the baseline workflow: the
fingerprint hashes the rule id, the file path, the normalised source
line, and an occurrence counter — **not** the line number — so findings
survive unrelated edits that shift code up or down, and a baseline file
does not churn on every refactor.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.lint.rules.base import Project


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, POSIX separators
    line: int
    col: int
    message: str
    snippet: str = ""
    fingerprint: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


def _normalise(snippet: str) -> str:
    """Whitespace-insensitive form of a source line for fingerprinting."""
    return " ".join(snippet.split())


def assign_fingerprints(findings: list[Finding]) -> None:
    """Fill in stable fingerprints, disambiguating identical lines.

    Two findings of the same rule on byte-identical source lines in the
    same file get occurrence indices 0, 1, ... in file order, so e.g.
    two copies of the same unchecked loop each have their own baseline
    identity.
    """
    counts: dict[tuple[str, str, str], int] = {}
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
    for finding in ordered:
        key = (finding.rule, finding.path, _normalise(finding.snippet))
        index = counts.get(key, 0)
        counts[key] = index + 1
        digest = hashlib.sha256(
            "\x1f".join((key[0], key[1], key[2], str(index))).encode()
        ).hexdigest()
        finding.fingerprint = digest[:16]


@dataclass
class LintError:
    """A file the linter could not process (syntax error, bad encoding)."""

    path: str
    message: str


@dataclass
class LintResult:
    """Outcome of one lint run, pre-split by suppression status."""

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    inline_suppressed: list[Finding] = field(default_factory=list)
    stale_baseline: list[dict[str, object]] = field(default_factory=list)
    errors: list[LintError] = field(default_factory=list)
    files_checked: int = 0
    #: The analysed project, for callers that want the call graph
    #: (``--graph-out``) after the run.
    project: "Project | None" = None

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def exit_code(self, strict: bool = False) -> int:
        """CI exit code: 0 clean, 1 findings, 2 unprocessable input.

        ``strict`` additionally fails the run (exit 1) when the
        baseline holds stale entries — the expire half of the baseline
        workflow: once a grandfathered finding is fixed, its entry must
        be removed (``--write-baseline``) or CI goes red.
        """
        if self.errors:
            return 2
        if self.findings:
            return 1
        if strict and self.stale_baseline:
            return 1
        return 0
