"""Project-wide symbol table and call graph.

This is the whole-program half of the linter: one pass over every
parsed module builds

* a **symbol table** — every function, method, and class with a stable
  qualified name (``repro.perf.batch._supervised_chunk``,
  ``repro.supervise.pool.SupervisedPool.run``), plus each module's
  import aliases (``from x import y as z`` and ``import x as y``,
  relative imports resolved, re-export chains followed through
  ``__init__`` modules);
* a **call graph** — edges from each function to every callee the
  resolver can name: plain calls, constructor calls, ``self.method()``
  within a class (walking project-local base classes), method calls on
  locals whose type is known (annotation or constructor assignment),
  and method calls through typed ``self.attr`` instance attributes;
* **reference edges** — a function *mentioned* without being called
  (passed as a callback, stored in a registry) may run later, so loads
  of function names are kept as weaker edges, used by reachability;
* **fork entries** — functions handed to ``SupervisedPool`` /
  ``Supervisor`` / ``ProcessPoolExecutor`` / ``multiprocessing.Process``
  as worker entrypoints, including ``functools.partial`` wrappers and
  ``"pkg.mod:func"`` string spellings.

Everything is resolved *statically and conservatively*: when a callee
cannot be named (a value of unknown type, ``getattr``, a lambda) the
call simply produces no edge.  Rules built on the graph must therefore
treat "no edge" as "unknown", never as "does not call".

The graph serialises to JSON (``repro-qhl lint --graph-out``) so CI can
diff reachability between revisions.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.lint.dataflow import call_name, iter_scope, scope_bindings

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.context import Module
    from repro.lint.rules.base import Project

#: Suffix of the synthetic per-module node holding import-time calls.
MODULE_NODE = "<module>"

#: Spawn APIs whose argument (positional or keyword) is a fork
#: entrypoint: class/function basename -> argument spec.  ``0`` means
#: the first positional argument.
_SPAWN_SIGNATURES: dict[str, tuple[int | None, tuple[str, ...]]] = {
    "SupervisedPool": (0, ("entrypoint",)),
    "Supervisor": (0, ("entrypoint",)),
    "ProcessPoolExecutor": (None, ("initializer",)),
    "Process": (None, ("target",)),
}

#: Method names that hand their first argument to a worker process.
_SPAWN_METHODS = frozenset({"submit", "apply_async", "map"})


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qname: str
    module: "Module"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_qname: str | None = None
    decorators: tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_public(self) -> bool:
        name = self.node.name
        if name.startswith("__") and name.endswith("__"):
            return True  # dunders are called implicitly
        return not name.startswith("_")

    @property
    def is_method(self) -> bool:
        return self.class_qname is not None

    def positional_params(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in (*args.posonlyargs, *args.args)]
        if self.is_method and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names

    def param_names(self) -> set[str]:
        args = self.node.args
        return {
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        }


@dataclass
class ClassInfo:
    """One project-local class: methods, bases, typed attributes."""

    qname: str
    module: "Module"
    node: ast.ClassDef
    bases: tuple[str, ...] = ()  # resolved qnames where possible
    methods: dict[str, str] = field(default_factory=dict)
    #: ``self.<attr>`` -> class qname, from ``self.x = Ctor()`` /
    #: ``self.x: T`` in any method body.
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleSymbols:
    """Per-module name resolution state."""

    dotted: str
    module: "Module"
    #: local alias -> dotted target (module, or module.symbol)
    imports: dict[str, str] = field(default_factory=dict)
    #: top-level name -> qname of the local function/class it denotes
    defs: dict[str, str] = field(default_factory=dict)


@dataclass
class SpawnSite:
    """One place a function is handed to a fork-based worker API."""

    entry: str  # qname of the entry function
    caller: str  # qname of the function containing the spawn call
    path: str
    lineno: int
    api: str  # e.g. "SupervisedPool" or "submit"


class CallGraph:
    """The resolved whole-program view; built by :func:`build_graph`."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleSymbols] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.edges: dict[str, set[str]] = {}
        self.refs: dict[str, set[str]] = {}
        #: caller qname -> class qnames it instantiates
        self.instantiates: dict[str, set[str]] = {}
        self.spawn_sites: list[SpawnSite] = []
        #: ``id(ast def node)`` -> info, for rules that found a node
        #: during their own walk and need its graph identity.
        self.by_node: dict[int, FunctionInfo] = {}

    # -- queries --------------------------------------------------------
    def fork_entries(self) -> set[str]:
        return {site.entry for site in self.spawn_sites}

    def callees(self, qname: str) -> set[str]:
        return self.edges.get(qname, set())

    def successors(self, qname: str) -> set[str]:
        """Call edges plus reference edges plus instantiated dunders."""
        out = set(self.edges.get(qname, ()))
        out.update(self.refs.get(qname, ()))
        for cls_qname in self.instantiates.get(qname, ()):
            info = self.classes.get(cls_qname)
            if info is None:
                continue
            for method_name, method_qname in info.methods.items():
                if method_name.startswith("__") and method_name.endswith(
                    "__"
                ):
                    out.add(method_qname)
        return out

    def reachable_from(self, roots: set[str]) -> set[str]:
        """Transitive closure over :meth:`successors`."""
        seen = set(roots & (set(self.functions) | self._module_nodes()))
        stack = list(seen)
        while stack:
            current = stack.pop()
            for nxt in self.successors(current):
                if nxt not in seen and (
                    nxt in self.functions or nxt in self._module_nodes()
                ):
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def _module_nodes(self) -> set[str]:
        return {
            f"{dotted}.{MODULE_NODE}" for dotted in self.modules
        }

    def default_roots(self) -> set[str]:
        """Import-time code plus the public API surface.

        Anything with a public name is callable from outside the
        project, so reachability treats it as live; private functions
        must earn liveness through a call or reference chain.
        """
        roots = self._module_nodes()
        for qname, info in self.functions.items():
            if info.is_public:
                roots.add(qname)
        return roots

    def reachable(self) -> set[str]:
        return self.reachable_from(self.default_roots())

    def calls_within(
        self, func: FunctionInfo, sub: ast.AST | None = None
    ) -> Iterator[tuple[ast.Call, set[str]]]:
        """(call node, resolved callee qnames) inside ``func``.

        ``sub`` restricts the walk to one statement subtree (a loop
        body, say); resolution reuses the edge resolver's scope.
        """
        resolver = _Resolver(self, func.module)
        scope = _FunctionScope(self, resolver, func)
        for node in iter_scope(sub if sub is not None else func.node):
            if isinstance(node, ast.Call):
                yield node, scope.resolve_call(node)

    def resolver_for(self, module: "Module") -> "_Resolver":
        """A name resolver scoped to ``module`` — how rules turn a
        dotted callee into a canonical qname (``resolve_dotted``)."""
        return _Resolver(self, module)

    def scope_for(self, func: FunctionInfo) -> "_FunctionScope":
        """A per-function resolution scope (receiver types, call
        resolution) for rules that walk a function body themselves."""
        return _FunctionScope(self, _Resolver(self, func.module), func)

    def scopes_of(
        self, module: "Module"
    ) -> Iterator[tuple[str, ast.AST]]:
        """Every executable scope of ``module``: each function (by
        qname) plus the module top level as ``<module>``.  Walk the
        yielded node with :func:`iter_scope` / ``iter_module_scope``."""
        dotted = module_dotted(module.package_rel)
        for qname, info in self.functions.items():
            if info.module is module:
                yield qname, info.node
        yield f"{dotted}.{MODULE_NODE}", module.tree

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        reachable = self.reachable()
        fork = self.fork_entries()
        functions = []
        for qname in sorted(self.functions):
            info = self.functions[qname]
            functions.append({
                "qname": qname,
                "path": info.module.rel,
                "line": info.node.lineno,
                "class": info.class_qname,
                "public": info.is_public,
                "fork_entry": qname in fork,
                "reachable": qname in reachable,
            })
        return {
            "version": 1,
            "modules": sorted(self.modules),
            "functions": functions,
            "edges": sorted(
                [caller, callee]
                for caller, callees in self.edges.items()
                for callee in callees
            ),
            "references": sorted(
                [source, target]
                for source, targets in self.refs.items()
                for target in targets
            ),
            "spawn_sites": [
                {
                    "entry": site.entry,
                    "caller": site.caller,
                    "path": site.path,
                    "line": site.lineno,
                    "api": site.api,
                }
                for site in sorted(
                    self.spawn_sites,
                    key=lambda s: (s.path, s.lineno, s.entry),
                )
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def module_dotted(package_rel: str) -> str:
    """``repro/lint/cli.py`` -> ``repro.lint.cli``; ``__init__`` folds
    into its package."""
    rel = package_rel
    if rel.endswith(".py"):
        rel = rel[:-3]
    parts = [p for p in rel.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else rel


def build_graph(project: "Project") -> CallGraph:
    """Build the whole-program graph for every parsed module."""
    graph = CallGraph()
    for module in project.modules:
        _collect_symbols(graph, module)
    for symbols in graph.modules.values():
        _resolve_bases(graph, symbols)
    for symbols in graph.modules.values():
        _collect_attr_types(graph, symbols)
    for symbols in graph.modules.values():
        _build_edges(graph, symbols)
    return graph


def _collect_symbols(graph: CallGraph, module: "Module") -> None:
    dotted = module_dotted(module.package_rel)
    symbols = ModuleSymbols(dotted=dotted, module=module)
    graph.modules[dotted] = symbols

    package = dotted if _is_package(module) else dotted.rpartition(".")[0]
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    symbols.imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    symbols.imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_import_base(node, dotted, package)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                symbols.imports[alias.asname or alias.name] = (
                    f"{base}.{alias.name}" if base else alias.name
                )

    _collect_defs(graph, symbols, module.tree, prefix=dotted, cls=None)

    # Module-level aliases: ``name = other_callable``.
    for node in module.tree.body:
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Name)
            and node.value.id in symbols.defs
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    symbols.defs.setdefault(
                        target.id, symbols.defs[node.value.id]
                    )


def _is_package(module: "Module") -> bool:
    return module.package_rel.endswith("/__init__.py") or (
        module.package_rel == "__init__.py"
    )


def _resolve_import_base(
    node: ast.ImportFrom, dotted: str, package: str
) -> str | None:
    if node.level == 0:
        return node.module or ""
    # Relative import: climb ``level - 1`` packages above ``package``.
    parts = package.split(".") if package else []
    climb = node.level - 1
    if climb > len(parts):
        return None
    base_parts = parts[: len(parts) - climb]
    if node.module:
        base_parts.append(node.module)
    return ".".join(base_parts)


def _collect_defs(
    graph: CallGraph,
    symbols: ModuleSymbols,
    scope: ast.AST,
    prefix: str,
    cls: str | None,
) -> None:
    body = (
        scope.body
        if isinstance(scope, (ast.Module, ast.ClassDef))
        else getattr(scope, "body", [])
    )
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qname = f"{prefix}.{node.name}"
            info = FunctionInfo(
                qname=qname,
                module=symbols.module,
                node=node,
                class_qname=cls,
                decorators=tuple(
                    name
                    for name in (
                        call_name(
                            d.func if isinstance(d, ast.Call) else d
                        )
                        for d in node.decorator_list
                    )
                    if name is not None
                ),
            )
            graph.functions[qname] = info
            graph.by_node[id(node)] = info
            if cls is None and prefix == symbols.dotted:
                symbols.defs[node.name] = qname
            if cls is not None:
                graph.classes[cls].methods[node.name] = qname
            _collect_nested(graph, symbols, node, qname)
        elif isinstance(node, ast.ClassDef) and cls is None:
            qname = f"{prefix}.{node.name}"
            graph.classes[qname] = ClassInfo(
                qname=qname, module=symbols.module, node=node
            )
            if prefix == symbols.dotted:
                symbols.defs[node.name] = qname
            _collect_defs(graph, symbols, node, qname, cls=qname)


def _collect_nested(
    graph: CallGraph,
    symbols: ModuleSymbols,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    qname: str,
) -> None:
    """Nested defs get ``outer.<locals>.inner`` qnames and a
    containment edge (defining is not calling, but a nested function
    is only ever live through its owner)."""
    for node in iter_scope(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = f"{qname}.<locals>.{node.name}"
            info = FunctionInfo(
                qname=inner, module=symbols.module, node=node
            )
            graph.functions[inner] = info
            graph.by_node[id(node)] = info
            graph.refs.setdefault(qname, set()).add(inner)
            _collect_nested(graph, symbols, node, inner)


def _resolve_bases(graph: CallGraph, symbols: ModuleSymbols) -> None:
    resolver = _Resolver(graph, symbols.module)
    for cls_qname, info in graph.classes.items():
        if info.module is not symbols.module:
            continue
        resolved: list[str] = []
        for base in info.node.bases:
            name = call_name(base)
            if name is None:
                continue
            target = resolver.resolve_dotted(name)
            if target in graph.classes:
                resolved.append(target)
        info.bases = tuple(resolved)


def _collect_attr_types(graph: CallGraph, symbols: ModuleSymbols) -> None:
    resolver = _Resolver(graph, symbols.module)
    for info in graph.classes.values():
        if info.module is not symbols.module:
            continue
        for method_qname in info.methods.values():
            method = graph.functions.get(method_qname)
            if method is None:
                continue
            args = method.node.args
            param_annotations = {
                a.arg: a.annotation
                for a in (
                    *args.posonlyargs, *args.args, *args.kwonlyargs
                )
                if a.annotation is not None
            }
            for node in iter_scope(method.node):
                target: ast.expr | None = None
                value: ast.expr | None = None
                annotation: ast.expr | None = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    annotation = node.annotation
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                # ``self.x = param`` inherits the parameter's annotation.
                if (
                    annotation is None
                    and isinstance(value, ast.Name)
                    and value.id in param_annotations
                ):
                    annotation = param_annotations[value.id]
                cls_qname = _type_of_expr(resolver, value, annotation)
                if cls_qname is not None:
                    info.attr_types.setdefault(target.attr, cls_qname)


def annotation_type(
    resolver: "_Resolver", annotation: ast.expr | None
) -> str | None:
    """The class qname (or opaque external CapWords name) named by an
    annotation, unwrapping string forms, ``X | None`` unions, and
    ``Optional[X]`` subscripts."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            parsed = ast.parse(annotation.value, mode="eval")
        except SyntaxError:
            return None
        return annotation_type(resolver, parsed.body)
    if isinstance(annotation, ast.BinOp) and isinstance(
        annotation.op, ast.BitOr
    ):
        return annotation_type(resolver, annotation.left) or (
            annotation_type(resolver, annotation.right)
        )
    if isinstance(annotation, ast.Subscript):
        base = call_name(annotation.value)
        if base is not None and base.rpartition(".")[2] in (
            "Optional", "Union"
        ):
            inner = annotation.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return annotation_type(resolver, inner)
        return None
    name = call_name(annotation)
    if name is None or name == "None":
        return None
    target = resolver.resolve_dotted(name)
    if target in resolver.graph.classes:
        return target
    if target.rpartition(".")[2][:1].isupper():
        return target
    return None


def _type_of_expr(
    resolver: "_Resolver",
    value: ast.expr | None,
    annotation: ast.expr | None = None,
) -> str | None:
    """The class qname an expression evaluates to, if statically
    knowable: a constructor call or a class annotation."""
    if isinstance(value, ast.Call):
        name = call_name(value.func)
        if name is not None:
            target = resolver.resolve_dotted(name)
            if target in resolver.graph.classes:
                return target
            # ``Class.from_x(...)`` alternate constructors.
            head, _, tail = target.rpartition(".")
            if head in resolver.graph.classes and tail.startswith("from"):
                return head
            # Project-external constructor (ProcessPoolExecutor, ...):
            # keep the dotted name as an opaque external type so spawn
            # APIs on the value are still recognised.  CapWords is the
            # constructor-vs-call tell.
            if target.rpartition(".")[2][:1].isupper():
                return target
    return annotation_type(resolver, annotation)


#: Public spelling for rules inferring a binding's type themselves.
type_of_expr = _type_of_expr


class _Resolver:
    """Resolves dotted names as seen from one module."""

    #: Re-export chains longer than this are cycles, not code.
    _MAX_HOPS = 16

    def __init__(self, graph: CallGraph, module: "Module") -> None:
        self.graph = graph
        self.symbols = graph.modules[module_dotted(module.package_rel)]

    def resolve_dotted(self, name: str) -> str:
        """Best-effort canonical qname for a dotted name used in this
        module (``FlatLabelStore.from_compact`` ->
        ``repro.storage.flat.FlatLabelStore.from_compact``)."""
        head, _, rest = name.partition(".")
        target = self.symbols.defs.get(head) or self.symbols.imports.get(
            head
        )
        if target is None:
            return name
        resolved = self._canonical(target)
        return f"{resolved}.{rest}" if rest else resolved

    def _canonical(self, dotted: str, hops: int = 0) -> str:
        """Follow re-export chains (``from a.b import f`` in
        ``__init__`` modules) to the defining module."""
        if hops >= self._MAX_HOPS:
            return dotted
        if dotted in self.graph.functions or dotted in self.graph.classes:
            return dotted
        module_part, _, attr = dotted.rpartition(".")
        symbols = self.graph.modules.get(module_part)
        if symbols is None or not attr:
            return dotted
        target = symbols.defs.get(attr) or symbols.imports.get(attr)
        if target is None or target == dotted:
            return dotted
        return self._canonical(target, hops + 1)


class _FunctionScope:
    """Resolution inside one function body: locals, self, parameters."""

    def __init__(
        self,
        graph: CallGraph,
        resolver: _Resolver,
        func: FunctionInfo,
    ) -> None:
        self.graph = graph
        self.resolver = resolver
        self.func = func
        self.cls = (
            graph.classes.get(func.class_qname)
            if func.class_qname
            else None
        )
        self._local_types: dict[str, str] = {}
        self._local_funcs: dict[str, str] = {}
        self._scan_locals()

    def _scan_locals(self) -> None:
        for name, bindings in scope_bindings(self.func.node).items():
            for binding in bindings:
                inferred = _type_of_expr(
                    self.resolver, binding.value, binding.annotation
                )
                if inferred is not None:
                    self._local_types.setdefault(name, inferred)
                if binding.value is not None:
                    target = self._expr_function(binding.value)
                    if target is not None:
                        self._local_funcs.setdefault(name, target)
        # Nested defs shadow everything else.
        for node in iter_scope(self.func.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = f"{self.func.qname}.<locals>.{node.name}"
                if nested in self.graph.functions:
                    self._local_funcs[node.name] = nested

    def _expr_function(self, expr: ast.expr) -> str | None:
        """A function qname an expression denotes (not calls)."""
        name = call_name(expr)
        if name is None:
            return None
        resolved = self.resolve_value_name(name)
        return resolved if resolved in self.graph.functions else None

    def resolve_value_name(self, dotted: str) -> str:
        """Resolve ``a.b.c`` seen in this body to a canonical qname."""
        head, _, rest = dotted.partition(".")
        if head in ("self", "cls") and self.cls is not None:
            return self._resolve_on_class(self.cls.qname, rest)
        local = self._local_funcs.get(head)
        if local is not None and not rest:
            return local
        local_type = self._local_types.get(head)
        if local_type is not None and rest:
            return self._resolve_on_class(local_type, rest)
        return self.resolver.resolve_dotted(dotted)

    def type_of_value(self, expr: ast.expr) -> str | None:
        """Best-effort class qname of an expression's value: locals and
        parameters by annotation or constructor, ``self``/``cls``, and
        attribute chains through each class's ``attr_types``."""
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls") and self.cls is not None:
                return self.cls.qname
            return self._local_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.type_of_value(expr.value)
            if base is None:
                return None
            return self._attr_type_on(base, expr.attr)
        if isinstance(expr, ast.Call):
            return _type_of_expr(self.resolver, expr)
        return None

    def _attr_type_on(self, cls_qname: str, attr: str) -> str | None:
        seen: set[str] = set()
        stack = [cls_qname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.graph.classes.get(current)
            if info is None:
                continue
            if attr in info.attr_types:
                return info.attr_types[attr]
            stack.extend(info.bases)
        return None

    def _resolve_on_class(self, cls_qname: str, rest: str) -> str:
        """``self.a.b()`` / ``obj.method()`` lookup with inheritance."""
        if not rest:
            return cls_qname
        attr, _, tail = rest.partition(".")
        seen: set[str] = set()
        stack = [cls_qname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.graph.classes.get(current)
            if info is None:
                continue
            if not tail and attr in info.methods:
                return info.methods[attr]
            if attr in info.attr_types:
                return self._resolve_on_class(
                    info.attr_types[attr], tail
                )
            stack.extend(info.bases)
        return f"{cls_qname}.{rest}"

    # -- call resolution ------------------------------------------------
    def resolve_call(self, node: ast.Call) -> set[str]:
        """Callee qnames for one call: functions, or a class (meaning
        its constructor)."""
        name = call_name(node.func)
        if name is None:
            return set()
        resolved = self.resolve_value_name(name)
        out: set[str] = set()
        if resolved in self.graph.functions:
            out.add(resolved)
        elif resolved in self.graph.classes:
            out.add(resolved)
            init = self.graph.classes[resolved].methods.get("__init__")
            if init is not None:
                out.add(init)
        elif "." in resolved:
            # ``Class.method`` spelled through the class object.
            head, _, tail = resolved.rpartition(".")
            if head in self.graph.classes:
                target = self._resolve_on_class(head, tail)
                if target in self.graph.functions:
                    out.add(target)
        return out

    def entry_candidates(self, node: ast.Call) -> list[tuple[str, str]]:
        """(entry qname, api name) pairs when ``node`` is a spawn call."""
        name = call_name(node.func)
        if name is None:
            return []
        resolved = self.resolve_value_name(name)
        base = resolved.rpartition(".")[2]
        api: str | None = None
        arg_exprs: list[ast.expr] = []
        if base in _SPAWN_SIGNATURES:
            api = base
            pos_index, kw_names = _SPAWN_SIGNATURES[base]
            if pos_index is not None and len(node.args) > pos_index:
                arg_exprs.append(node.args[pos_index])
            for keyword in node.keywords:
                if keyword.arg in kw_names:
                    arg_exprs.append(keyword.value)
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SPAWN_METHODS
            and node.args
        ):
            receiver = call_name(node.func.value)
            receiver_type = (
                self._local_types.get(receiver) if receiver else None
            )
            if receiver is not None and receiver_type is None:
                # self.attr receivers and class-typed locals.
                resolved_recv = self.resolve_value_name(receiver)
                if resolved_recv in self.graph.classes:
                    receiver_type = resolved_recv
            if receiver_type is None or receiver_type.rpartition(".")[
                2
            ] not in ("ProcessPoolExecutor", "SupervisedPool", "Pool"):
                return []
            api = node.func.attr
            arg_exprs.append(node.args[0])
        if api is None:
            return []
        out: list[tuple[str, str]] = []
        for expr in arg_exprs:
            target = self._entry_target(expr)
            if target is not None:
                out.append((target, api))
        return out

    def _entry_target(self, expr: ast.expr) -> str | None:
        """Resolve an entrypoint expression: name, partial, or string."""
        if isinstance(expr, ast.Call):
            callee = call_name(expr.func)
            if callee is not None and callee.rpartition(".")[2] == (
                "partial"
            ) and expr.args:
                return self._entry_target(expr.args[0])
            return None
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            spelled = expr.value.replace(":", ".")
            if spelled in self.graph.functions:
                return spelled
            resolved = self.resolver.resolve_dotted(spelled)
            return resolved if resolved in self.graph.functions else None
        name = call_name(expr)
        if name is None:
            return None
        resolved = self.resolve_value_name(name)
        if resolved in self.graph.functions:
            return resolved
        return None


def _build_edges(graph: CallGraph, symbols: ModuleSymbols) -> None:
    resolver = _Resolver(graph, symbols.module)
    module_node = f"{symbols.dotted}.{MODULE_NODE}"

    scopes: list[tuple[str, ast.AST, _FunctionScope | None]] = []
    for qname, info in graph.functions.items():
        if info.module is symbols.module:
            scopes.append(
                (qname, info.node, _FunctionScope(graph, resolver, info))
            )
    scopes.append((module_node, symbols.module.tree, None))

    for qname, scope_node, scope in scopes:
        edges = graph.edges.setdefault(qname, set())
        refs = graph.refs.setdefault(qname, set())
        instantiated = graph.instantiates.setdefault(qname, set())
        if scope is None:
            scope = _ModuleScope(graph, resolver)
        call_funcs: set[int] = set()
        walker = (
            iter_scope(scope_node)
            if isinstance(scope_node, (ast.FunctionDef, ast.AsyncFunctionDef))
            else _iter_module_scope(scope_node)
        )
        nodes = list(walker)
        for node in nodes:
            if isinstance(node, ast.Call):
                call_funcs.add(id(node.func))
        for node in nodes:
            if isinstance(node, ast.Call):
                for target in scope.resolve_call(node):
                    if target in graph.classes:
                        instantiated.add(target)
                    else:
                        edges.add(target)
                for entry, api in scope.entry_candidates(node):
                    graph.spawn_sites.append(SpawnSite(
                        entry=entry,
                        caller=qname,
                        path=symbols.module.rel,
                        lineno=node.lineno,
                        api=api,
                    ))
                    edges.add(entry)
            elif isinstance(node, (ast.Name, ast.Attribute)):
                if id(node) in call_funcs or not isinstance(
                    node.ctx, ast.Load
                ):
                    continue
                name = call_name(node)
                if name is None:
                    continue
                resolved = scope.resolve_value_name(name)
                if resolved in graph.functions:
                    refs.add(resolved)
                elif resolved in graph.classes:
                    instantiated.add(resolved)


def _iter_module_scope(tree: ast.AST) -> Iterator[ast.AST]:
    """Module top-level statements, excluding function/class bodies."""
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.ClassDef):
            continue
        yield node
        yield from iter_scope(node)


#: Public spelling for rules walking the ``<module>`` scope yielded by
#: :meth:`CallGraph.scopes_of`.
iter_module_scope = _iter_module_scope


class _ModuleScope:
    """Scope adapter for module top-level code."""

    def __init__(self, graph: CallGraph, resolver: _Resolver) -> None:
        self.graph = graph
        self.resolver = resolver

    def resolve_value_name(self, dotted: str) -> str:
        return self.resolver.resolve_dotted(dotted)

    def resolve_call(self, node: ast.Call) -> set[str]:
        name = call_name(node.func)
        if name is None:
            return set()
        resolved = self.resolver.resolve_dotted(name)
        out: set[str] = set()
        if resolved in self.graph.functions:
            out.add(resolved)
        elif resolved in self.graph.classes:
            out.add(resolved)
            init = self.graph.classes[resolved].methods.get("__init__")
            if init is not None:
                out.add(init)
        return out

    def entry_candidates(self, node: ast.Call) -> list[tuple[str, str]]:
        return []
