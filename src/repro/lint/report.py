"""Reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from repro.lint.findings import LintResult


def render_text(result: LintResult, verbose: bool = False) -> str:
    """The default terminal report: one block per finding + a summary."""
    lines: list[str] = []
    for error in result.errors:
        lines.append(f"{error.path}: error: {error.message}")
    for finding in result.findings:
        lines.append(
            f"{finding.location()}: {finding.rule} {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if verbose:
        for finding in result.baselined:
            lines.append(
                f"{finding.location()}: {finding.rule} [baselined] "
                f"{finding.message}"
            )
    for entry in result.stale_baseline:
        lines.append(
            f"{entry.get('path')}: stale baseline entry "
            f"{entry.get('fingerprint')} ({entry.get('rule')}: "
            f"{entry.get('snippet', '')!r} no longer matches) — "
            f"refresh with --write-baseline"
        )
    lines.append(_summary(result))
    return "\n".join(lines)


def _summary(result: LintResult) -> str:
    parts = [
        f"checked {result.files_checked} files",
        f"{len(result.findings)} finding(s)",
    ]
    if result.baselined:
        parts.append(f"{len(result.baselined)} baselined")
    if result.inline_suppressed:
        parts.append(f"{len(result.inline_suppressed)} inline-suppressed")
    if result.stale_baseline:
        parts.append(f"{len(result.stale_baseline)} stale baseline entries")
    if result.errors:
        parts.append(f"{len(result.errors)} file error(s)")
    return ", ".join(parts)


def render_json(result: LintResult) -> str:
    """Stable JSON for CI annotation tooling."""
    payload = {
        "version": 1,
        "files_checked": result.files_checked,
        "findings": [f.to_dict() for f in result.findings],
        "baselined": [f.to_dict() for f in result.baselined],
        "inline_suppressed": [
            f.to_dict() for f in result.inline_suppressed
        ],
        "stale_baseline": result.stale_baseline,
        "errors": [
            {"path": e.path, "message": e.message} for e in result.errors
        ],
    }
    return json.dumps(payload, indent=2)
