"""The rule registry: importing this package registers every rule."""

from repro.lint.rules.base import (
    Project,
    Rule,
    all_rules,
    declared_names,
    load_declared_names,
    register,
)
from repro.lint.rules import (  # noqa: F401  (import = registration)
    deadline,
    determinism,
    durability,
    exceptions,
    fault_points,
    floats,
    fork_safety,
    immutability,
    metrics,
    pragmas,
    reachability,
)

__all__ = [
    "Project",
    "Rule",
    "all_rules",
    "declared_names",
    "load_declared_names",
    "register",
]
