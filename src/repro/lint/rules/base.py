"""Rule base class, rule registry, and shared static helpers."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Type

from repro.exceptions import LintConfigError
from repro.lint.context import Module
from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.lint.graph import CallGraph


@dataclass
class Project:
    """Everything a whole-project (two-phase) rule can see."""

    root: str
    modules: list[Module] = field(default_factory=list)
    #: True when the run covers only a slice of the tree (``--changed``):
    #: rules whose verdicts need the *whole* program (reachability,
    #: unused-registry directions) must skip rather than guess.
    partial: bool = False
    _graph: "CallGraph | None" = field(
        default=None, repr=False, compare=False
    )

    def find_module(self, package_rel: str) -> Module | None:
        for module in self.modules:
            if module.package_rel == package_rel or module.rel == package_rel:
                return module
        return None

    def graph(self) -> "CallGraph":
        """The whole-program call graph, built once per run on first
        use and shared by every rule."""
        if self._graph is None:
            from repro.lint.graph import build_graph

            self._graph = build_graph(self)
        return self._graph


class Rule:
    """One lint rule.

    Subclasses set ``id`` / ``name`` / ``rationale`` and implement
    :meth:`check_module`; rules that need the whole project (registry
    cross-checks) also implement :meth:`finish`, called once after
    every module has been visited.  ``default_options`` documents the
    rule's knobs; per-run overrides arrive merged via ``options``.
    """

    id: str = ""
    name: str = ""
    rationale: str = ""
    default_options: dict[str, object] = {}

    def __init__(self, options: dict[str, object] | None = None) -> None:
        self.options: dict[str, object] = {
            **self.default_options, **(options or {})
        }

    def check_module(self, module: Module) -> Iterable[Finding]:
        return ()

    def finish(self, project: Project) -> Iterable[Finding]:
        return ()

    # -- helpers shared by several rules --------------------------------
    def applies_to(self, module: Module, key: str = "packages") -> bool:
        """Whether ``module`` is inside one of the rule's configured
        package prefixes (option ``key``; empty tuple = everywhere)."""
        prefixes = tuple(self.options.get(key) or ())
        if not prefixes:
            return True
        return module.package_rel.startswith(tuple(prefixes))

    def finding(
        self, module: Module, node: ast.AST | int, message: str
    ) -> Finding:
        if isinstance(node, int):
            line, col = node, 0
        else:
            line, col = node.lineno, node.col_offset
        return Finding(
            rule=self.id,
            path=module.rel,
            line=line,
            col=col,
            message=message,
            snippet=module.line_text(line),
        )


_REGISTRY: dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise LintConfigError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise LintConfigError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> dict[str, Type[Rule]]:
    """The registered rules, keyed by id, in id order."""
    return dict(sorted(_REGISTRY.items()))


# ----------------------------------------------------------------------
# Static extraction of declared-name registries (QHL004 / QHL005).

def declared_names(
    tree: ast.Module, targets: tuple[str, ...]
) -> dict[str, int]:
    """String constants declared in module-level assignments.

    Finds ``NAME = {...}`` / ``NAME = (...)`` / ``NAME = frozenset((..))``
    for any ``NAME`` in ``targets`` and returns each declared string
    with its line number.  Dict values contribute their *keys* (the
    metric-registry shape); tuples/lists/sets contribute elements.
    Purely syntactic — nothing is imported or executed.
    """
    names: dict[str, int] = {}

    def collect(value: ast.expr) -> None:
        if isinstance(value, ast.Dict):
            elements: Iterator[ast.expr | None] = iter(value.keys)
        elif isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            elements = iter(value.elts)
        elif isinstance(value, ast.Call) and value.args:
            # frozenset((...)) / tuple([...]) wrappers.
            collect(value.args[0])
            return
        else:
            return
        for element in elements:
            if (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                names.setdefault(element.value, element.lineno)

    for node in tree.body:
        value: ast.expr | None
        if isinstance(node, ast.Assign):
            assign_targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            assign_targets, value = [node.target], node.value
        else:
            continue
        if value is None:
            continue
        for target in assign_targets:
            if isinstance(target, ast.Name) and target.id in targets:
                collect(value)
    return names


def load_declared_names(
    project: Project,
    registry_path: str,
    targets: tuple[str, ...],
) -> tuple[dict[str, int], str]:
    """Declared names from a registry module, scanned or read from disk.

    Prefers the already-parsed module when the registry file is inside
    the linted path set; otherwise parses it straight from
    ``project.root``.  Raises :class:`LintConfigError` when the file is
    missing or holds no declaration — a broken registry must fail the
    run loudly, not pass vacuously.
    """
    module = project.find_module(registry_path)
    if module is not None:
        names = declared_names(module.tree, targets)
        rel = module.rel
    else:
        # registry_path is package-relative; on disk the package may sit
        # under a src/ layout, so try both spellings.
        candidates = [
            os.path.join(project.root, registry_path),
            os.path.join(project.root, "src", registry_path),
        ]
        tree = None
        last_error: Exception | None = None
        for path in candidates:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    tree = ast.parse(handle.read(), filename=path)
                break
            except (OSError, SyntaxError) as exc:
                last_error = exc
        if tree is None:
            raise LintConfigError(
                f"cannot read name registry {registry_path!r}: {last_error}"
            ) from last_error
        names = declared_names(tree, targets)
        rel = registry_path
    if not names:
        raise LintConfigError(
            f"name registry {registry_path!r} declares none of "
            f"{', '.join(targets)}"
        )
    return names, rel
