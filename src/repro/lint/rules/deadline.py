"""QHL001: every loop in a deadline-taking function must checkpoint.

The PR-2 serving invariant: a :class:`~repro.service.deadline.Deadline`
threaded into an engine is only worth anything if the engine's loops
actually look at it — a single missed loop turns a 50 ms budget into an
unbounded stall on a pathological query.  The invariant was previously
enforced by reviewer memory across ``core/``, ``baselines/`` and
``perf/``; this rule machine-checks it.

A loop body satisfies the rule when, anywhere in its subtree, it

* calls ``<deadline>.check(...)`` or ``<deadline>.expired()`` on the
  function's deadline parameter (masked variants like
  ``if pops & MASK == 0: deadline.check(stats)`` count — the call just
  has to be reachable inside the iteration), or
* forwards the deadline to a callee (positionally or as
  ``deadline=...``) — cooperative delegation: the callee's own loops
  are checked when *it* is linted.

Loops over literal tuple/list/set displays (``for v_end in (s, t):``)
are exempt: their trip count is a small syntactic constant.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.context import Module
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, register

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)
_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _deadline_params(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    param_names: tuple[str, ...],
    annotation_names: tuple[str, ...],
) -> set[str]:
    """Parameter names of ``node`` that carry a deadline."""
    params: set[str] = set()
    args = node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if arg.arg in param_names:
            params.add(arg.arg)
            continue
        annotation = arg.annotation
        if annotation is not None:
            text = ast.dump(annotation)
            if any(name in text for name in annotation_names):
                params.add(arg.arg)
    return params


def _is_literal_iterable(node: ast.AST) -> bool:
    return isinstance(node, (ast.Tuple, ast.List, ast.Set)) and all(
        not isinstance(element, ast.Starred) for element in node.elts
    )


def _walk_same_function(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, _FUNCTIONS):
            stack.extend(ast.iter_child_nodes(child))


def _loop_checkpoints(loop: ast.stmt, params: set[str]) -> bool:
    """Whether the loop's subtree checks or forwards a deadline."""
    for node in _walk_same_function(loop):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("check", "expired")
            and isinstance(func.value, ast.Name)
            and func.value.id in params
        ):
            return True
        for arg in node.args:
            if isinstance(arg, ast.Name) and arg.id in params:
                return True
        for keyword in node.keywords:
            if keyword.arg in params or (
                isinstance(keyword.value, ast.Name)
                and keyword.value.id in params
            ):
                return True
    return False


@register
class DeadlineCheckpointRule(Rule):
    id = "QHL001"
    name = "deadline-checkpoint"
    rationale = (
        "Deadlines are cooperative: a loop that never calls "
        "Deadline.check() (or forwards the deadline) can overrun any "
        "budget, defeating the PR-2 serving guarantee."
    )
    default_options = {
        # Parameters treated as deadlines: by name, or by annotation
        # mentioning one of these type names.
        "param_names": ("deadline", "batch_deadline"),
        "annotation_names": ("Deadline",),
        # Package prefixes this rule runs on; empty = whole tree.
        "packages": (),
    }

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not self.applies_to(module):
            return
        param_names = tuple(self.options["param_names"])
        annotation_names = tuple(self.options["annotation_names"])
        for node in ast.walk(module.tree):
            if not isinstance(node, _FUNCTIONS):
                continue
            params = _deadline_params(node, param_names, annotation_names)
            if not params:
                continue
            for child in _walk_same_function(node):
                if not isinstance(child, _LOOPS):
                    continue
                if isinstance(child, (ast.For, ast.AsyncFor)) and (
                    _is_literal_iterable(child.iter)
                ):
                    continue
                if _loop_checkpoints(child, params):
                    continue
                yield self.finding(
                    module,
                    child,
                    f"loop in deadline-taking function "
                    f"{node.name}() never checks or forwards "
                    f"{'/'.join(sorted(params))} — an expired budget "
                    f"cannot interrupt it",
                )
