"""QHL001: every loop in a deadline-taking function must checkpoint.

The PR-2 serving invariant: a :class:`~repro.service.deadline.Deadline`
threaded into an engine is only worth anything if the engine's loops
actually look at it — a single missed loop turns a 50 ms budget into an
unbounded stall on a pathological query.  The invariant was previously
enforced by reviewer memory across ``core/``, ``baselines/`` and
``perf/``; this rule machine-checks it.

A loop body satisfies the rule when, anywhere in its subtree, it

* calls ``.check(...)`` / ``.expired()`` on the function's deadline
  parameter or on any deadline-named receiver (``self._deadline``, a
  rebound ``remaining_deadline``) — masked variants like ``if pops &
  MASK == 0: deadline.check(stats)`` count, the call just has to be
  reachable inside the iteration; or
* calls a function that **transitively checkpoints** (bounded by
  ``interprocedural_depth`` hops over the call graph) — cooperative
  delegation, now *verified* instead of assumed; or
* forwards the deadline to a callee the call graph cannot resolve
  (an external library, a constructor, a dynamic dispatch) — the old
  blind-credit idiom, kept only where verification is impossible.

Forwarding the deadline to a **resolved project function that never
checks it** is no longer credit — it is its own finding: the deadline
dies in a sink and the loop runs unbudgeted, which is exactly the bug
the blind idiom used to hide.

Loops over literal tuple/list/set displays (``for v_end in (s, t):``)
are exempt: their trip count is a small syntactic constant.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.lint.context import Module
from repro.lint.dataflow import call_name
from repro.lint.findings import Finding
from repro.lint.rules.base import Project, Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import CallGraph, _FunctionScope

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)
_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_CHECK_METHODS = ("check", "expired")


def _deadline_params(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    param_names: tuple[str, ...],
    annotation_names: tuple[str, ...],
) -> set[str]:
    """Parameter names of ``node`` that carry a deadline."""
    params: set[str] = set()
    args = node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if arg.arg in param_names:
            params.add(arg.arg)
            continue
        annotation = arg.annotation
        if annotation is not None:
            text = ast.dump(annotation)
            if any(name in text for name in annotation_names):
                params.add(arg.arg)
    return params


def _is_literal_iterable(node: ast.AST) -> bool:
    return isinstance(node, (ast.Tuple, ast.List, ast.Set)) and all(
        not isinstance(element, ast.Starred) for element in node.elts
    )


def _walk_same_function(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, _FUNCTIONS):
            stack.extend(ast.iter_child_nodes(child))


def _is_direct_check(node: ast.Call, params: set[str]) -> bool:
    """``<deadline>.check()`` / ``.expired()`` on a param or any
    deadline-named receiver chain."""
    func = node.func
    if not (
        isinstance(func, ast.Attribute) and func.attr in _CHECK_METHODS
    ):
        return False
    receiver = call_name(func.value)
    if receiver is None:
        return False
    if receiver in params:
        return True
    return "deadline" in receiver.rpartition(".")[2].lower()


def _checkpointing_functions(
    graph: "CallGraph",
    param_names: tuple[str, ...],
    annotation_names: tuple[str, ...],
    depth: int,
) -> set[str]:
    """Functions that check a deadline, directly or through up to
    ``depth`` call-graph hops."""
    direct: set[str] = set()
    for qname, info in graph.functions.items():
        params = _deadline_params(info.node, param_names, annotation_names)
        for node in _walk_same_function(info.node):
            if isinstance(node, ast.Call) and _is_direct_check(
                node, params
            ):
                direct.add(qname)
                break
    callers: dict[str, set[str]] = {}
    for caller, callees in graph.edges.items():
        for callee in callees:
            callers.setdefault(callee, set()).add(caller)
    known = set(direct)
    frontier = direct
    for _ in range(depth):
        frontier = {
            caller
            for callee in frontier
            for caller in callers.get(callee, ())
            if caller not in known
        }
        if not frontier:
            break
        known |= frontier
    return known


@register
class DeadlineCheckpointRule(Rule):
    id = "QHL001"
    name = "deadline-checkpoint"
    rationale = (
        "Deadlines are cooperative: a loop that never calls "
        "Deadline.check() (or delegates to code that verifiably does) "
        "can overrun any budget, defeating the PR-2 serving guarantee."
    )
    default_options = {
        # Parameters treated as deadlines: by name, or by annotation
        # mentioning one of these type names.
        "param_names": ("deadline", "batch_deadline"),
        "annotation_names": ("Deadline",),
        # How many call-graph hops a checkpoint may sit away from the
        # loop before delegation stops counting.
        "interprocedural_depth": 5,
        # Package prefixes this rule runs on; empty = whole tree.
        "packages": (),
    }

    def check_module(self, module: Module) -> Iterable[Finding]:
        return ()

    def finish(self, project: Project) -> Iterable[Finding]:
        graph = project.graph()
        param_names = tuple(self.options["param_names"])  # type: ignore[arg-type]
        annotation_names = tuple(self.options["annotation_names"])  # type: ignore[arg-type]
        depth = int(self.options["interprocedural_depth"])  # type: ignore[arg-type]
        checkpointing = _checkpointing_functions(
            graph, param_names, annotation_names, depth
        )
        for qname in sorted(graph.functions):
            info = graph.functions[qname]
            if not self.applies_to(info.module):
                continue
            params = _deadline_params(
                info.node, param_names, annotation_names
            )
            if not params:
                continue
            scope = graph.scope_for(info)
            for child in _walk_same_function(info.node):
                if not isinstance(child, _LOOPS):
                    continue
                if isinstance(child, (ast.For, ast.AsyncFor)) and (
                    _is_literal_iterable(child.iter)
                ):
                    continue
                yield from self._loop_findings(
                    graph, scope, info.module, info.node.name, child,
                    params, checkpointing,
                )

    # ------------------------------------------------------------------
    def _loop_findings(
        self,
        graph: "CallGraph",
        scope: "_FunctionScope",
        module: Module,
        func_name: str,
        loop: ast.stmt,
        params: set[str],
        checkpointing: set[str],
    ) -> Iterable[Finding]:
        sinks: set[str] = set()
        blind_credit = False
        for node in _walk_same_function(loop):
            if not isinstance(node, ast.Call):
                continue
            if _is_direct_check(node, params):
                return
            targets = scope.resolve_call(node)
            resolved = [t for t in targets if t in graph.functions]
            if any(t in checkpointing for t in resolved):
                return  # verified delegation
            forwards = any(
                isinstance(arg, ast.Name) and arg.id in params
                for arg in node.args
            ) or any(
                keyword.arg in params
                or (
                    isinstance(keyword.value, ast.Name)
                    and keyword.value.id in params
                )
                for keyword in node.keywords
            )
            if forwards:
                if resolved:
                    sinks.update(
                        graph.functions[t].name for t in resolved
                    )
                else:
                    # Constructor / external / dynamic callee: cannot
                    # verify, keep the old cooperative credit.
                    blind_credit = True
        if blind_credit:
            return
        joined = "/".join(sorted(params))
        if sinks:
            yield self.finding(
                module,
                loop,
                f"loop in {func_name}() forwards {joined} only to "
                f"{', '.join(sorted(sinks))}(), which never checks a "
                f"deadline (transitively) — the deadline dies in a "
                f"sink and cannot interrupt the loop",
            )
        else:
            yield self.finding(
                module,
                loop,
                f"loop in deadline-taking function {func_name}() "
                f"never checks {joined}, and no callee in its body "
                f"transitively checkpoints — an expired budget cannot "
                f"interrupt it",
            )
