"""QHL003: pure algorithm packages stay deterministic.

The reproduction's differential and golden tests (PR 3) rely on the
algorithm packages being bit-reproducible under a seed: every RNG is a
``random.Random(seed)`` instance threaded explicitly, and nothing reads
the wall clock into algorithmic state.  This rule bans, inside the
configured pure packages:

* ``time.time()`` / ``time.time_ns()`` — wall-clock reads (the
  monotonic timing clocks ``perf_counter`` / ``monotonic`` stay legal:
  they feed stats, not algorithm state);
* module-level ``random.<anything>(...)`` — the shared global RNG
  (``random.random()``, ``random.randint()``, ``random.seed()``, ...);
* ``random.Random()`` with no seed argument — an unseeded instance.

``random.Random(seed)`` is the sanctioned pattern.  Intentional
nondeterminism (e.g. retry-backoff jitter) needs an inline
``# lint: allow=QHL003 <why>`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.context import Module
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, register


@register
class DeterminismRule(Rule):
    id = "QHL003"
    name = "determinism"
    rationale = (
        "Differential/golden exactness tests require the algorithm "
        "packages to be bit-reproducible under a seed; a stray global "
        "RNG call or wall-clock read breaks replay silently."
    )
    default_options = {
        "packages": (
            "repro/core/",
            "repro/skyline/",
            "repro/labeling/",
            "repro/hierarchy/",
            "repro/storage/",
            "repro/dynamic/",
        ),
        "wallclock_attrs": ("time", "time_ns"),
    }

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not self.applies_to(module):
            return
        wallclock = tuple(self.options["wallclock_attrs"])
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
            ):
                continue
            owner, attr = func.value.id, func.attr
            if owner == "time" and attr in wallclock:
                yield self.finding(
                    module,
                    node,
                    f"time.{attr}() reads the wall clock in a pure "
                    f"algorithm package; use time.perf_counter()/"
                    f"time.monotonic() for timing stats",
                )
            elif owner == "random" and attr == "Random" and not (
                node.args or node.keywords
            ):
                yield self.finding(
                    module,
                    node,
                    "unseeded random.Random() in a pure algorithm "
                    "package; thread an explicit seed "
                    "(random.Random(seed))",
                )
            elif owner == "random" and attr != "Random":
                yield self.finding(
                    module,
                    node,
                    f"random.{attr}() uses the global RNG in a pure "
                    f"algorithm package; thread a random.Random(seed) "
                    f"instance instead",
                )
