"""QHL008: durable writes go through the atomic/fsync discipline.

PR 8/9 earned crash-safety the hard way: the flat-index save path
writes ``*.tmp`` + ``fsync`` + ``os.replace`` (:func:`_atomic_write_bytes`),
the update journal flushes **and fsyncs the same handle** before an
append is acknowledged, and everything else rides the checksummed
envelope (:func:`save_envelope`).  A later PR that opens a journal or
checkpoint file with a bare ``open(path, "w")`` silently re-introduces
the torn-write windows those PRs closed — and no test catches it until
a crash lands inside the window.

The rule fires on ``open(...)`` calls in write/append mode whose path
expression mentions a durable artifact (``journal`` / ``checkpoint`` /
``manifest`` / ``index`` ... — configurable markers, matched against
string literals *and* identifier names in the path expression):

* **write modes** (``w``/``x``) must sit inside an atomic-writer
  function: the enclosing function itself calls ``os.replace`` *and*
  ``os.fsync`` (the tmp-file discipline), or is one of the blessed
  helpers.
* **append modes** (``a``) must flush-and-fsync the handle they open
  before returning: the enclosing function calls ``<handle>.flush()``
  and ``os.fsync(<handle>.fileno())`` (directly or through a helper
  whose body fsyncs).

Reads are never flagged, and paths without a durable marker are out of
scope — scratch files and reports can be sloppy.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.lint.context import Module
from repro.lint.dataflow import call_name, iter_scope
from repro.lint.findings import Finding
from repro.lint.rules.base import Project, Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import CallGraph

_OPEN_SPELLINGS = frozenset({"open", "io.open", "os.fdopen"})


def _mode_of(call: ast.Call) -> str:
    for keyword in call.keywords:
        if keyword.arg == "mode" and isinstance(
            keyword.value, ast.Constant
        ):
            if isinstance(keyword.value.value, str):
                return keyword.value.value
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        if isinstance(call.args[1].value, str):
            return call.args[1].value
    return "r"


def _path_words(expr: ast.expr) -> Iterator[str]:
    """Every identifier and string fragment in a path expression."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            yield node.value
        elif isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


def _handle_name(module: Module, call: ast.Call) -> str | None:
    """The name the opened handle is bound to, if syntactically
    obvious: ``with open(...) as h`` or ``h = open(...)``."""
    parent_map = _parents(module)
    parent = parent_map.get(id(call))
    if isinstance(parent, ast.withitem):
        if isinstance(parent.optional_vars, ast.Name):
            return parent.optional_vars.id
    if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
        if isinstance(parent.targets[0], ast.Name):
            return parent.targets[0].id
    return None


_PARENT_CACHE: dict[int, dict[int, ast.AST]] = {}


def _parents(module: Module) -> dict[int, ast.AST]:
    cached = _PARENT_CACHE.get(id(module))
    if cached is None:
        cached = {
            id(child): node
            for node in ast.walk(module.tree)
            for child in ast.iter_child_nodes(node)
        }
        _PARENT_CACHE[id(module)] = cached
    return cached


@register
class DurabilityRule(Rule):
    id = "QHL008"
    name = "durability-discipline"
    rationale = (
        "Index, journal, and checkpoint files survive crashes only "
        "because every write goes tmp+fsync+os.replace (or the "
        "checksummed envelope) and every acknowledged append is "
        "flushed and fsynced first; a bare open(path, 'w') reopens "
        "the torn-write window."
    )
    default_options = {
        "packages": (),
        # Substrings that mark a path expression as a durable artifact.
        "path_markers": (
            "journal", "checkpoint", "ckpt", "manifest", "index",
            "baseline", "quarantine",
        ),
        # Functions allowed to write durable paths non-atomically
        # because they *are* the atomic discipline.
        "atomic_helpers": (
            "_atomic_write_bytes", "_atomic_write", "atomic_write",
            "save_envelope",
        ),
    }

    def check_module(self, module: Module) -> Iterable[Finding]:
        return ()

    def finish(self, project: Project) -> Iterable[Finding]:
        graph = project.graph()
        for module in project.modules:
            if not self.applies_to(module):
                continue
            yield from self._check_module(graph, module)
        _PARENT_CACHE.clear()

    # ------------------------------------------------------------------
    def _check_module(
        self, graph: "CallGraph", module: Module
    ) -> Iterable[Finding]:
        markers = tuple(
            str(m).lower() for m in self.options["path_markers"]  # type: ignore[union-attr]
        )
        helpers = frozenset(
            str(h) for h in self.options["atomic_helpers"]  # type: ignore[union-attr]
        )
        resolver = graph.resolver_for(module)
        for qname, scope_node in graph.scopes_of(module):
            func_name = qname.rpartition(".")[2]
            if func_name in helpers:
                continue
            body_calls = [
                node
                for node in _scope_walk(scope_node)
                if isinstance(node, ast.Call)
            ]
            opens = [
                call
                for call in body_calls
                if self._is_open(resolver, call)
            ]
            if not opens:
                continue
            for call in opens:
                mode = _mode_of(call)
                if not any(flag in mode for flag in "wax+"):
                    continue
                path_expr = self._path_arg(call)
                if path_expr is None:
                    continue
                words = " ".join(_path_words(path_expr)).lower()
                if not any(marker in words for marker in markers):
                    continue
                if "a" in mode:
                    yield from self._check_append(
                        graph, module, qname, call, body_calls
                    )
                else:
                    if self._is_atomic_writer(resolver, body_calls):
                        continue
                    yield self.finding(
                        module,
                        call,
                        f"durable path opened with mode {mode!r} "
                        f"outside the atomic write discipline — write "
                        f"to a tmp file and fsync+os.replace (use "
                        f"{'/'.join(sorted(helpers))}) or the "
                        f"checksummed envelope",
                    )

    def _path_arg(self, call: ast.Call) -> ast.expr | None:
        for keyword in call.keywords:
            if keyword.arg == "file":
                return keyword.value
        return call.args[0] if call.args else None

    def _is_open(self, resolver: object, call: ast.Call) -> bool:
        name = call_name(call.func)
        if name is None:
            return False
        resolved: str = resolver.resolve_dotted(name)  # type: ignore[attr-defined]
        return resolved in _OPEN_SPELLINGS

    def _is_atomic_writer(
        self, resolver: object, body_calls: list[ast.Call]
    ) -> bool:
        saw_replace = saw_fsync = False
        for call in body_calls:
            name = call_name(call.func)
            if name is None:
                continue
            base = name.rpartition(".")[2]
            if base == "replace" and name.startswith("os."):
                saw_replace = True
            elif base == "rename" and name.startswith("os."):
                saw_replace = True
            elif base == "fsync":
                saw_fsync = True
        return saw_replace and saw_fsync

    def _check_append(
        self,
        graph: "CallGraph",
        module: Module,
        qname: str,
        call: ast.Call,
        body_calls: list[ast.Call],
    ) -> Iterable[Finding]:
        handle = _handle_name(module, call)
        if handle is None:
            yield self.finding(
                module,
                call,
                "durable append handle is not bound to a name — the "
                "flush+fsync acknowledgement discipline cannot be "
                "verified; bind it (with open(...) as handle) and "
                "fsync before acknowledging",
            )
            return
        saw_flush = saw_fsync = False
        for other in body_calls:
            name = call_name(other.func)
            if name is None:
                continue
            if name == f"{handle}.flush":
                saw_flush = True
                continue
            base = name.rpartition(".")[2]
            if base == "fsync" and self._fsync_hits_handle(other, handle):
                saw_fsync = True
                continue
            # A helper taking the handle counts when its body fsyncs.
            if self._helper_fsyncs(graph, module, name, other, handle):
                saw_flush = saw_fsync = True
        if not (saw_flush and saw_fsync):
            missing = []
            if not saw_flush:
                missing.append(f"{handle}.flush()")
            if not saw_fsync:
                missing.append(f"os.fsync({handle}.fileno())")
            yield self.finding(
                module,
                call,
                f"durable append to {handle!r} is acknowledged "
                f"without {' and '.join(missing)} on the same handle "
                f"— a crash after return can lose the record the "
                f"caller believes is persisted",
            )

    def _fsync_hits_handle(self, call: ast.Call, handle: str) -> bool:
        for arg in call.args:
            if isinstance(arg, ast.Name) and arg.id == handle:
                return True
            if isinstance(arg, ast.Call):
                inner = call_name(arg.func)
                if inner == f"{handle}.fileno":
                    return True
        return False

    def _helper_fsyncs(
        self,
        graph: "CallGraph",
        module: Module,
        name: str,
        call: ast.Call,
        handle: str,
    ) -> bool:
        takes_handle = any(
            isinstance(arg, ast.Name) and arg.id == handle
            for arg in call.args
        ) or any(
            isinstance(kw.value, ast.Name) and kw.value.id == handle
            for kw in call.keywords
        )
        if not takes_handle:
            return False
        resolved = graph.resolver_for(module).resolve_dotted(name)
        info = graph.functions.get(resolved)
        if info is None:
            return False
        for node in iter_scope(info.node):
            if isinstance(node, ast.Call):
                inner = call_name(node.func)
                if inner is not None and inner.rpartition(".")[2] == (
                    "fsync"
                ):
                    return True
        return False


def _scope_walk(scope_node: ast.AST) -> Iterator[ast.AST]:
    from repro.lint.graph import iter_module_scope

    if isinstance(scope_node, ast.Module):
        return iter_module_scope(scope_node)
    return iter_scope(scope_node)
