"""QHL002: library code raises ReproError subclasses; no silent catch-alls.

The PR-2 contract: callers catch one type — :class:`~repro.exceptions.
ReproError` — at the service boundary.  Every deliberate ``raise`` of a
foreign builtin (``RuntimeError``, ``OSError``, bare ``Exception``)
punches a hole in that contract, and every ``except:`` /
``except Exception`` that swallows without re-raising can hide a real
engine bug behind a degraded-but-green answer.

Sanctioned raises:

* any class transitively derived from ``ReproError`` (the hierarchy is
  recovered statically from every linted module plus the declared
  ``exceptions.py``, so new subclasses anywhere are recognised);
* builtin *argument/programming* errors — ``ValueError``,
  ``TypeError``, ``KeyError``, ``IndexError``, ``NotImplementedError``,
  ``AssertionError`` — which signal caller bugs, not library failures;
* re-raises (``raise`` / ``raise exc``) and raises of non-class
  expressions the rule cannot resolve (factories, attributes).

Sanctioned handlers: a bare/broad handler whose body contains any
``raise`` (plain re-raise or a typed conversion like
``raise ReproError(...) from exc``).  Deliberate record-and-continue
catch-alls (the degradation ladder, the audit) must carry an inline
``# lint: allow=QHL002 <why>`` pragma.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterable

from repro.lint.context import Module
from repro.lint.findings import Finding
from repro.lint.rules.base import Project, Rule, register

_BUILTIN_EXCEPTIONS = frozenset(
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)


def _base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _exception_name(node: ast.expr) -> str | None:
    """The class name a ``raise`` statement names, if resolvable."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    return None


def _handler_names(node: ast.expr | None) -> list[str]:
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        return [name for e in node.elts for name in _handler_names(e)]
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    return []


@register
class ExceptionTaxonomyRule(Rule):
    id = "QHL002"
    name = "exception-taxonomy"
    rationale = (
        "Callers catch ReproError at the boundary; foreign raises "
        "escape that contract and broad silent excepts hide engine "
        "bugs behind degraded answers."
    )
    default_options = {
        "root_exception": "ReproError",
        # Module (package-relative) whose classes seed the hierarchy
        # even when it is outside the linted paths.
        "taxonomy_module": "repro/exceptions.py",
        "sanctioned_builtins": (
            "ValueError",
            "TypeError",
            "KeyError",
            "IndexError",
            "NotImplementedError",
            "AssertionError",
        ),
        "packages": (),
    }

    def __init__(self, options: dict[str, object] | None = None) -> None:
        super().__init__(options)
        self._edges: dict[str, list[str]] = {}
        self._raises: list[tuple[Module, ast.Raise, str]] = []

    # ------------------------------------------------------------------
    def check_module(self, module: Module) -> Iterable[Finding]:
        if not self.applies_to(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                self._edges.setdefault(node.name, []).extend(
                    _base_names(node)
                )
            elif isinstance(node, ast.Raise):
                if node.exc is None:
                    continue  # bare re-raise
                name = _exception_name(node.exc)
                if name is not None:
                    self._raises.append((module, node, name))
            elif isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(module, node)

    def _check_handler(
        self, module: Module, node: ast.ExceptHandler
    ) -> Iterable[Finding]:
        names = _handler_names(node.type)
        broad = node.type is None or any(
            name in ("Exception", "BaseException") for name in names
        )
        if not broad:
            return
        reraises = any(
            isinstance(child, ast.Raise) for child in ast.walk(node)
        )
        if reraises:
            return
        what = "bare except:" if node.type is None else (
            f"except {'/'.join(names)}"
        )
        yield self.finding(
            module,
            node,
            f"{what} swallows without re-raising; catch a ReproError "
            f"subclass, convert (`raise ... from exc`), or justify "
            f"with `# lint: allow=QHL002 <why>`",
        )

    # ------------------------------------------------------------------
    def _repro_error_set(self, project: Project) -> set[str]:
        """Names of known ReproError descendants, by static fixpoint."""
        edges = {k: list(v) for k, v in self._edges.items()}
        taxonomy = project.find_module(
            str(self.options["taxonomy_module"])
        )
        if taxonomy is None:
            import os

            path = os.path.join(
                project.root, "src", str(self.options["taxonomy_module"])
            )
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    tree = ast.parse(handle.read())
                for node in ast.walk(tree):
                    if isinstance(node, ast.ClassDef):
                        edges.setdefault(node.name, []).extend(
                            _base_names(node)
                        )
            except (OSError, SyntaxError):
                pass
        known = {str(self.options["root_exception"])}
        changed = True
        while changed:
            changed = False
            for name, bases in edges.items():
                if name not in known and any(b in known for b in bases):
                    known.add(name)
                    changed = True
        return known

    def finish(self, project: Project) -> Iterable[Finding]:
        sanctioned = set(self.options["sanctioned_builtins"])
        repro_errors = self._repro_error_set(project)
        for module, node, name in self._raises:
            if name in repro_errors or name in sanctioned:
                continue
            if name not in _BUILTIN_EXCEPTIONS:
                # Unresolvable or third-party name: benefit of the
                # doubt (e.g. re-raising a captured variable).
                continue
            yield self.finding(
                module,
                node,
                f"raise {name}: library code raises ReproError "
                f"subclasses (or builtin argument errors: "
                f"{', '.join(sorted(sanctioned))})",
            )
        # Findings must come out deterministically even though raises
        # were collected across modules; runner sorts globally.
