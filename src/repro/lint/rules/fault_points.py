"""QHL005: fault-injection point names must be registered.

The chaos harness (:mod:`repro.service.faults`) validates point names
on :meth:`FaultInjector.fail` at *runtime* — a test scheduling a fault
at a misspelled point fails loudly.  But :meth:`fire` call sites in
production code are never validated: a typo'd ``fire("lable-fetch")``
silently fires a point no chaos test can ever target, and the
fault-injection coverage quietly shrinks.  This rule closes that gap
statically: every literal point name passed to ``fire(...)`` /
``fail(...)`` / the ``_fire_fault(...)`` helpers must appear in the
declared ``INJECTION_POINTS`` tuple.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.context import Module
from repro.lint.findings import Finding
from repro.lint.rules.base import (
    Project,
    Rule,
    load_declared_names,
    register,
)


def _point_literal(node: ast.Call, methods: tuple[str, ...],
                   helpers: tuple[str, ...]) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr not in methods:
            return None
    elif isinstance(func, ast.Name):
        if func.id not in helpers:
            return None
    else:
        return None
    if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
        node.args[0].value, str
    ):
        return node.args[0].value
    return None


@register
class FaultPointRegistryRule(Rule):
    id = "QHL005"
    name = "fault-point-registry"
    rationale = (
        "fire() sites are not validated at runtime; a typo'd point "
        "name silently removes that site from chaos-test coverage."
    )
    default_options = {
        "registry_module": "repro/service/faults.py",
        "registry_targets": ("INJECTION_POINTS",),
        "methods": ("fire", "fail"),
        "helpers": ("_fire_fault", "fire_fault"),
        "packages": (),
    }

    def __init__(self, options: dict[str, object] | None = None) -> None:
        super().__init__(options)
        self._calls: list[tuple[Module, ast.Call, str]] = []

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not self.applies_to(module):
            return ()
        methods = tuple(self.options["methods"])
        helpers = tuple(self.options["helpers"])
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                point = _point_literal(node, methods, helpers)
                if point is not None:
                    self._calls.append((module, node, point))
        return ()

    def finish(self, project: Project) -> Iterable[Finding]:
        declared, registry_rel = load_declared_names(
            project,
            str(self.options["registry_module"]),
            tuple(self.options["registry_targets"]),
        )
        for module, node, point in self._calls:
            if point not in declared:
                yield self.finding(
                    module,
                    node,
                    f"fault point {point!r} is not registered in "
                    f"{registry_rel} INJECTION_POINTS; chaos tests "
                    f"cannot target it",
                )
