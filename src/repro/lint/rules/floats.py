"""QHL006: no raw ``==`` / ``!=`` on weight/cost values in skyline code.

QHL's exactness proof (paper §3) rides on skyline dominance and
canonical ordering; both reduce to weight/cost comparisons.  Metrics
may be floats, and an ad-hoc equality scattered through a dominance
loop is where an accumulated-rounding bug would silently drop an
optimal path.  The comparison *policy* is therefore centralised in the
sanctioned helpers of :mod:`repro.skyline.compare` — the only module
allowed to spell the comparison out — and this rule flags every other
equality whose operand is recognisably a weight/cost:

* a name or attribute containing ``weight`` or ``cost``
  (``last_cost``, ``best_weight``, ``entry.cost``, ...);
* the pervasive entry-pair projection ``(e[0], e[1])`` — a 2-tuple of
  constant subscripts 0 and 1 is how ``(weight, cost)`` is spelled in
  this codebase's hot loops.

Ordering comparisons (``<`` / ``<=`` / ...) stay legal: they are what
dominance *is*, and an epsilon there would break exactness outright.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.context import Module
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, register


def _is_weight_cost_operand(node: ast.expr, markers: tuple[str, ...]) -> bool:
    if isinstance(node, ast.Name):
        lowered = node.id.lower()
        return any(marker in lowered for marker in markers)
    if isinstance(node, ast.Attribute):
        lowered = node.attr.lower()
        return any(marker in lowered for marker in markers)
    if isinstance(node, ast.Tuple) and len(node.elts) == 2:
        indices = []
        for element in node.elts:
            if not (
                isinstance(element, ast.Subscript)
                and isinstance(element.slice, ast.Constant)
                and isinstance(element.slice.value, int)
            ):
                return False
            indices.append(element.slice.value)
        return indices == [0, 1]
    return False


@register
class FloatEqualityRule(Rule):
    id = "QHL006"
    name = "float-equality"
    rationale = (
        "Skyline dominance/canonicality must compare weights and "
        "costs through one policy (repro.skyline.compare); a raw == "
        "in a hot loop is where a float-drift exactness bug hides."
    )
    default_options = {
        "packages": ("repro/skyline/", "repro/core/"),
        # The one module allowed to spell out the comparison.
        "sanctioned_modules": ("repro/skyline/compare.py",),
        "markers": ("weight", "cost"),
    }

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not self.applies_to(module):
            return
        if module.package_rel in tuple(self.options["sanctioned_modules"]):
            return
        markers = tuple(self.options["markers"])
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(
                node.ops, operands, operands[1:]
            , strict=False):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_weight_cost_operand(left, markers) or (
                    _is_weight_cost_operand(right, markers)
                ):
                    yield self.finding(
                        module,
                        node,
                        "raw == / != on weight/cost values; route "
                        "through repro.skyline.compare "
                        "(weights_equal/costs_equal/pairs_equal)",
                    )
                    break
