"""QHL007: no live handles captured across ``fork``.

The PR-7/PR-8 process model forks workers (``SupervisedPool`` /
``Supervisor`` / the ``ProcessPoolExecutor`` batch path) and relies on
a convention the old per-module linter could not see: a forked child
inherits the parent's open file descriptors, lock states, and mmap
handles *by value of the underlying kernel object*, so an entrypoint
that quietly uses a module-level ``open(...)`` handle shares a file
offset with the parent (interleaved torn writes), a captured
``threading.Lock`` can be inherited mid-acquisition (instant deadlock —
fork only clones the acquiring thread), and captured
``Deadline``/``FaultInjector`` state makes a child judge time and
faults by a clock the parent armed.

This rule walks the call graph from every *fork entrypoint* (any
function handed to a spawn API, including ``functools.partial`` and
``"pkg.mod:func"`` string spellings) and flags, in every function
reachable from one:

* reads of module-level names bound to ``open(...)``, ``threading``
  synchronisation primitives, ``mmap.mmap(...)``, ``Deadline(...)`` or
  ``FaultInjector(...)`` — unless the function (or the child side in
  general) re-binds the name before use;
* the same capture through an enclosing function's locals (closures);
* resource-valued parameter defaults (evaluated once, in the parent).

The sanctioned patterns stay quiet: passing *paths* and re-opening in
the child, the ``_WORKER_ENGINE`` module-global handoff (an object
reference, not a kernel handle), and the read-only mmap columns that
are re-derived via ``load_flat_index`` inside the child.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.lint.context import Module
from repro.lint.dataflow import call_name, iter_scope, scope_bindings
from repro.lint.findings import Finding
from repro.lint.rules.base import Project, Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import CallGraph, FunctionInfo

_LOCK_CTORS = frozenset({
    "Lock", "RLock", "Condition", "Event", "Semaphore",
    "BoundedSemaphore", "Barrier",
})


def classify_resource(
    resolver: object, expr: ast.expr | None
) -> str | None:
    """What fork-unsafe resource an expression constructs, if any.

    ``resolver`` is the call graph's per-module resolver (duck-typed:
    only ``resolve_dotted`` is used).
    """
    if not isinstance(expr, ast.Call):
        return None
    name = call_name(expr.func)
    if name is None:
        return None
    resolved: str = resolver.resolve_dotted(name)  # type: ignore[attr-defined]
    base = resolved.rpartition(".")[2]
    head = resolved.split(".")[0]
    if resolved in ("open", "io.open", "os.fdopen", "gzip.open"):
        return "open file handle"
    if base in _LOCK_CTORS and (
        head in ("threading", "multiprocessing") or resolved == base
    ):
        return "threading synchronisation primitive"
    if resolved in ("mmap.mmap",) or (base == "mmap" and head == "mmap"):
        return "mmap handle"
    if base == "Deadline":
        return "live Deadline"
    if base == "FaultInjector":
        return "live FaultInjector"
    return None


@register
class ForkSafetyRule(Rule):
    id = "QHL007"
    name = "fork-safety"
    rationale = (
        "A forked worker inherits parent file offsets, lock states, "
        "and armed Deadline/FaultInjector clocks; an entrypoint using "
        "a captured handle corrupts shared state instead of re-opening "
        "its own."
    )
    default_options = {
        # Package prefixes the *reachable functions* must live in for
        # their captures to be reported; empty = everywhere.
        "packages": (),
    }

    def check_module(self, module: Module) -> Iterable[Finding]:
        return ()

    def finish(self, project: Project) -> Iterable[Finding]:
        graph = project.graph()
        entries = graph.fork_entries()
        if not entries:
            return
        # Which entrypoints reach each function (for the message).
        origins: dict[str, set[str]] = {}
        for entry in sorted(entries):
            for qname in graph.reachable_from({entry}):
                origins.setdefault(qname, set()).add(
                    entry.rpartition(".")[2]
                )

        for qname in sorted(origins):
            info = graph.functions.get(qname)
            if info is None or not self.applies_to(info.module):
                continue
            via = "/".join(sorted(origins[qname]))
            yield from self._check_function(graph, info, via)

    # ------------------------------------------------------------------
    def _check_function(
        self, graph: "CallGraph", info: "FunctionInfo", via: str
    ) -> Iterable[Finding]:
        module = info.module
        resolver = graph.resolver_for(module)

        captured: dict[str, tuple[str, str]] = {}  # name -> (kind, where)
        for name, bindings in scope_bindings(module.tree).items():
            for binding in bindings:
                kind = classify_resource(resolver, binding.value)
                if kind is not None:
                    captured.setdefault(name, (kind, "module scope"))
        # Closure captures: resource locals of every enclosing function.
        outer = info.qname
        while ".<locals>." in outer:
            outer = outer.rsplit(".<locals>.", 1)[0]
            parent = graph.functions.get(outer)
            if parent is None:
                continue
            for name, bindings in scope_bindings(parent.node).items():
                for binding in bindings:
                    kind = classify_resource(resolver, binding.value)
                    if kind is not None:
                        captured.setdefault(
                            name, (kind, f"enclosing {parent.name}()")
                        )

        local = scope_bindings(info.node)
        rebound = {
            name
            for name, bindings in local.items()
            if any(not b.is_param or b.is_default for b in bindings)
        }

        # Parameter defaults are evaluated once, in the parent.
        for name, bindings in local.items():
            for binding in bindings:
                if not binding.is_default:
                    continue
                kind = classify_resource(resolver, binding.value)
                if kind is not None:
                    yield self.finding(
                        module,
                        binding.lineno,
                        f"{info.name}() is reachable from fork "
                        f"entrypoint {via} but binds a {kind} as the "
                        f"default of parameter {name!r} — defaults are "
                        f"evaluated once in the parent and shared "
                        f"across every forked child",
                    )

        reported: set[str] = set()
        for node in iter_scope(info.node):
            if not (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
            ):
                continue
            name = node.id
            if name in reported or name not in captured:
                continue
            if name in rebound:
                continue  # re-opened inside the child
            kind, where = captured[name]
            reported.add(name)
            yield self.finding(
                module,
                node,
                f"{info.name}() is reachable from fork entrypoint "
                f"{via} but uses {name!r}, a {kind} captured from "
                f"{where} — a forked child shares the parent's kernel "
                f"object; re-open it inside the child (or pass a path)",
            )
