"""QHL009: published epochs and flat buffers are immutable.

The PR-8/PR-9 concurrency story rests on one invariant: once an
:class:`Epoch` is published (or a :class:`FlatLabelStore` is built /
mmap-loaded), nothing mutates it — readers pin an epoch and dereference
its columns with no locks, and forked workers share the mmap pages
copy-on-write.  A single ``epoch.labels[v] = ...`` or
``store._offsets.extend(...)`` after publication is a data race with
every concurrent reader and a silent divergence between parent and
child address spaces.

The rule tracks names bound to protected values — parameters and
attributes annotated/typed as the protected classes (a value received
from elsewhere is presumed published; the constructing function owns
what it builds), ``memoryview(...)`` / ``.cast(...)`` views, and the
blessed loader factories — and flags:

* stores into their attributes (``epoch.x = ...``), subscripts
  (``view[i] = ...``, ``epoch.labels[v] = ...``) and ``del``;
* calls to mutating container methods on them or their attributes
  (``store.offsets.append(...)``);
* **interprocedurally**: passing a protected value into a helper whose
  parameter is mutated by any of the above (to a fixpoint over the
  call graph), so laundering the mutation through a function does not
  dodge the rule.

Methods *of* the protected classes themselves are exempt for ``self``
— construction has to mutate; the invariant binds everyone holding a
reference after publication.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.lint.context import Module
from repro.lint.dataflow import call_name, iter_scope, scope_bindings
from repro.lint.findings import Finding
from repro.lint.rules.base import Project, Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import CallGraph, FunctionInfo


@register
class EpochImmutabilityRule(Rule):
    id = "QHL009"
    name = "epoch-immutability"
    rationale = (
        "Published Epoch / FlatLabelStore objects and mmap-backed "
        "memoryviews are read concurrently without locks and shared "
        "copy-on-write across forks; any post-publication store is a "
        "data race."
    )
    default_options = {
        "packages": (),
        # Class basenames whose instances are immutable once held.
        "protected_classes": ("Epoch", "FlatLabelStore"),
        # Factory basenames returning protected values.
        "protected_factories": ("load_flat_index", "memoryview"),
        # Container methods that mutate in place.  ``discard`` is
        # deliberately absent: ``Epoch.discard()`` is the sanctioned
        # end-of-life release (documented mmap-safe), not a mutation
        # of served state.
        "mutators": (
            "append", "extend", "insert", "remove", "pop", "clear",
            "sort", "reverse", "update", "setdefault", "add",
            "release",
        ),
        # Fixpoint iterations for the param-mutation summaries.
        "max_passes": 8,
    }

    def check_module(self, module: Module) -> Iterable[Finding]:
        return ()

    def finish(self, project: Project) -> Iterable[Finding]:
        graph = project.graph()
        protected = tuple(self.options["protected_classes"])  # type: ignore[arg-type]
        mutated = self._param_mutation_summaries(graph)
        for qname in sorted(graph.functions):
            info = graph.functions[qname]
            if not self.applies_to(info.module):
                continue
            yield from self._check_function(
                graph, info, protected, mutated
            )

    # -- what counts as protected ---------------------------------------
    def _is_protected_type(
        self, protected: tuple[str, ...], cls_qname: str | None
    ) -> bool:
        if cls_qname is None:
            return False
        base = cls_qname.rpartition(".")[2]
        return base in protected or base == "memoryview"

    def _protected_locals(
        self,
        graph: "CallGraph",
        info: "FunctionInfo",
        protected: tuple[str, ...],
    ) -> dict[str, str]:
        """Local/param names holding protected values -> reason."""
        from repro.lint.graph import annotation_type

        resolver = graph.resolver_for(info.module)
        factories = tuple(self.options["protected_factories"])  # type: ignore[arg-type]
        out: dict[str, str] = {}
        for name, bindings in scope_bindings(info.node).items():
            for binding in bindings:
                ann_type = annotation_type(resolver, binding.annotation)
                if self._is_protected_type(protected, ann_type):
                    out.setdefault(
                        name, ann_type.rpartition(".")[2]  # type: ignore[union-attr]
                    )
                    continue
                # Constructor calls are *not* protected here: the
                # function that builds an Epoch/FlatLabelStore owns it
                # until publication, and construction has to populate.
                # Protection attaches to values received from
                # elsewhere (annotations, self state) and to shared
                # views (memoryview / .cast / the mmap loaders).
                value = binding.value
                if not isinstance(value, ast.Call):
                    continue
                callee = call_name(value.func)
                if callee is None:
                    continue
                base = callee.rpartition(".")[2]
                if base in factories:
                    out.setdefault(name, base)
                    continue
                resolved = resolver.resolve_dotted(callee)
                rbase = resolved.rpartition(".")[2]
                if rbase == "cast" and "." in callee:
                    # ``view.cast("I")`` keeps the buffer protected
                    # when the receiver is (heuristically) a view.
                    out.setdefault(name, "memoryview")
        return out

    # -- interprocedural summaries --------------------------------------
    def _param_mutation_summaries(
        self, graph: "CallGraph"
    ) -> dict[str, set[str]]:
        """qname -> names of parameters the function mutates (directly
        or by passing them to another mutating function)."""
        summaries: dict[str, set[str]] = {}
        for qname, info in graph.functions.items():
            params = set(info.param_names()) - {"self", "cls"}
            direct: set[str] = set()
            for root, _node in self._mutation_sites(info, params):
                direct.add(root)
            summaries[qname] = direct
        max_passes = int(self.options["max_passes"])  # type: ignore[arg-type]
        for _ in range(max_passes):
            changed = False
            for qname, info in graph.functions.items():
                params = set(info.param_names()) - {"self", "cls"}
                if not params:
                    continue
                scope = graph.scope_for(info)
                for node in iter_scope(info.node):
                    if not isinstance(node, ast.Call):
                        continue
                    for callee in scope.resolve_call(node):
                        callee_info = graph.functions.get(callee)
                        if callee_info is None:
                            continue
                        hit = summaries.get(callee, set())
                        if not hit:
                            continue
                        for arg_name, param in self._arg_param_pairs(
                            node, callee_info
                        ):
                            if (
                                param in hit
                                and arg_name in params
                                and arg_name not in summaries[qname]
                            ):
                                summaries[qname].add(arg_name)
                                changed = True
            if not changed:
                break
        return summaries

    def _arg_param_pairs(
        self, call: ast.Call, callee: "FunctionInfo"
    ) -> Iterable[tuple[str, str]]:
        positional = callee.positional_params()
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Name) and index < len(positional):
                yield arg.id, positional[index]
        for keyword in call.keywords:
            if keyword.arg is not None and isinstance(
                keyword.value, ast.Name
            ):
                yield keyword.value.id, keyword.arg

    # -- mutation-site detection ----------------------------------------
    def _mutation_sites(
        self, info: "FunctionInfo", roots: set[str]
    ) -> Iterable[tuple[str, ast.AST]]:
        """(root name, node) for every in-place mutation whose receiver
        chain starts at a name in ``roots``."""
        mutators = frozenset(self.options["mutators"])  # type: ignore[arg-type]

        def root_of(expr: ast.expr) -> str | None:
            current = expr
            while isinstance(current, (ast.Attribute, ast.Subscript)):
                current = current.value
            if isinstance(current, ast.Name) and current.id in roots:
                return current.id
            return None

        for node in iter_scope(info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        root = root_of(target)
                        if root is not None:
                            yield root, node
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        root = root_of(target)
                        if root is not None:
                            yield root, node
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in mutators:
                    root = root_of(node.func.value)
                    if root is not None:
                        yield root, node

    # -- per-function check ---------------------------------------------
    def _check_function(
        self,
        graph: "CallGraph",
        info: "FunctionInfo",
        protected: tuple[str, ...],
        mutated: dict[str, set[str]],
    ) -> Iterable[Finding]:
        inside_protected = (
            info.class_qname is not None
            and info.class_qname.rpartition(".")[2] in protected
        )
        locals_ = self._protected_locals(graph, info, protected)
        scope = graph.scope_for(info)

        # self.<attr> receivers typed as protected classes count too —
        # unless we *are* the protected class managing itself.
        def protected_reason(expr: ast.expr) -> str | None:
            current = expr
            chain: list[str] = []
            while isinstance(current, (ast.Attribute, ast.Subscript)):
                if isinstance(current, ast.Attribute):
                    chain.append(current.attr)
                current = current.value
            if isinstance(current, ast.Name):
                if current.id in locals_:
                    return locals_[current.id]
                if current.id in ("self", "cls"):
                    if inside_protected:
                        return None
                    for depth in range(len(chain), 0, -1):
                        prefix = ast.Attribute(
                            value=ast.Name(id="self", ctx=ast.Load()),
                            attr=chain[depth - 1],
                            ctx=ast.Load(),
                        )
                        cls_qname = scope.type_of_value(prefix)
                        if self._is_protected_type(protected, cls_qname):
                            return cls_qname.rpartition(".")[2]  # type: ignore[union-attr]
            return None

        roots = set(locals_) | {"self"}
        for root, node in self._mutation_sites(info, roots):
            target = _mutation_receiver(node)
            if target is None:
                continue
            reason = protected_reason(target)
            if reason is None:
                continue
            verb = (
                "calls a mutating method on"
                if isinstance(node, ast.Call)
                else "stores into"
            )
            yield self.finding(
                info.module,
                node,
                f"{info.name}() {verb} a published {reason} — epochs, "
                f"flat label stores, and mmap-backed views are "
                f"immutable after publication (readers and forked "
                f"workers share them without locks); build a new "
                f"epoch instead",
            )

        # Interprocedural: protected value handed to a mutating helper.
        for node in iter_scope(info.node):
            if not isinstance(node, ast.Call):
                continue
            for callee in scope.resolve_call(node):
                callee_info = graph.functions.get(callee)
                if callee_info is None:
                    continue
                hit = mutated.get(callee, set())
                if not hit:
                    continue
                for arg_name, param in self._arg_param_pairs(
                    node, callee_info
                ):
                    if param not in hit or arg_name not in locals_:
                        continue
                    yield self.finding(
                        info.module,
                        node,
                        f"{info.name}() passes a published "
                        f"{locals_[arg_name]} to "
                        f"{callee_info.name}(), which mutates its "
                        f"{param!r} parameter — laundering the store "
                        f"through a helper is still a post-publication "
                        f"mutation",
                    )


def _mutation_receiver(node: ast.AST) -> ast.expr | None:
    """The receiver expression of a mutation site from
    :meth:`_mutation_sites`."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                return target.value
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                return target.value
    elif isinstance(node, ast.Call) and isinstance(
        node.func, ast.Attribute
    ):
        return node.func.value
    return None
