"""QHL004: metric names in code and the declared registry must agree.

PRs 1-4 accumulated ~44 metric names declared implicitly at their
instrumentation sites; ``docs/observability.md`` drifted behind twice
(the ``build_*`` checkpoint metrics and ``qhl_workload_phase_seconds``
were never documented anywhere).  The registry
:mod:`repro.observability.names` is now the single source of truth and
this rule cross-checks it against the code **both ways**:

* every string literal passed to a ``counter()`` / ``gauge()`` /
  ``histogram()`` factory (or a ``Counter``/``Gauge``/``Histogram``
  constructor) must be a declared name — an unregistered emission is a
  typo or an undeclared metric;
* every declared name must be emitted somewhere in the linted code —
  a dead registry entry is docs/code drift in the other direction.

Names built dynamically (f-strings, variables) cannot be checked at the
call site; the common repo idiom — a tuple of literal names fed through
a loop variable — is still credited as usage, because any full-string
literal matching a metric prefix counts as an emission.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.lint.context import Module
from repro.lint.findings import Finding
from repro.lint.rules.base import (
    Project,
    Rule,
    load_declared_names,
    register,
)

_FACTORY_METHODS = ("counter", "gauge", "histogram")
_FACTORY_CLASSES = ("Counter", "Gauge", "Histogram")


def _call_metric_name(node: ast.Call) -> str | None:
    """The literal metric name of a factory/constructor call, if any."""
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr not in _FACTORY_METHODS:
            return None
    elif isinstance(func, ast.Name):
        if func.id not in _FACTORY_CLASSES:
            return None
    else:
        return None
    name_arg: ast.expr | None = node.args[0] if node.args else None
    if name_arg is None:
        for keyword in node.keywords:
            if keyword.arg == "name":
                name_arg = keyword.value
    if isinstance(name_arg, ast.Constant) and isinstance(
        name_arg.value, str
    ):
        return name_arg.value
    return None


@register
class MetricNameRegistryRule(Rule):
    id = "QHL004"
    name = "metric-name-registry"
    rationale = (
        "Undeclared metric emissions and dead registry entries are the "
        "two directions of docs/code drift; the declared registry in "
        "repro.observability.names is the single source of truth."
    )
    default_options = {
        "registry_module": "repro/observability/names.py",
        "registry_targets": ("METRICS", "METRIC_NAMES"),
        # Full-string literals with these prefixes count as emissions
        # even outside factory calls (the tuple-of-names idiom).
        "prefixes": (
            "qhl_", "service_", "ingest_", "audit_", "build_",
            "supervisor_",
        ),
        "packages": (),
    }

    def __init__(self, options: dict[str, object] | None = None) -> None:
        super().__init__(options)
        self._used: set[str] = set()
        self._calls: list[tuple[Module, ast.Call, str]] = []
        prefixes = "|".join(
            re.escape(p.rstrip("_"))
            for p in self.default_options["prefixes"]
        )
        self._literal = re.compile(rf"^({prefixes})_[a-z0-9_]+$")

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not self.applies_to(module):
            return ()
        if module.package_rel == str(self.options["registry_module"]):
            return ()  # the registry's own keys are not emissions
        prefixes = tuple(self.options["prefixes"])
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = _call_metric_name(node)
                if name is not None:
                    self._used.add(name)
                    self._calls.append((module, node, name))
            elif (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value.startswith(prefixes)
                and self._literal.match(node.value)
            ):
                self._used.add(node.value)
        return ()

    def finish(self, project: Project) -> Iterable[Finding]:
        declared, registry_rel = load_declared_names(
            project,
            str(self.options["registry_module"]),
            tuple(self.options["registry_targets"]),
        )
        for module, node, name in self._calls:
            if name not in declared:
                yield self.finding(
                    module,
                    node,
                    f"metric {name!r} is not declared in "
                    f"{registry_rel}; declare it (or fix the typo)",
                )
        registry_module = project.find_module(registry_rel)
        if registry_module is None or project.partial:
            # The registry file is outside the linted paths (or the run
            # covers only changed files), so the scan cannot claim
            # completeness: skip the unused-entry direction (a partial
            # lint of one module must not flag every metric that module
            # happens not to emit).
            return
        for name, lineno in sorted(declared.items()):
            if name not in self._used:
                finding = Finding(
                    rule=self.id,
                    path=registry_rel,
                    line=lineno,
                    col=0,
                    message=(
                        f"metric {name!r} is declared but never "
                        f"emitted by the linted code; remove it or "
                        f"instrument the emission"
                    ),
                    snippet=(
                        registry_module.line_text(lineno)
                        if registry_module is not None
                        else name
                    ),
                )
                yield finding
