"""QHL000: inline suppressions must still suppress something.

Pragmas rot in the opposite direction from findings: the code under a
``# lint: allow=QHL001 reason`` gets refactored, the violation
disappears — and the pragma stays, silently pre-authorising the *next*
violation anyone writes on that line.  After this PR's interprocedural
upgrades, several pragmas written for the old, dumber rules may no
longer suppress anything; this rule makes that drift a finding instead
of an archaeology project.

A pragma is **stale** when the rule it names ran in this invocation and
produced no finding on the pragma's line.  Pragmas naming a rule that
did not run (``--select`` of a subset) are left alone — absence of a
finding proves nothing there.  A pragma naming a rule id that does not
exist at all is always reported: it suppresses nothing under any
configuration.

The detection lives in the runner (which owns suppression matching);
this class exists so QHL000 appears in ``--list-rules``, is valid in
``--select``/``--ignore``, and documents the contract.  A stale-pragma
finding can itself be suppressed with ``# lint: allow=QHL000 reason`` —
the escape hatch for pragmas kept deliberately (documentation
fixtures, in-progress refactors).
"""

from __future__ import annotations

from repro.lint.rules.base import Rule, register


@register
class StalePragmaRule(Rule):
    id = "QHL000"
    name = "stale-pragma"
    rationale = (
        "A pragma that no longer suppresses a live finding "
        "pre-authorises the next violation written on its line; "
        "suppressions must be re-justified when the code they excuse "
        "goes away."
    )
    default_options: dict[str, object] = {}
