"""QHL010: registered telemetry must be fired from *reachable* code.

QHL004/QHL005 cross-check names against their registries, but both are
blind to a subtler drift: an emission site that exists in the tree yet
can never execute.  A metric emitted only from a function nothing calls
is dead telemetry — dashboards chart a flat line, chaos tests target a
fault point no production path fires, and the incident taxonomy
advertises kinds no incident will ever carry.  This PR's call graph
makes the reachability question answerable, so this rule asks it:

* every declared **metric** must have at least one emission site inside
  code reachable from the public surface (module import time plus every
  public function);
* every declared **fault point** must be fired (``fire``/``fail``/the
  ``_fire_fault`` helpers) from reachable code — and fired at all;
* every declared **incident kind** must be recorded
  (``IncidentLog.new(kind=...)``) from reachable code — and at all.

Zero-emission *metrics* stay QHL004's finding (this rule would
duplicate it); for fault points and incident kinds the zero-emission
case is new coverage and is reported here.

The rule needs the whole program to say anything meaningful, so it
skips entirely on partial (``--changed``) runs and when a registry file
is outside the linted set.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.lint.context import Module
from repro.lint.findings import Finding
from repro.lint.rules.base import (
    Project,
    Rule,
    load_declared_names,
    register,
)
from repro.lint.rules.fault_points import _point_literal
from repro.lint.rules.metrics import _call_metric_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import CallGraph

#: (category, qname-of-emitting-scope, module, line)
_Emission = tuple[str, Module, int]


def _incident_kind(
    node: ast.Call, methods: tuple[str, ...]
) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr not in methods:
            return None
    elif isinstance(func, ast.Name):
        if func.id not in methods:
            return None
    else:
        return None
    kind: ast.expr | None = node.args[0] if node.args else None
    for keyword in node.keywords:
        if keyword.arg == "kind":
            kind = keyword.value
    if isinstance(kind, ast.Constant) and isinstance(kind.value, str):
        return kind.value
    return None


@register
class RegistryReachabilityRule(Rule):
    id = "QHL010"
    name = "registry-reachability"
    rationale = (
        "A metric, fault point, or incident kind whose only emission "
        "sites are unreachable is dead telemetry: dashboards, chaos "
        "tests, and the incident taxonomy all advertise behaviour the "
        "program can never exhibit."
    )
    default_options = {
        "packages": (),
        "metric_registry": "repro/observability/names.py",
        "metric_targets": ("METRICS", "METRIC_NAMES"),
        "fault_registry": "repro/service/faults.py",
        "fault_targets": ("INJECTION_POINTS",),
        "fault_methods": ("fire", "fail"),
        "fault_helpers": ("_fire_fault", "fire_fault"),
        "incident_registry": "repro/supervise/incidents.py",
        "incident_targets": ("INCIDENT_KINDS",),
        "incident_methods": ("new", "_incident", "incident"),
    }

    def check_module(self, module: Module) -> Iterable[Finding]:
        return ()

    def finish(self, project: Project) -> Iterable[Finding]:
        if project.partial:
            return
        graph = project.graph()
        reachable = graph.reachable()
        emissions = self._collect_emissions(project, graph)
        categories = (
            ("metric", "metric_registry", "metric_targets", False),
            ("fault point", "fault_registry", "fault_targets", True),
            ("incident kind", "incident_registry", "incident_targets",
             True),
        )
        for label, registry_key, targets_key, report_zero in categories:
            registry_rel = str(self.options[registry_key])
            registry_module = project.find_module(registry_rel)
            if registry_module is None:
                continue  # cannot claim whole-program coverage
            declared, rel = load_declared_names(
                project, registry_rel, tuple(self.options[targets_key])  # type: ignore[arg-type]
            )
            for name, lineno in sorted(declared.items()):
                sites = emissions.get((label, name), [])
                if not sites:
                    if report_zero:
                        yield Finding(
                            rule=self.id,
                            path=rel,
                            line=lineno,
                            col=0,
                            message=(
                                f"{label} {name!r} is registered but "
                                f"never fired anywhere in the linted "
                                f"code — dead taxonomy entry; remove "
                                f"it or wire up the emission"
                            ),
                            snippet=registry_module.line_text(lineno),
                        )
                    continue
                live = [s for s in sites if s[0] in reachable]
                if live:
                    continue
                example, module, line = sites[0]
                yield Finding(
                    rule=self.id,
                    path=rel,
                    line=lineno,
                    col=0,
                    message=(
                        f"{label} {name!r} is registered but every "
                        f"emission site is unreachable from the public "
                        f"surface (e.g. {example} at {module.rel}:"
                        f"{line}) — dead telemetry; delete the dead "
                        f"code path or the registry entry"
                    ),
                    snippet=registry_module.line_text(lineno),
                )

    # ------------------------------------------------------------------
    def _collect_emissions(
        self, project: Project, graph: "CallGraph"
    ) -> dict[tuple[str, str], list[tuple[str, Module, int]]]:
        from repro.lint.graph import iter_module_scope
        from repro.lint.dataflow import iter_scope

        fault_methods = tuple(self.options["fault_methods"])  # type: ignore[arg-type]
        fault_helpers = tuple(self.options["fault_helpers"])  # type: ignore[arg-type]
        incident_methods = tuple(self.options["incident_methods"])  # type: ignore[arg-type]
        # Only the metric registry needs excluding from its own scan:
        # its declarations are bare literals a factory call could sit
        # next to.  Fault/incident emissions are call-shaped, so the
        # registry tuples can never read as emissions — and faults.py
        # legitimately hosts fire() wrappers of its own.
        metric_registry = str(self.options["metric_registry"])

        out: dict[tuple[str, str], list[tuple[str, Module, int]]] = {}

        def record(
            label: str, name: str, qname: str, module: Module, line: int
        ) -> None:
            out.setdefault((label, name), []).append(
                (qname, module, line)
            )

        for module in project.modules:
            for qname, scope_node in graph.scopes_of(module):
                walker: Iterator[ast.AST] = (
                    iter_module_scope(scope_node)
                    if isinstance(scope_node, ast.Module)
                    else iter_scope(scope_node)
                )
                for node in walker:
                    if not isinstance(node, ast.Call):
                        continue
                    if module.package_rel != metric_registry:
                        metric = _call_metric_name(node)
                        if metric is not None:
                            record(
                                "metric", metric, qname, module,
                                node.lineno,
                            )
                    point = _point_literal(
                        node, fault_methods, fault_helpers
                    )
                    if point is not None:
                        record(
                            "fault point", point, qname, module,
                            node.lineno,
                        )
                    kind = _incident_kind(node, incident_methods)
                    if kind is not None:
                        record(
                            "incident kind", kind, qname, module,
                            node.lineno,
                        )
        return out
