"""The lint driver: collect files, run rules, apply suppressions."""

from __future__ import annotations

import os

from repro.exceptions import LintConfigError
from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig
from repro.lint.context import Module
from repro.lint.findings import (
    Finding,
    LintError,
    LintResult,
    assign_fingerprints,
)
from repro.lint.rules import Project, Rule, all_rules


def collect_files(paths: list[str], root: str) -> list[str]:
    """Python files under ``paths`` (absolute), sorted for determinism."""
    files: set[str] = set()
    for path in paths:
        absolute = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(absolute):
            files.add(os.path.abspath(absolute))
        elif os.path.isdir(absolute):
            for dirpath, dirnames, filenames in os.walk(absolute):
                dirnames[:] = [
                    d for d in dirnames
                    if d != "__pycache__" and not d.startswith(".")
                ]
                for filename in filenames:
                    if filename.endswith(".py"):
                        files.add(
                            os.path.abspath(os.path.join(dirpath, filename))
                        )
        else:
            raise LintConfigError(f"no such file or directory: {path!r}")
    return sorted(files)


def _relative(path: str, root: str) -> str:
    try:
        rel = os.path.relpath(path, root)
    except ValueError:  # pragma: no cover - different drive on Windows
        rel = path
    return rel.replace(os.sep, "/")


def _stale_pragma_findings(
    project: Project,
    rules: list[Rule],
    inline_suppressed: list[Finding],
) -> list[Finding]:
    """QHL000: pragmas that suppressed nothing this run.

    Only rules that actually *ran* can prove a pragma stale — a
    ``--select`` subset proves nothing about the others.  Pragmas
    naming a rule id that is not registered at all are always stale:
    they can never suppress anything.
    """
    executed = {rule.id for rule in rules}
    known = set(all_rules())
    used = {(f.path, f.line, f.rule) for f in inline_suppressed}
    findings: list[Finding] = []
    for module in project.modules:
        for line in sorted(module.suppressions):
            for rule_id in sorted(module.suppressions[line]):
                if rule_id == "QHL000":
                    continue
                if rule_id not in known:
                    message = (
                        f"pragma allows unknown rule {rule_id!r} — it "
                        f"can never suppress anything; fix the id or "
                        f"delete the pragma"
                    )
                elif rule_id in executed and (
                    (module.rel, line, rule_id) not in used
                ):
                    message = (
                        f"stale pragma: {rule_id} no longer fires on "
                        f"this line — the suppression pre-authorises "
                        f"the next violation; delete it (or re-justify "
                        f"with an allow=QHL000 pragma)"
                    )
                else:
                    continue
                findings.append(Finding(
                    rule="QHL000",
                    path=module.rel,
                    line=line,
                    col=0,
                    message=message,
                    snippet=module.line_text(line),
                ))
    return findings


def run_lint(
    paths: list[str],
    config: LintConfig | None = None,
    root: str | None = None,
    baseline: Baseline | None = None,
    partial: bool = False,
) -> LintResult:
    """Lint ``paths`` and return the partitioned result.

    Pipeline: parse every file -> per-module rule passes -> project
    passes (registry cross-checks, call-graph rules) -> inline-pragma
    suppression -> stale-pragma findings -> fingerprinting -> baseline
    split.

    ``partial`` marks runs that cover only a slice of the tree
    (``--changed``): whole-program rules skip their completeness
    claims instead of guessing.
    """
    root = os.path.abspath(root or os.getcwd())
    config = config or LintConfig()
    result = LintResult()

    project = Project(root=root, partial=partial)
    result.project = project
    for path in collect_files(paths, root):
        rel = _relative(path, root)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            project.modules.append(Module.parse(path, rel, source))
        except (OSError, SyntaxError, ValueError) as exc:
            result.errors.append(LintError(path=rel, message=str(exc)))
    result.files_checked = len(project.modules)

    rules = [
        rule_cls(config.options_for(rule_id))
        for rule_id, rule_cls in all_rules().items()
        if config.enabled(rule_id)
    ]

    raw: list[Finding] = []
    for module in project.modules:
        for rule in rules:
            raw.extend(rule.check_module(module))
    for rule in rules:
        raw.extend(rule.finish(project))

    modules_by_rel = {module.rel: module for module in project.modules}
    kept: list[Finding] = []
    for finding in raw:
        module = modules_by_rel.get(finding.path)
        if module is not None and module.suppressed(
            finding.line, finding.rule
        ):
            result.inline_suppressed.append(finding)
        else:
            kept.append(finding)

    if config.enabled("QHL000"):
        for finding in _stale_pragma_findings(
            project, rules, result.inline_suppressed
        ):
            module = modules_by_rel.get(finding.path)
            if module is not None and module.suppressed(
                finding.line, "QHL000"
            ):
                result.inline_suppressed.append(finding)
            else:
                kept.append(finding)

    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    assign_fingerprints(kept)
    assign_fingerprints(result.inline_suppressed)

    if baseline is not None:
        new, baselined, stale = baseline.split(kept)
        result.findings = new
        result.baselined = baselined
        result.stale_baseline = stale
    else:
        result.findings = kept
    return result
