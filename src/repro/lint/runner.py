"""The lint driver: collect files, run rules, apply suppressions."""

from __future__ import annotations

import os

from repro.exceptions import LintConfigError
from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig
from repro.lint.context import Module
from repro.lint.findings import (
    Finding,
    LintError,
    LintResult,
    assign_fingerprints,
)
from repro.lint.rules import Project, all_rules


def collect_files(paths: list[str], root: str) -> list[str]:
    """Python files under ``paths`` (absolute), sorted for determinism."""
    files: set[str] = set()
    for path in paths:
        absolute = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(absolute):
            files.add(os.path.abspath(absolute))
        elif os.path.isdir(absolute):
            for dirpath, dirnames, filenames in os.walk(absolute):
                dirnames[:] = [
                    d for d in dirnames
                    if d != "__pycache__" and not d.startswith(".")
                ]
                for filename in filenames:
                    if filename.endswith(".py"):
                        files.add(
                            os.path.abspath(os.path.join(dirpath, filename))
                        )
        else:
            raise LintConfigError(f"no such file or directory: {path!r}")
    return sorted(files)


def _relative(path: str, root: str) -> str:
    try:
        rel = os.path.relpath(path, root)
    except ValueError:  # pragma: no cover - different drive on Windows
        rel = path
    return rel.replace(os.sep, "/")


def run_lint(
    paths: list[str],
    config: LintConfig | None = None,
    root: str | None = None,
    baseline: Baseline | None = None,
) -> LintResult:
    """Lint ``paths`` and return the partitioned result.

    Pipeline: parse every file -> per-module rule passes -> project
    passes (registry cross-checks) -> inline-pragma suppression ->
    fingerprinting -> baseline split.
    """
    root = os.path.abspath(root or os.getcwd())
    config = config or LintConfig()
    result = LintResult()

    project = Project(root=root)
    for path in collect_files(paths, root):
        rel = _relative(path, root)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            project.modules.append(Module.parse(path, rel, source))
        except (OSError, SyntaxError, ValueError) as exc:
            result.errors.append(LintError(path=rel, message=str(exc)))
    result.files_checked = len(project.modules)

    rules = [
        rule_cls(config.options_for(rule_id))
        for rule_id, rule_cls in all_rules().items()
        if config.enabled(rule_id)
    ]

    raw: list[Finding] = []
    for module in project.modules:
        for rule in rules:
            raw.extend(rule.check_module(module))
    for rule in rules:
        raw.extend(rule.finish(project))

    modules_by_rel = {module.rel: module for module in project.modules}
    kept: list[Finding] = []
    for finding in raw:
        module = modules_by_rel.get(finding.path)
        if module is not None and module.suppressed(
            finding.line, finding.rule
        ):
            result.inline_suppressed.append(finding)
        else:
            kept.append(finding)

    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    assign_fingerprints(kept)
    assign_fingerprints(result.inline_suppressed)

    if baseline is not None:
        new, baselined, stale = baseline.split(kept)
        result.findings = new
        result.baselined = baselined
        result.stale_baseline = stale
    else:
        result.findings = kept
    return result
