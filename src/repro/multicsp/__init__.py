"""Multi-constraint CSP extension: 2-hop Pareto labels over one weight
and k constrained cost metrics."""

from repro.multicsp.engine import (
    MultiCSPEngine,
    MultiCSPIndex,
    multi_dijkstra_reference,
)
from repro.multicsp.index import (
    MultiLabelStore,
    build_multi_labels,
    build_multi_tree,
)
from repro.multicsp.network import MultiMetricNetwork

__all__ = [
    "MultiCSPEngine",
    "MultiCSPIndex",
    "MultiLabelStore",
    "MultiMetricNetwork",
    "build_multi_labels",
    "build_multi_tree",
    "multi_dijkstra_reference",
]
