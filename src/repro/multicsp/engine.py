"""Multi-constraint CSP query engine over the multi-label index.

Algorithm 2 generalised: per hoplink, scan the product of the two
Pareto fronts under all budgets.  QHL's separator initialisation still
applies (it is purely structural), and the engine uses it; the
two-pointer sweep and the (v_end, C) pruning conditions are 2-metric
constructions and do not.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.separators import initial_separators
from repro.hierarchy.lca import LCAIndex
from repro.hierarchy.tree import TreeDecomposition
from repro.multicsp.index import (
    MultiLabelStore,
    build_multi_labels,
    build_multi_tree,
)
from repro.multicsp.network import MultiMetricNetwork
from repro.skyline.multi import MultiEntry, m_best_under


class MultiCSPEngine:
    """Exact multi-constraint CSP queries over 2-hop multi labels."""

    name = "MCSP-2Hop"

    def __init__(
        self,
        tree: TreeDecomposition,
        labels: MultiLabelStore,
        lca: LCAIndex | None = None,
        use_small_separators: bool = True,
    ):
        self._tree = tree
        self._labels = labels
        self._lca = lca if lca is not None else LCAIndex(tree)
        self.use_small_separators = use_small_separators

    def query(
        self, source: int, target: int, budgets: Sequence[float]
    ) -> tuple[float, tuple[float, ...]] | None:
        """Minimum-weight path meeting every budget, or ``None``.

        ``budgets[i]`` constrains the i-th cost metric.
        """
        if len(budgets) != self._labels.num_costs:
            raise ValueError(
                f"{len(budgets)} budgets for "
                f"{self._labels.num_costs} cost metrics"
            )
        k = self._labels.num_costs
        if source == target:
            return (0, (0,) * k)
        lca, s_is_anc, t_is_anc = self._lca.relation(source, target)
        if s_is_anc or t_is_anc:
            return m_best_under(self._labels.get(source, target), budgets)

        if self.use_small_separators:
            _c_s, h_s, _c_t, h_t = initial_separators(
                self._tree, lca, source, target
            )
            label_s = self._labels.label(source)
            label_t = self._labels.label(target)

            def estimated(separator):
                return sum(
                    len(label_s[h]) + len(label_t[h]) for h in separator
                )

            hoplinks = min((h_s, h_t), key=estimated)
        else:
            hoplinks = self._tree.bag_with_self(lca)

        best: MultiEntry | None = None
        label_s = self._labels.label(source)
        label_t = self._labels.label(target)
        for h in hoplinks:
            for w1, costs1 in label_s[h]:
                for w2, costs2 in label_t[h]:
                    total_costs = tuple(
                        a + b for a, b in zip(costs1, costs2, strict=True)
                    )
                    if any(
                        c > budget
                        for c, budget in zip(total_costs, budgets, strict=True)
                    ):
                        continue
                    candidate = (w1 + w2, total_costs)
                    if best is None or candidate < best:
                        best = candidate
        return best


class MultiCSPIndex:
    """Facade: build the multi-constraint index and query it."""

    def __init__(self, network, tree, labels, lca):
        self.network = network
        self.tree = tree
        self.labels = labels
        self.lca = lca
        self._engine = MultiCSPEngine(tree, labels, lca)

    @classmethod
    def build(cls, network: MultiMetricNetwork) -> "MultiCSPIndex":
        tree, shortcuts = build_multi_tree(network)
        labels = build_multi_labels(tree, shortcuts, network.num_costs)
        lca = LCAIndex(tree)
        return cls(network, tree, labels, lca)

    def query(self, source, target, budgets):
        return self._engine.query(source, target, budgets)

    def engine(self, **flags) -> MultiCSPEngine:
        return MultiCSPEngine(self.tree, self.labels, self.lca, **flags)


def multi_dijkstra_reference(
    network: MultiMetricNetwork,
    source: int,
    target: int,
    budgets: Sequence[float],
) -> tuple[float, tuple[float, ...]] | None:
    """Ground truth: label-setting search directly on the multi network."""
    import heapq

    if source == target:
        return (0, (0,) * network.num_costs)
    frontier: list[list[tuple[float, tuple[float, ...]]]] = [
        [] for _ in range(network.num_vertices)
    ]

    def dominated(v, w, costs):
        return any(
            fw <= w and all(
                fc <= c for fc, c in zip(fcosts, costs, strict=True)
            )
            for fw, fcosts in frontier[v]
        )

    def insert(v, w, costs):
        frontier[v] = [
            (fw, fcosts)
            for fw, fcosts in frontier[v]
            if not (w <= fw and all(
                c <= fc for c, fc in zip(costs, fcosts, strict=True)
            ))
        ]
        frontier[v].append((w, costs))

    rng_free_heap: list[tuple[float, tuple[float, ...], int]] = [
        (0, (0,) * network.num_costs, source)
    ]
    while rng_free_heap:
        w, costs, v = heapq.heappop(rng_free_heap)
        if v == target:
            return (w, costs)
        if dominated(v, w, costs) and (w, costs) not in frontier[v]:
            continue
        for nbr, ew, ecosts in network.neighbors(v):
            nw = w + ew
            ncosts = tuple(c + ec for c, ec in zip(costs, ecosts, strict=True))
            if any(nc > b for nc, b in zip(ncosts, budgets, strict=True)):
                continue
            if dominated(nbr, nw, ncosts):
                continue
            insert(nbr, nw, ncosts)
            heapq.heappush(rng_free_heap, (nw, ncosts, nbr))
    return None
