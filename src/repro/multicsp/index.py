"""Multi-constraint 2-hop labels (the CSP-2Hop multi-constraint mode).

Same elimination/label skeleton as the 2-metric build, over the general
Pareto algebra of :mod:`repro.skyline.multi`: shortcut sets and labels
are Pareto fronts of ``(weight, cost-vector)`` entries.  With ``k >= 2``
the front is no longer a cost-sorted chain, so the canonical-list
optimisations (binary search, two-pointer) do not apply — matching the
paper's framing that multi-constraint support comes from CSP-2Hop's
machinery, not from QHL's query-aware tricks.
"""

from __future__ import annotations

import heapq
import time

from repro.exceptions import DisconnectedGraphError, IndexBuildError
from repro.hierarchy.tree import TreeDecomposition
from repro.multicsp.network import MultiMetricNetwork
from repro.skyline.multi import MultiEntry, m_join, m_skyline


class MultiLabelStore:
    """Labels ``L(v) = {u: Pareto front of (w, costs)}``."""

    def __init__(self, num_vertices: int, num_costs: int):
        self.num_vertices = num_vertices
        self.num_costs = num_costs
        self._labels: list[dict[int, list[MultiEntry]]] = [
            dict() for _ in range(num_vertices)
        ]
        self.build_seconds = 0.0
        self._zero = [(0, (0,) * num_costs)]

    def set(self, v: int, u: int, front: list[MultiEntry]) -> None:
        self._labels[v][u] = front

    def label(self, v: int) -> dict[int, list[MultiEntry]]:
        return self._labels[v]

    def get(self, x: int, y: int) -> list[MultiEntry]:
        if x == y:
            return self._zero
        front = self._labels[x].get(y)
        if front is not None:
            return front
        front = self._labels[y].get(x)
        if front is not None:
            return front
        raise IndexBuildError(f"no label covers the pair ({x}, {y})")

    def num_entries(self) -> int:
        return sum(
            len(front)
            for label in self._labels
            for front in label.values()
        )


def build_multi_tree(
    network: MultiMetricNetwork,
) -> tuple[TreeDecomposition, dict[int, dict[int, list[MultiEntry]]]]:
    """Min-degree elimination with Pareto-front shortcuts."""
    if not network.is_connected():
        raise DisconnectedGraphError("network must be connected")
    started = time.perf_counter()
    n = network.num_vertices

    adjacency: list[dict[int, list[MultiEntry]]] = [
        dict() for _ in range(n)
    ]
    for u, v, w, costs in network.edges():
        entry = (w, costs)
        existing = adjacency[u].get(v, [])
        front = m_skyline(existing + [entry])
        adjacency[u][v] = front
        adjacency[v][u] = front

    eliminated = bytearray(n)
    order: list[int] = []
    bag: dict[int, tuple[int, ...]] = {}
    shortcuts: dict[int, dict[int, list[MultiEntry]]] = {}
    heap = [(len(adjacency[v]), v) for v in range(n)]
    heapq.heapify(heap)

    for _ in range(n):
        while True:
            degree, v = heapq.heappop(heap)
            if eliminated[v]:
                continue
            if degree != len(adjacency[v]):
                heapq.heappush(heap, (len(adjacency[v]), v))
                continue
            break
        eliminated[v] = 1
        order.append(v)
        neighbours = sorted(adjacency[v])
        shortcuts[v] = {w: adjacency[v][w] for w in neighbours}
        for w in neighbours:
            del adjacency[w][v]
        for i, a in enumerate(neighbours):
            s_av = shortcuts[v][a]
            for b in neighbours[i + 1:]:
                through = m_join(s_av, shortcuts[v][b])
                combined = m_skyline(adjacency[a].get(b, []) + through)
                adjacency[a][b] = combined
                adjacency[b][a] = combined
        for w in neighbours:
            heapq.heappush(heap, (len(adjacency[w]), w))
        bag[v] = tuple(neighbours)

    position = {v: i for i, v in enumerate(order)}
    sorted_bags = {
        v: tuple(sorted(members, key=position.__getitem__))
        for v, members in bag.items()
    }
    tree = TreeDecomposition(
        n, order, sorted_bags, {},
        build_seconds=time.perf_counter() - started,
    )
    return tree, shortcuts


def build_multi_labels(
    tree: TreeDecomposition,
    shortcuts: dict[int, dict[int, list[MultiEntry]]],
    num_costs: int,
) -> MultiLabelStore:
    """Top-down multi-constraint label construction."""
    started = time.perf_counter()
    store = MultiLabelStore(tree.num_vertices, num_costs)

    for v in tree.topdown_order:
        if v == tree.root:
            continue
        hubs = tree.bag[v]
        shortcut_v = shortcuts[v]
        for u in tree.ancestors(v):
            acc: list[MultiEntry] = []
            for w in hubs:
                s_vw = shortcut_v[w]
                if w == u:
                    part = s_vw
                else:
                    part = m_join(s_vw, store.get(w, u))
                acc = m_skyline(acc + part)
            store.set(v, u, acc)

    store.build_seconds = time.perf_counter() - started
    return store
