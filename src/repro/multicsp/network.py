"""Multi-metric road networks: one weight, ``k >= 1`` constrained costs.

Supports the paper's multi-constraint CSP setting (§1: "multiple
constraints"; §6.2: CSP-2Hop "can also handle the case where multiple
constraints are imposed on the shortest path").
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import InvalidGraphError
from repro.graph.network import RoadNetwork

MultiEdge = tuple[int, int, float, tuple[float, ...]]
"""``(u, v, weight, costs)`` with ``costs`` a tuple of k metrics."""


class MultiMetricNetwork:
    """An undirected graph whose edges carry (weight, cost-vector)."""

    __slots__ = ("_n", "_k", "_adj", "_edges")

    def __init__(self, num_vertices: int, num_costs: int):
        if num_vertices <= 0:
            raise InvalidGraphError("need at least one vertex")
        if num_costs < 1:
            raise InvalidGraphError("need at least one cost metric")
        self._n = num_vertices
        self._k = num_costs
        self._adj: list[list[tuple[int, float, tuple[float, ...]]]] = [
            [] for _ in range(num_vertices)
        ]
        self._edges: list[MultiEdge] = []

    # ------------------------------------------------------------------
    def add_edge(
        self, u: int, v: int, weight: float, costs: Sequence[float]
    ) -> None:
        for x in (u, v):
            if not 0 <= x < self._n:
                raise InvalidGraphError(f"vertex {x} out of range")
        if u == v:
            raise InvalidGraphError(f"self loop at {u}")
        costs = tuple(costs)
        if len(costs) != self._k:
            raise InvalidGraphError(
                f"expected {self._k} costs, got {len(costs)}"
            )
        if weight <= 0 or any(c <= 0 for c in costs):
            raise InvalidGraphError("metrics must be strictly positive")
        self._adj[u].append((v, weight, costs))
        self._adj[v].append((u, weight, costs))
        self._edges.append((u, v, weight, costs))

    @classmethod
    def from_network(
        cls,
        network: RoadNetwork,
        extra_costs: Sequence[Sequence[float]] = (),
    ) -> "MultiMetricNetwork":
        """Lift a 2-metric network; ``extra_costs[j][i]`` is the j-th
        additional cost of the i-th edge (insertion order)."""
        for extra in extra_costs:
            if len(extra) != network.num_edges:
                raise InvalidGraphError(
                    "extra cost array length must match the edge count"
                )
        multi = cls(network.num_vertices, 1 + len(extra_costs))
        for idx, (u, v, w, c) in enumerate(network.edges()):
            costs = (c,) + tuple(extra[idx] for extra in extra_costs)
            multi.add_edge(u, v, w, costs)
        return multi

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_costs(self) -> int:
        return self._k

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def edges(self) -> Iterable[MultiEdge]:
        return iter(self._edges)

    def neighbors(self, v: int):
        return self._adj[v]

    def underlying_network(self) -> RoadNetwork:
        """The (weight, first-cost) projection, for structure reuse."""
        network = RoadNetwork(self._n)
        for u, v, w, costs in self._edges:
            network.add_edge(u, v, w, costs[0])
        return network

    def is_connected(self) -> bool:
        seen = bytearray(self._n)
        stack = [0]
        seen[0] = 1
        count = 1
        while stack:
            v = stack.pop()
            for nbr, _w, _c in self._adj[v]:
                if not seen[nbr]:
                    seen[nbr] = 1
                    count += 1
                    stack.append(nbr)
        return count == self._n

    def path_metrics(
        self, path: Sequence[int]
    ) -> tuple[float, tuple[float, ...]]:
        """``(w, costs)`` of a concrete vertex path."""
        total_w = 0.0
        total_c = [0.0] * self._k
        for u, v in zip(path, path[1:], strict=False):
            options = [
                (w, costs) for nbr, w, costs in self._adj[u] if nbr == v
            ]
            if not options:
                raise InvalidGraphError(f"({u}, {v}) is not an edge")
            w, costs = min(options)
            total_w += w
            for i, c in enumerate(costs):
                total_c[i] += c
        return total_w, tuple(total_c)
