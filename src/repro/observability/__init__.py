"""Observability: metrics registry, span tracing, exporters.

The always-available instrumentation layer the ROADMAP's production
goal needs: engines and builders report into a swappable
:class:`MetricsRegistry` and :class:`SpanTracer`, both of which default
to no-ops so the query hot path pays (almost) nothing until a caller
opts in.  See ``docs/observability.md`` for the full tour.
"""

from repro.observability.export import (
    metric_to_dict,
    parse_jsonl,
    render_table,
    render_trace,
    snapshot,
    span_to_dict,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    observe_query,
    set_registry,
    use_registry,
)
from repro.observability.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanTracer,
    get_tracer,
    set_tracer,
    use_tracer,
    walk,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "Span",
    "SpanTracer",
    "get_registry",
    "get_tracer",
    "metric_to_dict",
    "observe_query",
    "parse_jsonl",
    "render_table",
    "render_trace",
    "set_registry",
    "set_tracer",
    "snapshot",
    "span_to_dict",
    "to_jsonl",
    "to_prometheus",
    "use_registry",
    "use_tracer",
    "walk",
    "write_jsonl",
]
