"""Observability: metrics registry, span tracing, exporters.

The always-available instrumentation layer the ROADMAP's production
goal needs: engines and builders report into a swappable
:class:`MetricsRegistry` and :class:`SpanTracer`, both of which default
to no-ops so the query hot path pays (almost) nothing until a caller
opts in.  PR 6 extends the layer across process boundaries
(:mod:`~repro.observability.propagation`) and adds the query flight
recorder (:mod:`~repro.observability.flight`).  See
``docs/observability.md`` for the full tour.
"""

from repro.observability.export import (
    merge_record,
    merge_records,
    metric_from_dict,
    metric_to_dict,
    parse_jsonl,
    registry_from_records,
    render_table,
    render_trace,
    snapshot,
    span_from_dict,
    span_to_dict,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)
from repro.observability.flight import (
    NULL_FLIGHT_RECORDER,
    FlightRecord,
    FlightRecorder,
    NullFlightRecorder,
    get_flight_recorder,
    load_flight,
    set_flight_recorder,
    use_flight_recorder,
)
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    observe_query,
    set_registry,
    use_registry,
)
from repro.observability.propagation import (
    StitchResult,
    TraceContext,
    WorkerSpool,
    new_trace_id,
    stitch,
)
from repro.observability.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanTracer,
    get_tracer,
    set_tracer,
    use_tracer,
    walk,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "NULL_FLIGHT_RECORDER",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Counter",
    "FlightRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullFlightRecorder",
    "NullRegistry",
    "NullTracer",
    "Span",
    "SpanTracer",
    "StitchResult",
    "TraceContext",
    "WorkerSpool",
    "get_flight_recorder",
    "get_registry",
    "get_tracer",
    "load_flight",
    "merge_record",
    "merge_records",
    "metric_from_dict",
    "metric_to_dict",
    "new_trace_id",
    "observe_query",
    "parse_jsonl",
    "registry_from_records",
    "render_table",
    "render_trace",
    "set_flight_recorder",
    "set_registry",
    "set_tracer",
    "snapshot",
    "span_from_dict",
    "span_to_dict",
    "stitch",
    "to_jsonl",
    "to_prometheus",
    "use_flight_recorder",
    "use_registry",
    "use_tracer",
    "walk",
    "write_jsonl",
]
