"""Exporters: JSON-lines, Prometheus text exposition, and tables.

Three consumers, three formats:

* :func:`to_jsonl` / :func:`write_jsonl` — one JSON object per metric,
  for offline analysis of a run (the CLI's ``--metrics-out``);
  :func:`parse_jsonl` round-trips it.
* :func:`to_prometheus` — the Prometheus text exposition format
  (``# TYPE`` headers, cumulative ``_bucket{le=...}`` samples), so a
  scrape endpoint needs nothing beyond serving this string.
* :func:`render_table` and :func:`render_trace` — human-readable views
  for terminals: a metric table and an indented span tree.

Snapshots are also the wire format between processes: a worker
serialises its registry with :func:`snapshot` and the parent folds the
records back in with :func:`merge_records` (counters add, gauges take
the incoming value, histograms add bucket-wise), so a fan-out run ends
with one registry covering both sides of the fork.
:func:`metric_from_dict` / :func:`registry_from_records` rebuild live
metrics from records, and :func:`span_from_dict` is the inverse of
:func:`span_to_dict` for trace stitching.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
)
from repro.observability.tracing import Span

PERCENTILES = (50, 90, 95, 99)


# ----------------------------------------------------------------------
# Snapshots and JSON-lines
# ----------------------------------------------------------------------
def metric_to_dict(metric: Metric) -> dict:
    """A plain-data snapshot of one metric."""
    record: dict = {
        "type": metric.kind,
        "name": metric.name,
        "labels": dict(metric.labels),
        "help": metric.help,
    }
    if isinstance(metric, Histogram):
        record["count"] = metric.count
        record["sum"] = metric.sum
        record["min"] = metric.min if metric.count else None
        record["max"] = metric.max if metric.count else None
        record["buckets"] = [
            {"le": bound, "count": count}
            for bound, count in zip(metric.bounds, metric.counts, strict=False)
        ]
        record["buckets"].append(
            {"le": "+Inf", "count": metric.counts[-1]}
        )
        record["percentiles"] = {
            f"p{q}": metric.percentile(q) for q in PERCENTILES
        }
    else:
        record["value"] = metric.value
    return record


def snapshot(registry) -> list[dict]:
    """Snapshot every metric of ``registry`` as plain dicts."""
    return [metric_to_dict(metric) for metric in registry.metrics()]


def to_jsonl(registry) -> str:
    """One JSON object per line, one line per metric."""
    return "\n".join(
        json.dumps(record, sort_keys=True) for record in snapshot(registry)
    )


def write_jsonl(registry, path) -> int:
    """Write :func:`to_jsonl` output to ``path``; returns metric count."""
    records = snapshot(registry)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def parse_jsonl(text: str | Iterable[str]) -> list[dict]:
    """Parse JSON-lines text (or an iterable of lines) back to dicts."""
    lines = text.splitlines() if isinstance(text, str) else text
    return [json.loads(line) for line in lines if line.strip()]


# ----------------------------------------------------------------------
# Reconstruction and merging (the cross-process half of a snapshot)
# ----------------------------------------------------------------------
def _histogram_shape(record: dict) -> tuple[tuple[float, ...], list[int]]:
    """Bucket bounds (without ``+Inf``) and per-bucket counts."""
    buckets = record["buckets"]
    bounds = tuple(float(entry["le"]) for entry in buckets[:-1])
    counts = [int(entry["count"]) for entry in buckets]
    return bounds, counts


def metric_from_dict(record: dict) -> Metric:
    """Rebuild a live metric from a :func:`metric_to_dict` record."""
    kind = record["type"]
    name = record["name"]
    labels = record.get("labels") or {}
    help_text = record.get("help", "")
    if kind in ("counter", "gauge"):
        cls = Counter if kind == "counter" else Gauge
        metric = cls(name, labels, help_text)
        metric.value = float(record["value"])
        return metric
    if kind == "histogram":
        bounds, counts = _histogram_shape(record)
        hist = Histogram(name, labels, help_text, buckets=bounds)
        hist.counts = counts
        hist.count = int(record["count"])
        hist.sum = float(record["sum"])
        if record.get("min") is not None:
            hist.min = float(record["min"])
        if record.get("max") is not None:
            hist.max = float(record["max"])
        return hist
    raise ValueError(f"unknown metric type {kind!r} for {name!r}")


def merge_record(registry, record: dict) -> Metric:
    """Fold one snapshot record into ``registry`` (get-or-create + add).

    Counters accumulate, gauges take the incoming value (last writer
    wins, matching worker-then-parent ordering), histograms accumulate
    bucket-wise and widen ``min``/``max``.  Histogram bucket bounds
    must match the already-registered metric.
    """
    kind = record["type"]
    name = record["name"]
    labels = record.get("labels") or {}
    help_text = record.get("help", "")
    if kind == "counter":
        counter = registry.counter(name, labels, help=help_text)
        counter.inc(float(record["value"]))
        return counter
    if kind == "gauge":
        gauge = registry.gauge(name, labels, help=help_text)
        gauge.set(float(record["value"]))
        return gauge
    if kind == "histogram":
        bounds, counts = _histogram_shape(record)
        hist = registry.histogram(name, labels, help=help_text,
                                  buckets=bounds)
        if hist.bounds != bounds:
            raise ValueError(
                f"histogram {name!r} bucket bounds mismatch: "
                f"{hist.bounds} != {bounds}"
            )
        for i, count in enumerate(counts):
            hist.counts[i] += count
        hist.count += int(record["count"])
        hist.sum += float(record["sum"])
        if record.get("min") is not None:
            hist.min = min(hist.min, float(record["min"]))
        if record.get("max") is not None:
            hist.max = max(hist.max, float(record["max"]))
        return hist
    raise ValueError(f"unknown metric type {kind!r} for {name!r}")


def merge_records(registry, records: Iterable[dict]) -> int:
    """Merge snapshot records into ``registry``; returns how many.

    A no-op (returning 0) on a disabled registry, so callers can merge
    unconditionally.
    """
    if not registry.enabled:
        return 0
    merged = 0
    for record in records:
        merge_record(registry, record)
        merged += 1
    return merged


def registry_from_records(records: Iterable[dict]) -> MetricsRegistry:
    """A fresh registry rebuilt from snapshot records."""
    registry = MetricsRegistry()
    for record in records:
        registry.attach(metric_from_dict(record))
    return registry


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------
def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return f"{value:.10g}"


def _format_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{value}"' for key, value in sorted(merged.items())
    )
    return "{" + body + "}"


def to_prometheus(registry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()
    for metric in registry.metrics():
        if metric.name not in typed:
            typed.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            cumulative = 0
            for bound, count in zip(
                metric.bounds, metric.counts, strict=False
            ):
                cumulative += count
                labels = _format_labels(
                    metric.labels, {"le": _format_value(bound)}
                )
                lines.append(f"{metric.name}_bucket{labels} {cumulative}")
            labels = _format_labels(metric.labels, {"le": "+Inf"})
            lines.append(f"{metric.name}_bucket{labels} {metric.count}")
            base = _format_labels(metric.labels)
            lines.append(
                f"{metric.name}_sum{base} {_format_value(metric.sum)}"
            )
            lines.append(f"{metric.name}_count{base} {metric.count}")
        else:
            labels = _format_labels(metric.labels)
            lines.append(
                f"{metric.name}{labels} {_format_value(metric.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Human-readable renderings
# ----------------------------------------------------------------------
def _format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.2f} s"


def render_table(registry) -> str:
    """A fixed-width table of every metric, histograms as percentiles."""
    rows = []
    for metric in registry.metrics():
        name = metric.name + _format_labels(metric.labels)
        if isinstance(metric, Histogram):
            detail = (
                f"count={metric.count} mean={_format_seconds(metric.mean)} "
                + " ".join(
                    f"p{q}={_format_seconds(metric.percentile(q))}"
                    for q in PERCENTILES
                )
            )
        else:
            detail = _format_value(metric.value)
        rows.append((name, metric.kind, detail))
    if not rows:
        return "(no metrics recorded)"
    width = max(len(name) for name, _, _ in rows)
    return "\n".join(
        f"{name:<{width}}  {kind:>9}  {detail}" for name, kind, detail in rows
    )


def span_to_dict(span: Span) -> dict:
    """A plain-data snapshot of one span tree (JSON-serialisable)."""
    return {
        "name": span.name,
        "duration_s": span.duration,
        "counters": dict(span.counters),
        "children": [span_to_dict(child) for child in span.children],
    }


def span_from_dict(data: dict) -> Span:
    """Rebuild a :class:`Span` tree from :func:`span_to_dict` output.

    The rebuilt spans carry no tracer (they are finished records, not
    open regions); ``started`` is not preserved across processes.
    """
    span = Span(str(data.get("name", "")))
    span.duration = float(data.get("duration_s", 0.0))
    span.counters = {
        str(key): float(value)
        for key, value in (data.get("counters") or {}).items()
    }
    span.children = [
        span_from_dict(child) for child in data.get("children") or []
    ]
    return span


def render_trace(span: Span) -> str:
    """An indented tree view of one span with durations and counters."""
    lines: list[str] = []

    def emit(node: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        counters = "".join(
            f" {key}={value:g}" for key, value in node.counters.items()
        )
        lines.append(
            f"{prefix}{connector}{node.name:<24} "
            f"{_format_seconds(node.duration):>10}{counters}"
        )
        child_prefix = prefix if is_root else (
            prefix + ("   " if is_last else "│  ")
        )
        for i, child in enumerate(node.children):
            emit(child, child_prefix, i == len(node.children) - 1, False)

    emit(span, "", True, True)
    return "\n".join(lines)
