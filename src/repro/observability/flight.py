"""Query flight recorder: a bounded ring buffer of per-query records.

The black box of the serving layer.  Every query that passes through an
instrumented call site leaves one :class:`FlightRecord` — trace id,
engine/ladder tier actually used, cache hit/miss, deadline margin, op
counters, and the outcome (``ok``, ``infeasible``, or the
:class:`~repro.exceptions.ReproError` taxonomy class that killed it).
The buffer is a fixed-capacity ring, so a long-running service keeps
the *most recent* window; slow and failed queries are additionally kept
in a separate log so they survive longer than the main ring under
heavy traffic.

Like the metrics registry and the span tracer, the module-level default
is inert (:data:`NULL_FLIGHT_RECORDER`): hot paths check
``recorder.enabled`` once and skip all bookkeeping, keeping the
disabled overhead within the ≤2% budget the regression harness
(``benchmarks/regress.py --overhead``) measures.  Install a live
recorder with :func:`set_flight_recorder` or, scoped,
:func:`use_flight_recorder`.

Records serialise to JSON-lines (:meth:`FlightRecorder.dump` /
:func:`load_flight`), which is what the ``repro-qhl flight`` CLI and
the ``QueryService`` dump-on-failure hook read and write.
"""

from __future__ import annotations

import collections
import contextlib
import itertools
import json
from dataclasses import asdict, dataclass, fields
from typing import Iterator

from repro.observability.metrics import get_registry

#: Outcomes that mean "the engine answered" (feasible or provably not).
ANSWERED_OUTCOMES = ("ok", "infeasible")


@dataclass(frozen=True)
class FlightRecord:
    """One query's forensic record."""

    seq: int
    engine: str
    source: int
    target: int
    budget: float
    outcome: str
    seconds: float
    trace_id: str | None = None
    cache_hit: bool | None = None
    deadline_margin_ms: float | None = None
    hoplinks: int = 0
    concatenations: int = 0
    label_lookups: int = 0
    slow: bool = False
    error: str = ""

    @property
    def failed(self) -> bool:
        return self.outcome not in ANSWERED_OUTCOMES

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FlightRecord":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class FlightRecorder:
    """Fixed-capacity ring of :class:`FlightRecord` plus a slow/fail log.

    ``slow_ms`` is the slow-query threshold; ``None`` disables slow
    classification (failures still land in the side log).
    """

    enabled = True

    def __init__(
        self, capacity: int = 256, slow_ms: float | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.slow_ms = slow_ms
        self._records: collections.deque[FlightRecord] = collections.deque(
            maxlen=capacity
        )
        self._slow: collections.deque[FlightRecord] = collections.deque(
            maxlen=capacity
        )
        self._seq = itertools.count(1)
        self.total = 0
        self.dropped = 0

    def record(
        self,
        *,
        engine: str,
        source: int,
        target: int,
        budget: float,
        outcome: str,
        seconds: float,
        trace_id: str | None = None,
        cache_hit: bool | None = None,
        deadline_margin_ms: float | None = None,
        stats=None,
        error: str = "",
    ) -> FlightRecord:
        """Append one record; returns it (with its assigned ``seq``).

        ``stats`` is an optional :class:`~repro.types.QueryStats` whose
        op counters are copied in; failed queries usually have none.
        """
        slow = (
            self.slow_ms is not None and seconds * 1000.0 >= self.slow_ms
        )
        entry = FlightRecord(
            seq=next(self._seq),
            engine=engine,
            source=source,
            target=target,
            budget=budget,
            outcome=outcome,
            seconds=seconds,
            trace_id=trace_id,
            cache_hit=cache_hit,
            deadline_margin_ms=deadline_margin_ms,
            hoplinks=getattr(stats, "hoplinks", 0),
            concatenations=getattr(stats, "concatenations", 0),
            label_lookups=getattr(stats, "label_lookups", 0),
            slow=slow,
            error=error,
        )
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(entry)
        self.total += 1
        if slow or entry.failed:
            self._slow.append(entry)
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "service_flight_records_total",
                {"outcome": outcome},
                help="flight-recorder records by query outcome",
            ).inc()
            if slow:
                registry.counter(
                    "service_flight_slow_total",
                    help="queries over the flight-recorder slow threshold",
                ).inc()
        return entry

    # -- access --------------------------------------------------------
    def records(self) -> list[FlightRecord]:
        """The ring's contents, oldest first."""
        return list(self._records)

    def slow_records(self) -> list[FlightRecord]:
        """The slow/failed side log, oldest first."""
        return list(self._slow)

    def tail(self, n: int = 10) -> list[FlightRecord]:
        """The most recent ``n`` records, oldest first."""
        if n <= 0:
            return []
        return list(self._records)[-n:]

    def last(self) -> FlightRecord | None:
        return self._records[-1] if self._records else None

    def clear(self) -> None:
        self._records.clear()
        self._slow.clear()

    # -- persistence ---------------------------------------------------
    def dump(self, path, reason: str = "manual") -> int:
        """Write the ring as JSON-lines to ``path``; returns the count.

        ``reason`` labels the ``service_flight_dumps_total`` counter —
        ``manual`` for operator dumps, ``breaker-open`` /
        ``service-unavailable`` for the automatic forensic dumps.
        """
        entries = self.records()
        with open(path, "w", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(
                    json.dumps(entry.to_dict(), sort_keys=True) + "\n"
                )
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "service_flight_dumps_total",
                {"reason": reason},
                help="flight-recorder dumps by trigger",
            ).inc()
        return len(entries)


def load_flight(path) -> list[FlightRecord]:
    """Read a :meth:`FlightRecorder.dump` file back into records."""
    entries: list[FlightRecord] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                entries.append(FlightRecord.from_dict(json.loads(line)))
    return entries


class NullFlightRecorder:
    """The disabled default: every method is a cheap no-op."""

    enabled = False
    capacity = 0
    slow_ms = None
    total = 0
    dropped = 0

    def record(self, **kwargs) -> None:
        return None

    def records(self) -> list:
        return []

    def slow_records(self) -> list:
        return []

    def tail(self, n: int = 10) -> list:
        return []

    def last(self) -> None:
        return None

    def clear(self) -> None:
        pass

    def dump(self, path, reason: str = "manual") -> int:
        return 0


NULL_FLIGHT_RECORDER = NullFlightRecorder()

_active_recorder: FlightRecorder | NullFlightRecorder = (
    NULL_FLIGHT_RECORDER
)


def get_flight_recorder() -> FlightRecorder | NullFlightRecorder:
    """The process-wide active recorder (the no-op one by default)."""
    return _active_recorder


def set_flight_recorder(
    recorder: FlightRecorder | NullFlightRecorder,
) -> FlightRecorder | NullFlightRecorder:
    """Install ``recorder`` as active; returns the previous one."""
    global _active_recorder
    previous = _active_recorder
    _active_recorder = recorder
    return previous


@contextlib.contextmanager
def use_flight_recorder(
    recorder: FlightRecorder | NullFlightRecorder,
) -> Iterator[FlightRecorder | NullFlightRecorder]:
    """Scoped :func:`set_flight_recorder`; restores the previous one."""
    previous = set_flight_recorder(recorder)
    try:
        yield recorder
    finally:
        set_flight_recorder(previous)
