"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the process-wide sink every instrumented component
(query engines, index builders, the workload harness) reports into.
Design goals, in order:

1. **Near-zero overhead when disabled.**  The module-level default is
   :data:`NULL_REGISTRY`, whose ``enabled`` flag is ``False`` and whose
   metric factories hand back a shared no-op object.  Hot paths check
   ``registry.enabled`` once and skip all bookkeeping.
2. **Fixed-bucket histograms with percentile extraction.**  Latency
   distributions are what the paper's evaluation cannot show (it reports
   averages only); :class:`Histogram` keeps counts per bucket plus exact
   ``count``/``sum``/``min``/``max``, and estimates p50/p90/p95/p99 by
   linear interpolation inside the owning bucket, clamped to the
   observed range.
3. **Prometheus-compatible shape.**  Metrics carry a name plus a label
   map, so :mod:`repro.observability.export` can emit the text
   exposition format without translation.

Swap a live registry in with :func:`set_registry` (or scoped, with
:func:`use_registry`)::

    >>> from repro.observability.metrics import MetricsRegistry, use_registry
    >>> registry = MetricsRegistry()
    >>> with use_registry(registry):
    ...     registry.counter("demo_total").inc()
    >>> registry.counter("demo_total").value
    1.0
"""

from __future__ import annotations

import contextlib
from bisect import bisect_left
from typing import Iterator, Mapping

#: Geometric 1-2.5-5 latency buckets (seconds), 1 µs .. 10 s.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

Labels = Mapping[str, str]
MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def metric_key(name: str, labels: Labels | None) -> MetricKey:
    """The registry key: name plus sorted label pairs."""
    return (name, tuple(sorted((labels or {}).items())))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: Labels | None = None, help: str = ""):
        self.name = name
        self.labels = dict(labels or {})
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down (sizes, build costs, ratios)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: Labels | None = None, help: str = ""):
        self.name = name
        self.labels = dict(labels or {})
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with bucket-interpolated percentiles.

    ``bounds`` are the ascending bucket upper edges; one implicit
    overflow bucket catches everything above the last edge.  The exact
    ``min``/``max`` are tracked so percentile estimates never leave the
    observed range — in particular a one-sample histogram reports that
    sample for every percentile.
    """

    kind = "histogram"
    __slots__ = (
        "name", "labels", "help", "bounds", "counts",
        "count", "sum", "min", "max",
    )

    def __init__(
        self,
        name: str,
        labels: Labels | None = None,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ):
        bounds = tuple(sorted(set(buckets)))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.labels = dict(labels or {})
        self.help = help
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (``0 <= q <= 100``); 0.0 when empty.

        Linear interpolation inside the bucket holding the target rank.
        The interpolation range is the *intersection* of the bucket and
        the observed ``[min, max]`` — not the raw bucket edges — so a
        one-sample histogram reports that sample exactly, a tiny-N
        histogram cannot report an estimate outside the data it saw,
        and the overflow bucket interpolates toward the observed
        ``max`` instead of infinity.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = q / 100 * self.count
        if rank <= 0:
            return self.min
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                lower = self.bounds[i - 1] if i > 0 else min(self.min, 0.0)
                upper = (
                    self.bounds[i] if i < len(self.bounds) else self.max
                )
                # Observations in this bucket all lie inside the
                # observed range; shrink the edges before interpolating.
                lower = max(lower, self.min)
                upper = min(upper, self.max)
                if upper < lower:
                    upper = lower
                fraction = (rank - (cumulative - bucket_count)) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.min), self.max)
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """A live metric store, keyed by ``(name, labels)``.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create, so call
    sites need no registration ceremony; requesting an existing name
    with a different metric kind raises.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[MetricKey, Metric] = {}

    # -- factories -----------------------------------------------------
    def counter(
        self, name: str, labels: Labels | None = None, help: str = ""
    ) -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(
        self, name: str, labels: Labels | None = None, help: str = ""
    ) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        labels: Labels | None = None,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels, help, buckets=buckets
        )

    def _get_or_create(self, cls, name, labels, help, **kwargs):
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels, help, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    # -- access --------------------------------------------------------
    def attach(self, metric: Metric) -> Metric:
        """Adopt an externally built metric (e.g. a harness histogram)."""
        self._metrics[metric_key(metric.name, metric.labels)] = metric
        return metric

    def get(self, name: str, labels: Labels | None = None) -> Metric | None:
        return self._metrics.get(metric_key(name, labels))

    def metrics(self) -> list[Metric]:
        """All metrics in registration order."""
        return list(self._metrics.values())

    def clear(self) -> None:
        self._metrics.clear()


class _NullMetric:
    """Shared do-nothing stand-in for every metric kind."""

    kind = "null"
    name = ""
    labels: dict[str, str] = {}
    help = ""
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0
    bounds: tuple[float, ...] = ()
    counts: list[int] = []

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    p50 = p90 = p95 = p99 = 0.0


NULL_METRIC = _NullMetric()


class NullRegistry:
    """The disabled default: every factory returns :data:`NULL_METRIC`."""

    enabled = False

    def counter(self, name, labels=None, help="") -> _NullMetric:
        return NULL_METRIC

    def gauge(self, name, labels=None, help="") -> _NullMetric:
        return NULL_METRIC

    def histogram(
        self, name, labels=None, help="", buckets=DEFAULT_LATENCY_BUCKETS
    ) -> _NullMetric:
        return NULL_METRIC

    def attach(self, metric):
        return metric

    def get(self, name, labels=None):
        return None

    def metrics(self) -> list:
        return []

    def clear(self) -> None:
        pass


NULL_REGISTRY = NullRegistry()

_active_registry: MetricsRegistry | NullRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry | NullRegistry:
    """The process-wide active registry (the no-op one by default)."""
    return _active_registry


def set_registry(
    registry: MetricsRegistry | NullRegistry,
) -> MetricsRegistry | NullRegistry:
    """Install ``registry`` as the active sink; returns the previous one."""
    global _active_registry
    previous = _active_registry
    _active_registry = registry
    return previous


@contextlib.contextmanager
def use_registry(
    registry: MetricsRegistry | NullRegistry,
) -> Iterator[MetricsRegistry | NullRegistry]:
    """Scoped :func:`set_registry`; restores the previous registry."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def observe_query(registry, engine: str, stats, phases=()) -> None:
    """Record one answered query's :class:`~repro.types.QueryStats`.

    ``phases`` is an iterable of finished spans (anything with ``name``
    and ``duration``); each lands in the per-phase latency histogram.
    """
    labels = {"engine": engine}
    registry.histogram(
        "qhl_query_seconds", labels, help="end-to-end query latency"
    ).observe(stats.seconds)
    registry.counter("qhl_queries_total", labels).inc()
    registry.counter("qhl_hoplinks_total", labels).inc(stats.hoplinks)
    registry.counter(
        "qhl_concatenations_total", labels
    ).inc(stats.concatenations)
    registry.counter("qhl_label_lookups_total", labels).inc(
        stats.label_lookups
    )
    for span in phases:
        registry.histogram(
            "qhl_phase_seconds",
            {"engine": engine, "phase": span.name},
            help="per-phase query latency",
        ).observe(span.duration)
