"""The declared metric-name registry: one source of truth for every
metric this package emits.

PRs 1-4 accumulated ~44 metric names across five subsystems, each
declared implicitly at its instrumentation site and documented (or not)
by hand in ``docs/observability.md`` — the classic docs/code drift.
This module is the fix: every ``qhl_*`` / ``service_*`` / ``ingest_*``
/ ``audit_*`` / ``build_*`` metric the code emits **must** be declared
here, and every declared metric must be emitted somewhere.  Both
directions are machine-checked:

* lint rule **QHL004** (``repro.lint``) statically cross-checks the
  registry against every ``registry.counter/gauge/histogram(...)``
  call site in ``src/``;
* ``tests/lint/test_registry_crosscheck.py`` asserts the metric table
  in ``docs/observability.md`` stays a subset of this registry.

The registry is data, not behaviour: instrumentation sites keep the
get-or-create pattern of :class:`~repro.observability.metrics.
MetricsRegistry` and are *not* required to route through this module.
"""

from __future__ import annotations

from typing import NamedTuple


class MetricSpec(NamedTuple):
    """Declared shape of one metric."""

    kind: str  # "counter" | "gauge" | "histogram"
    labels: tuple[str, ...]
    help: str


#: Every metric name the package emits, with its declared shape.
#: QHL004 fails the lint run when a code literal is missing here or an
#: entry here is emitted nowhere.
METRICS: dict[str, MetricSpec] = {
    # -- query pipeline (PR 1) -----------------------------------------
    "qhl_query_seconds": MetricSpec(
        "histogram", ("engine",), "end-to-end query latency"),
    "qhl_phase_seconds": MetricSpec(
        "histogram", ("engine", "phase"), "per-phase query latency"),
    "qhl_queries_total": MetricSpec(
        "counter", ("engine",), "answered queries"),
    "qhl_hoplinks_total": MetricSpec(
        "counter", ("engine",), "hoplinks visited (Figure 7 left)"),
    "qhl_concatenations_total": MetricSpec(
        "counter", ("engine",), "path concatenations (Figures 7-8)"),
    "qhl_label_lookups_total": MetricSpec(
        "counter", ("engine",), "skyline label fetches"),
    # -- index build (PR 1) --------------------------------------------
    "qhl_index_build_seconds": MetricSpec(
        "gauge", ("phase",), "build phase durations"),
    "qhl_index_treewidth": MetricSpec(
        "gauge", (), "tree decomposition width"),
    "qhl_index_treeheight": MetricSpec(
        "gauge", (), "tree decomposition height"),
    "qhl_index_label_bytes": MetricSpec(
        "gauge", (), "label store payload size"),
    "qhl_index_label_entries": MetricSpec(
        "gauge", (), "skyline entries across all labels"),
    "qhl_index_max_skyline_set": MetricSpec(
        "gauge", (), "largest skyline set in the labels"),
    "qhl_index_pruning_bytes": MetricSpec(
        "gauge", (), "pruning condition index size"),
    "qhl_index_pruning_conditions": MetricSpec(
        "gauge", (), "stored pruning conditions"),
    "qhl_label_vertex_seconds": MetricSpec(
        "histogram", (), "per-vertex label construction time"),
    "qhl_label_build_seconds": MetricSpec(
        "gauge", (), "total label construction time"),
    "qhl_label_joins_total": MetricSpec(
        "counter", (), "skyline joins during label construction"),
    "qhl_label_build_workers": MetricSpec(
        "gauge", (), "process-pool size of the parallel label build"),
    "qhl_label_build_levels": MetricSpec(
        "gauge", (), "tree-depth levels in the parallel label build"),
    "qhl_label_build_parallel_vertices": MetricSpec(
        "gauge", (), "vertices labelled by worker processes"),
    # -- workload harness (PR 1) ---------------------------------------
    "qhl_workload_query_seconds": MetricSpec(
        "histogram", ("engine", "workload"), "harness per-query latency"),
    "qhl_workload_phase_seconds": MetricSpec(
        "histogram", ("phase",), "query-set generation phase latency"),
    "qhl_workload_queries": MetricSpec(
        "gauge", ("set",), "queries generated per Q1..Q5 set"),
    "qhl_workload_failures_total": MetricSpec(
        "counter", ("engine", "workload", "error"),
        "harness queries that raised instead of answering"),
    # -- batch + cache (PR 3) ------------------------------------------
    "qhl_batch_queries_total": MetricSpec(
        "counter", ("engine",), "queries answered through the batch API"),
    "qhl_batch_workers": MetricSpec(
        "gauge", (), "process-pool size of the last batch run"),
    "qhl_cache_hits_total": MetricSpec(
        "counter", (), "skyline cache lookups answered from the cache"),
    "qhl_cache_misses_total": MetricSpec(
        "counter", (), "skyline cache lookups that missed"),
    "qhl_cache_evictions_total": MetricSpec(
        "counter", (), "skyline cache LRU evictions"),
    "qhl_cache_entries": MetricSpec(
        "gauge", (), "skyline frontiers currently cached"),
    "qhl_cache_invalidations_total": MetricSpec(
        "counter", (), "whole-cache invalidations after label updates"),
    # -- cross-process tracing (PR 6) ----------------------------------
    "qhl_trace_stitched_total": MetricSpec(
        "counter", (),
        "worker spool records stitched into parent traces"),
    "qhl_trace_truncated_total": MetricSpec(
        "counter", (), "worker spans synthesised for crashed workers"),
    "qhl_trace_workers": MetricSpec(
        "gauge", (), "distinct worker pids in the last stitched trace"),
    "qhl_batch_deadline_exceeded_total": MetricSpec(
        "counter", ("engine",),
        "batch queries that ran out of per-query budget"),
    # -- serving layer (PR 2) ------------------------------------------
    "service_queries_total": MetricSpec(
        "counter", ("tier",), "queries answered per ladder tier"),
    "service_fallback_total": MetricSpec(
        "counter", ("from", "to", "reason"), "ladder tier fallbacks"),
    "service_deadline_exceeded_total": MetricSpec(
        "counter", ("engine",), "queries that ran out of budget"),
    "service_breaker_transitions_total": MetricSpec(
        "counter", ("tier", "state"), "circuit breaker state changes"),
    "service_index_load_failures_total": MetricSpec(
        "counter", (), "index loads that failed and degraded the service"),
    "service_index_audit_failures_total": MetricSpec(
        "counter", (), "indexes rejected by the require_audit gate"),
    # -- flight recorder (PR 6) ----------------------------------------
    "service_flight_records_total": MetricSpec(
        "counter", ("outcome",),
        "flight-recorder records by query outcome"),
    "service_flight_slow_total": MetricSpec(
        "counter", (),
        "queries over the flight-recorder slow threshold"),
    "service_flight_dumps_total": MetricSpec(
        "counter", ("reason",), "flight-recorder dumps by trigger"),
    # -- validating ingestion (PR 4) -----------------------------------
    "ingest_files_total": MetricSpec(
        "counter", ("format",), "network files ingested"),
    "ingest_edges_total": MetricSpec(
        "counter", ("format", "action"), "edges by ingestion outcome"),
    "ingest_skipped_lines_total": MetricSpec(
        "counter", ("format",), "unparseable lines skipped in lenient mode"),
    "ingest_lcc_fallback_total": MetricSpec(
        "counter", ("format",),
        "disconnected inputs reduced to their largest component"),
    "ingest_vertices_dropped_total": MetricSpec(
        "counter", ("format",), "vertices outside the kept component"),
    # -- index audit (PR 4) --------------------------------------------
    "audit_seconds": MetricSpec(
        "gauge", (), "duration of the last index audit"),
    "audit_runs_total": MetricSpec(
        "counter", ("status",), "index audits by outcome"),
    "audit_checks_total": MetricSpec(
        "counter", ("check", "status"), "individual audit checks run"),
    "audit_problems_total": MetricSpec(
        "counter", ("check",), "problems found by audit checks"),
    # -- worker supervision (PR 7) -------------------------------------
    "supervisor_spawns_total": MetricSpec(
        "counter", ("worker",),
        "worker processes spawned (including respawns)"),
    "supervisor_restarts_total": MetricSpec(
        "counter", ("worker",), "workers respawned after a death"),
    "supervisor_deaths_total": MetricSpec(
        "counter", ("worker", "reason"), "worker deaths by cause"),
    "supervisor_heartbeat_stalls_total": MetricSpec(
        "counter", ("worker",),
        "workers killed for a stalled heartbeat"),
    "supervisor_breaker_open_total": MetricSpec(
        "counter", ("worker",),
        "restart circuit breakers tripped open"),
    "supervisor_requeues_total": MetricSpec(
        "counter", (), "tasks requeued after a worker death"),
    "supervisor_quarantined_total": MetricSpec(
        "counter", (), "poison tasks pulled from rotation"),
    "supervisor_workers": MetricSpec(
        "gauge", (), "live worker processes under supervision"),
    # -- checkpointed builds (PR 4) ------------------------------------
    "build_checkpoint_levels_total": MetricSpec(
        "counter", (), "label-build levels persisted as checkpoints"),
    "build_resume_levels_restored_total": MetricSpec(
        "counter", (), "label-build levels restored from checkpoints"),
    "build_resume_restored_vertices": MetricSpec(
        "gauge", (), "vertices whose labels came from checkpoints"),
    # -- live updates & epochs (PR 9) ----------------------------------
    "update_epoch": MetricSpec(
        "gauge", (), "journal sequence number of the serving epoch"),
    "update_backlog": MetricSpec(
        "gauge", (), "acknowledged update batches not yet published"),
    "update_staleness_seconds": MetricSpec(
        "gauge", (), "age of the oldest pending update batch"),
    "update_batches_total": MetricSpec(
        "counter", ("status",), "journalled update batches by outcome"),
    "update_edges_total": MetricSpec(
        "counter", (), "edge-metric deltas applied to published epochs"),
    "update_rollbacks_total": MetricSpec(
        "counter", ("reason",),
        "update batches rolled back, by failure stage"),
    "update_repair_seconds": MetricSpec(
        "histogram", (),
        "incremental repair wall time per published batch"),
}

#: The declared names alone, for membership tests.
METRIC_NAMES: frozenset[str] = frozenset(METRICS)
