"""Cross-process trace propagation: trace ids, worker spools, stitching.

The PR-3 process-pool batch executor and the level-parallel label
builder fork worker processes whose spans and metric deltas used to
vanish — the system was observationally dark exactly where it is
parallel.  This module closes the hole with three pieces:

* :class:`TraceContext` — a trace id plus the name of the parent span a
  child's work should attach under.  :func:`new_trace_id` mints
  process-unique ids without wall-clock or global RNG, so builds stay
  deterministic.
* :class:`WorkerSpool` — a tmpdir-backed spool the parent creates and
  the (forked) workers write into.  Each worker announces itself with a
  ``start`` marker on first use, appends one JSON ``chunk`` record per
  unit of work (its span tree plus a metrics-registry snapshot), and a
  :class:`multiprocessing.util.Finalize` hook writes an ``end`` marker
  on clean shutdown (forked pool workers skip :mod:`atexit`).  A
  ``start`` marker without a matching ``end`` marker is exactly how the
  parent detects a worker that died without cleanup (SIGKILL, OOM).
* :func:`stitch` — run by the parent *after* the pool has shut down: it
  reads the spool, attaches every worker span under the parent's
  fan-out span, folds the metric deltas into the parent registry via
  :func:`~repro.observability.export.merge_records`, and synthesises
  ``worker.truncated`` / ``worker.idle`` spans for crashed and
  chunk-less workers so the trace is complete even when a worker is
  not.

All spool I/O is best-effort: observability must never take down the
data path, so write failures are swallowed and unreadable records are
skipped during collection.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from multiprocessing import util as _mp_util
from typing import Iterator, NamedTuple

from repro.observability.export import (
    merge_records,
    snapshot,
    span_from_dict,
    span_to_dict,
)
from repro.observability.metrics import (
    MetricsRegistry,
    get_registry,
    use_registry,
)
from repro.observability.tracing import (
    Span,
    SpanTracer,
    get_tracer,
    use_tracer,
)

_trace_ids = itertools.count(1)

#: (spool directory, pid) pairs that already wrote their start marker.
_announced: set[tuple[str, int]] = set()

#: Monotone suffix for chunk-record filenames within one process.
_chunk_seq = itertools.count(1)


#: Scratch-dir prefixes :func:`reap_stale_spools` is allowed to remove:
#: worker spools (this module), supervisor heartbeat/result dirs
#: (:mod:`repro.supervise.supervisor`), and per-epoch flat-store dirs
#: (:mod:`repro.dynamic.epochs`).
SPOOL_DIR_PREFIXES: tuple[str, ...] = (
    "qhl-spool-",
    "qhl-supervisor-",
    "qhl-epoch-",
)

#: Spool dirs untouched for this long are presumed orphaned.  Live
#: spools are written at least once per chunk (and supervisor dirs once
#: per heartbeat), so an hour of silence means the owning parent died
#: without running ``cleanup()``.
STALE_SPOOL_AGE_S = 3600.0


def _owner_alive(name: str) -> bool:
    """True when the dir name embeds the pid of a running process.

    Epoch flat-twin dirs (``qhl-epoch-<pid>-...``) are written exactly
    once and only mmap-read afterwards, so mtime age says nothing about
    liveness — an epoch can legitimately serve for hours without a
    publish.  Their owner pid is embedded in the name instead; while it
    is alive the dir is never reaped, however old.  Dirs without a
    parsable pid (spools, supervisor dirs, older epoch layouts) fall
    through to the age check — spools and heartbeats are rewritten
    continuously, so age is the right signal there.  A recycled pid can
    delay (not prevent) reaping an orphan; the next sweep after the
    impostor exits collects it.
    """
    for prefix in SPOOL_DIR_PREFIXES:
        if name.startswith(prefix):
            head = name[len(prefix):].split("-", 1)[0]
            if not head.isdigit():
                return False
            try:
                os.kill(int(head), 0)
            except ProcessLookupError:
                return False
            except OSError:
                return True  # exists, just not signallable by us
            return True
    return False


def reap_stale_spools(
    max_age_s: float = STALE_SPOOL_AGE_S,
    root: str | None = None,
) -> list[str]:
    """Remove orphaned spool dirs left behind by crashed parents.

    ``WorkerSpool.cleanup()`` only runs when the parent survives the
    fan-out; a parent killed mid-batch leaks its ``qhl-spool-*`` tmpdir
    (and a killed supervisor its ``qhl-supervisor-*`` dir) forever.
    Called on every spool/supervisor creation, this sweeps the temp
    root for dirs with a known prefix whose *newest* entry (or the dir
    itself, when empty) is older than ``max_age_s`` seconds.  Age is
    judged on the newest file so a long-running but live fan-out — which
    keeps writing chunk records — is never reaped.  Best-effort like
    all spool I/O: races and permission errors are swallowed.  Returns
    the paths removed (for tests and logs).
    """
    if root is None:
        root = tempfile.gettempdir()
    now = time.time()
    reaped: list[str] = []
    try:
        names = os.listdir(root)
    except OSError:
        return reaped
    for name in names:
        if not name.startswith(SPOOL_DIR_PREFIXES):
            continue
        if _owner_alive(name):
            continue
        path = os.path.join(root, name)
        try:
            newest = os.stat(path).st_mtime
            for entry in os.scandir(path):
                newest = max(newest, entry.stat().st_mtime)
        except OSError:
            continue
        if now - newest < max_age_s:
            continue
        shutil.rmtree(path, ignore_errors=True)
        if not os.path.exists(path):
            reaped.append(path)
    return reaped


def new_trace_id() -> str:
    """A process-unique trace id: originating pid + monotone counter.

    Deliberately avoids wall-clock and random sources so traced runs
    stay byte-reproducible; uniqueness across forks holds because the
    pid differs and within a process because the counter does.
    """
    return f"{os.getpid():08x}-{next(_trace_ids):06x}"


class TraceContext(NamedTuple):
    """Identifies one trace and the parent span children attach under."""

    trace_id: str
    parent_span: str = ""

    @classmethod
    def new(cls, parent_span: str = "") -> "TraceContext":
        return cls(new_trace_id(), parent_span)


class SpoolHarvest(NamedTuple):
    """Everything :meth:`WorkerSpool.collect` found on disk."""

    chunks: list[dict]
    started: set[int]
    ended: set[int]

    @property
    def chunk_pids(self) -> set[int]:
        return {int(chunk.get("pid", 0)) for chunk in self.chunks}

    @property
    def truncated(self) -> set[int]:
        """Workers that announced themselves but never exited cleanly."""
        return self.started - self.ended


@dataclass(frozen=True)
class WorkerSpool:
    """A per-fan-out spool directory shared by parent and workers.

    Frozen and plain-data so it survives pickling into pool
    initializers; per-process mutable state (announce dedup, chunk
    sequence numbers) lives at module level and is keyed by pid.
    """

    directory: str
    context: TraceContext
    want_spans: bool = True
    want_metrics: bool = True

    @classmethod
    def create(
        cls,
        context: TraceContext,
        want_spans: bool = True,
        want_metrics: bool = True,
        directory: str | None = None,
    ) -> "WorkerSpool":
        if directory is None:
            reap_stale_spools()
            directory = tempfile.mkdtemp(prefix="qhl-spool-")
        else:
            os.makedirs(directory, exist_ok=True)
        return cls(str(directory), context, want_spans, want_metrics)

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    # -- worker side ---------------------------------------------------
    def announce(self) -> None:
        """Write this process's start marker (idempotent per pid).

        Also registers the clean-shutdown ``end`` marker.  The hook is
        a :class:`multiprocessing.util.Finalize` rather than plain
        :mod:`atexit` because forked pool workers exit through
        ``os._exit`` (which skips atexit) but *do* run multiprocessing
        finalizers in ``Process._bootstrap``.  A worker killed with
        SIGKILL/SIGTERM runs neither — which is exactly how
        :func:`stitch` knows to mark its span truncated.
        """
        pid = os.getpid()
        key = (self.directory, pid)
        if key in _announced:
            return
        _announced.add(key)
        self._write(f"start-{pid:08d}.json", {"pid": pid})
        _mp_util.Finalize(None, self._farewell, args=(pid,),
                          exitpriority=10)

    def _farewell(self, pid: int) -> None:
        if os.getpid() != pid:
            return
        self._write(f"end-{pid:08d}.json", {"pid": pid})

    def _write(self, name: str, payload: dict) -> None:
        path = os.path.join(self.directory, name)
        tmp = f"{path}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(tmp)

    @contextlib.contextmanager
    def observe(self, label: str) -> Iterator[Span]:
        """Scoped worker-side observation for one chunk of work.

        Installs a fresh tracer and/or registry (per the spool's
        ``want_*`` flags), yields the chunk's root span, and flushes
        one spool record on exit — also on error, so partial
        observations survive a failing chunk.
        """
        self.announce()
        tracer = SpanTracer() if self.want_spans else None
        registry = MetricsRegistry() if self.want_metrics else None
        root = tracer.span(label) if tracer is not None else Span(label)
        try:
            with contextlib.ExitStack() as stack:
                if tracer is not None:
                    stack.enter_context(use_tracer(tracer))
                if registry is not None:
                    stack.enter_context(use_registry(registry))
                with root:
                    root.set("pid", os.getpid())
                    yield root
        finally:
            record = {
                "pid": os.getpid(),
                "seq": next(_chunk_seq),
                "trace_id": self.trace_id,
                "span": span_to_dict(root),
                "metrics": snapshot(registry)
                if registry is not None else [],
            }
            self._write(
                f"chunk-{record['pid']:08d}-{record['seq']:06d}.json",
                record,
            )

    # -- parent side ---------------------------------------------------
    def collect(self) -> SpoolHarvest:
        """Read every marker and chunk record currently on disk."""
        chunks: list[dict] = []
        started: set[int] = set()
        ended: set[int] = set()
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path, encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                continue
            pid = int(payload.get("pid", 0))
            if name.startswith("start-"):
                started.add(pid)
            elif name.startswith("end-"):
                ended.add(pid)
            elif name.startswith("chunk-"):
                chunks.append(payload)
        chunks.sort(
            key=lambda c: (int(c.get("pid", 0)), int(c.get("seq", 0)))
        )
        return SpoolHarvest(chunks, started, ended)

    def cleanup(self) -> None:
        shutil.rmtree(self.directory, ignore_errors=True)


class StitchResult(NamedTuple):
    """What :func:`stitch` recovered from a spool."""

    trace_id: str
    chunks: int
    pids: set[int]
    truncated: set[int]
    metrics_merged: int


def _synthetic_span(name: str, pid: int) -> Span:
    span = Span(name)
    span.set("pid", pid)
    return span


def stitch(
    spool: WorkerSpool,
    parent: Span | None = None,
    tracer=None,
    registry=None,
) -> StitchResult:
    """Fold a spool back into the parent's trace tree and registry.

    Call *after* the pool shut down cleanly (``close()`` + ``join()``)
    or broke — worker end markers are written at interpreter exit, so
    stitching earlier would misreport live workers as truncated.  Never
    blocks: it only reads whatever is on disk.
    """
    if tracer is None:
        tracer = get_tracer()
    if registry is None:
        registry = get_registry()
    harvest = spool.collect()
    attach_to = None
    if parent is not None and isinstance(
        getattr(parent, "children", None), list
    ):
        attach_to = parent.children
    merged = 0
    for chunk in harvest.chunks:
        if attach_to is not None and chunk.get("span"):
            attach_to.append(span_from_dict(chunk["span"]))
        merged += merge_records(registry, chunk.get("metrics") or [])
    truncated = harvest.truncated
    if attach_to is not None:
        for pid in sorted(truncated):
            attach_to.append(_synthetic_span("worker.truncated", pid))
        for pid in sorted(harvest.ended - harvest.chunk_pids):
            attach_to.append(_synthetic_span("worker.idle", pid))
    pids = harvest.started | harvest.chunk_pids
    if registry.enabled:
        registry.counter(
            "qhl_trace_stitched_total",
            help="worker spool records stitched into parent traces",
        ).inc(len(harvest.chunks))
        if truncated:
            registry.counter(
                "qhl_trace_truncated_total",
                help="worker spans synthesised for crashed workers",
            ).inc(len(truncated))
        registry.gauge(
            "qhl_trace_workers",
            help="distinct worker pids in the last stitched trace",
        ).set(len(pids))
    return StitchResult(
        spool.trace_id, len(harvest.chunks), pids, truncated, merged
    )
