"""Span tracing for the query pipeline and the index build.

A :class:`Span` is one timed region — an index-build phase (tree
decomposition, label construction, pruning-index build) or a query
phase (LCA lookup, separator initialisation, pruning-condition checks,
per-hoplink concatenation).  Spans nest: entering a span while another
is open makes it a child, so one query produces a small tree mirroring
Algorithm 3's structure, and each span carries the ``QueryStats``-style
counters observed inside it.

Like the metrics registry, the module-level default is a no-op
(:data:`NULL_TRACER`): ``tracer.span(...)`` then returns a shared inert
object, so instrumented code can be written unconditionally while the
disabled cost stays at one attribute check plus a call.  Install a live
tracer with :func:`set_tracer` or, scoped, :func:`use_tracer`::

    >>> from repro.observability.tracing import SpanTracer, use_tracer
    >>> tracer = SpanTracer()
    >>> with use_tracer(tracer):
    ...     with tracer.span("outer"):
    ...         with tracer.span("inner") as inner:
    ...             inner.add("work", 3)
    >>> [s.name for s in walk(tracer.last())]
    ['outer', 'inner']
"""

from __future__ import annotations

import contextlib
import time
from typing import Iterator


class Span:
    """One timed, counter-carrying region of work.

    Use as a context manager (via :meth:`SpanTracer.span`); ``duration``
    is in seconds and only valid after exit.
    """

    __slots__ = ("name", "counters", "children", "started", "duration",
                 "_tracer")

    def __init__(self, name: str, tracer: "SpanTracer | None" = None):
        self.name = name
        self.counters: dict[str, float] = {}
        self.children: list[Span] = []
        self.started = 0.0
        self.duration = 0.0
        self._tracer = tracer

    def add(self, key: str, amount: float = 1.0) -> None:
        """Accumulate into a counter on this span."""
        self.counters[key] = self.counters.get(key, 0.0) + amount

    def set(self, key: str, value: float) -> None:
        """Set a counter on this span."""
        self.counters[key] = value

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._push(self)
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.duration = time.perf_counter() - self.started
        if self._tracer is not None:
            self._tracer._pop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration * 1e6:.1f}us, "
            f"{len(self.children)} children)"
        )


class SpanTracer:
    """Collects span trees; each top-level span becomes a root."""

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str) -> Span:
        """A new span, attached to the open span on entry."""
        return Span(name, self)

    def last(self) -> Span | None:
        """The most recently completed root span, if any."""
        return self.roots[-1] if self.roots else None

    def reset(self) -> None:
        self.roots.clear()
        self._stack.clear()

    # -- internal stack discipline (driven by Span.__enter__/__exit__) --
    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self) -> None:
        self._stack.pop()


class _NullSpan:
    """Inert shared span handed out by the disabled tracer."""

    name = ""
    counters: dict[str, float] = {}
    children: tuple = ()
    started = 0.0
    duration = 0.0

    def add(self, key: str, amount: float = 1.0) -> None:
        pass

    def set(self, key: str, value: float) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled default tracer."""

    enabled = False

    def span(self, name: str) -> _NullSpan:
        return NULL_SPAN

    def last(self) -> None:
        return None

    def reset(self) -> None:
        pass


NULL_TRACER = NullTracer()

_active_tracer: SpanTracer | NullTracer = NULL_TRACER


def get_tracer() -> SpanTracer | NullTracer:
    """The process-wide active tracer (the no-op one by default)."""
    return _active_tracer


def set_tracer(
    tracer: SpanTracer | NullTracer,
) -> SpanTracer | NullTracer:
    """Install ``tracer`` as active; returns the previous one."""
    global _active_tracer
    previous = _active_tracer
    _active_tracer = tracer
    return previous


@contextlib.contextmanager
def use_tracer(
    tracer: SpanTracer | NullTracer,
) -> Iterator[SpanTracer | NullTracer]:
    """Scoped :func:`set_tracer`; restores the previous tracer."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def walk(span: Span) -> Iterator[Span]:
    """Depth-first pre-order iteration over a span tree."""
    yield span
    for child in span.children:
        yield from walk(child)
