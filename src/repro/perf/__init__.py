"""Hot-path performance layer: skyline caching and batched execution.

Three pieces (see ``docs/performance.md``):

* :class:`~repro.perf.cache.SkylineCache` — LRU of full s-t skyline
  frontiers keyed by normalised pair; any budget for a cached pair is
  answered by binary search.
* :class:`~repro.perf.cached_engine.CachedQHLEngine` — QHL behind the
  cache, exact for every budget.
* :func:`~repro.perf.batch.execute_batch` — failure-tolerant batched
  execution in cache-friendly order, optionally across a process pool.

Parallel label construction lives with the other label builders in
:mod:`repro.labeling.parallel`.
"""

from repro.perf.batch import (
    BatchFailure,
    BatchReport,
    execute_batch,
    sorted_batch_order,
)
from repro.perf.cache import CacheStats, SkylineCache, normalize_pair
from repro.perf.cached_engine import CachedQHLEngine

__all__ = [
    "BatchFailure",
    "BatchReport",
    "CacheStats",
    "CachedQHLEngine",
    "SkylineCache",
    "execute_batch",
    "normalize_pair",
    "sorted_batch_order",
]
