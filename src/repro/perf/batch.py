"""Batched query execution.

One batch API for every engine in the package:

* :func:`sorted_batch_order` — the execution order that maximises
  skyline-cache reuse: queries sorted by normalised ``(s, t)`` pair
  (then budget), so repeated pairs run back-to-back and a cached
  frontier is hot when its siblings arrive.
* :func:`execute_batch` — run a workload through an engine, tolerant
  of per-query failures, honouring per-query and per-batch deadlines
  (the PR-2 checkpoints are preserved: the batch deadline is checked
  between queries and threaded *into* each engine call), optionally
  fanned out across a ``concurrent.futures`` process pool with a
  per-worker engine handle.

The pool uses the ``fork`` start method so workers inherit the engine
(index included) without pickling its deep provenance structures; on
platforms without ``fork`` the batch silently runs sequentially.
Results always come back in the *input* order, bit-identical to a
sequential run (each query's answer is independent of batch order).

Every batch runs under one trace id.  When observability is live, the
pool path hands each worker a :class:`~repro.observability.propagation.
WorkerSpool`; workers record their chunk spans and metric deltas into
it, and the parent stitches everything into its own trace tree and
registry after the pool drains — so ``--trace`` shows worker-side
phases and worker-side cache/deadline counters land in the parent
registry instead of vanishing with the fork.  A worker that dies
mid-chunk (SIGKILL, OOM — surfacing as ``BrokenProcessPool``) costs
only its own chunk: the affected queries fail with
``WorkerCrashError``, every other chunk's answers are kept, and the
stitched trace marks the dead worker's span ``worker.truncated``.

``supervised=True`` upgrades the fan-out from *tolerating* worker
deaths to *healing* them: chunks run on a
:class:`~repro.supervise.pool.SupervisedPool` whose workers are
heartbeat-monitored and restarted, so a mid-chunk SIGKILL means "retry
the lost chunk on a respawned worker" instead of failure rows — the
report comes back bit-identical to the sequential path.  Only a poison
chunk element (one that kills every worker that touches it) surfaces
as failure rows (``TaskQuarantinedError``), and only after the chunk
was split into singletons so its healthy neighbours still answer.  The
stitched trace keeps the PR-6 shape, plus each ``worker.truncated``
span gains a ``respawned_as`` counter pointing at its successor pid,
and ``BatchReport.incidents`` carries the supervisor's black box.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Sequence

from repro.exceptions import DeadlineExceededError, ReproError
from repro.observability.flight import get_flight_recorder
from repro.observability.metrics import get_registry
from repro.observability.propagation import (
    TraceContext,
    WorkerSpool,
    new_trace_id,
    stitch,
)
from repro.observability.tracing import NULL_SPAN, get_tracer
from repro.perf.cache import normalize_pair
from repro.supervise.pool import SupervisedPool
from repro.supervise.supervisor import (
    SupervisionConfig,
    annotate_succession,
)
from repro.types import CSPQuery, QueryResult

QueryLike = CSPQuery | tuple[int, int, float]


@dataclass(frozen=True)
class BatchFailure:
    """One batch query that raised instead of answering.

    ``trace_id`` joins the failure to its batch trace; ``flight_seq``
    points at the flight-recorder record written for it (``None`` when
    no recorder was active).
    """

    index: int
    query: CSPQuery
    error: str
    message: str
    trace_id: str | None = None
    flight_seq: int | None = None


@dataclass
class BatchReport:
    """Outcome of one :func:`execute_batch` run.

    ``results[i]`` answers ``queries[i]``; it is ``None`` when that
    query failed (see ``failures``) or was skipped because the batch
    deadline expired first.
    """

    results: list[QueryResult | None]
    failures: list[BatchFailure] = field(default_factory=list)
    skipped: int = 0
    trace_id: str | None = None
    #: Supervisor lifecycle records (spawns, deaths, requeues) when the
    #: batch ran supervised; empty otherwise.
    incidents: list = field(default_factory=list)

    @property
    def answered(self) -> int:
        """Queries that produced a result."""
        return sum(1 for r in self.results if r is not None)

    @property
    def failed(self) -> int:
        return len(self.failures)


def sorted_batch_order(queries: Sequence[QueryLike]) -> list[int]:
    """Indices of ``queries`` in cache-friendly execution order.

    Sorted by normalised pair, then budget, then input position — so
    identical pairs are adjacent (one frontier computation serves the
    whole run) and the order is deterministic.
    """
    return sorted(
        range(len(queries)),
        key=lambda i: (
            normalize_pair(queries[i][0], queries[i][1]),
            queries[i][2],
            i,
        ),
    )


# ----------------------------------------------------------------------
# Sequential execution
# ----------------------------------------------------------------------
def _note_deadline_exceeded(engine_name: str) -> None:
    """Count a batch query that ran out of its per-query budget."""
    registry = get_registry()
    if registry.enabled:
        registry.counter(
            "qhl_batch_deadline_exceeded_total",
            {"engine": engine_name},
            help="batch queries that ran out of per-query budget",
        ).inc()


def _note_failure(
    failures: list[BatchFailure],
    trace_id: str | None,
    engine_name: str,
    index: int,
    query: CSPQuery,
    error: str,
    message: str,
) -> None:
    """Append a failure row, flight-recording it when a recorder is on."""
    recorder = get_flight_recorder()
    flight_seq = None
    if recorder.enabled:
        entry = recorder.record(
            engine=engine_name,
            source=query.source,
            target=query.target,
            budget=query.budget,
            outcome=error,
            seconds=0.0,
            trace_id=trace_id,
            error=message,
        )
        flight_seq = entry.seq
    failures.append(
        BatchFailure(
            index, query, error, message,
            trace_id=trace_id, flight_seq=flight_seq,
        )
    )


def _run_indices(
    engine,
    queries: Sequence[QueryLike],
    indices: Sequence[int],
    want_path: bool,
    deadline_ms: float | None,
    batch_deadline,
    trace_id: str | None = None,
) -> BatchReport:
    """Run the given queries in the given order, collecting failures."""
    engine_name = getattr(engine, "name", "?")
    results: list[QueryResult | None] = [None] * len(queries)
    failures: list[BatchFailure] = []
    skipped = 0
    for i in indices:
        if batch_deadline is not None and batch_deadline.expired():
            skipped += 1
            continue
        deadline = _fresh_deadline(deadline_ms, batch_deadline)
        s, t, c = queries[i]
        try:
            results[i] = engine.query(
                s, t, c, want_path=want_path, deadline=deadline
            )
        except ReproError as exc:
            if isinstance(exc, DeadlineExceededError):
                _note_deadline_exceeded(engine_name)
            _note_failure(
                failures, trace_id, engine_name, i, CSPQuery(s, t, c),
                type(exc).__name__, str(exc),
            )
    return BatchReport(
        results=results, failures=failures, skipped=skipped,
        trace_id=trace_id,
    )


def _fresh_deadline(deadline_ms: float | None, batch_deadline):
    """Per-query deadline: its own budget, else the shared batch one."""
    if deadline_ms is not None:
        from repro.service.deadline import Deadline

        return Deadline.from_ms(deadline_ms)
    return batch_deadline


# ----------------------------------------------------------------------
# Process-pool execution
# ----------------------------------------------------------------------
_WORKER_ENGINE = None
_WORKER_SPOOL: WorkerSpool | None = None


def _init_worker(engine, spool: WorkerSpool | None) -> None:
    """Pool initializer: pin this worker's engine and trace spool.

    Announcing on the spool here (not lazily at the first chunk) means
    every spawned worker appears in the stitched trace, including ones
    that never win a chunk — they show up as ``worker.idle``.
    """
    global _WORKER_ENGINE, _WORKER_SPOOL
    _WORKER_ENGINE = engine
    _WORKER_SPOOL = spool
    if spool is not None:
        spool.announce()


def _chunk_body(indices, triples, want_path, deadline_ms, span,
                heartbeat=lambda: None):
    """The per-chunk query loop, shared by the spooled and bare paths.

    ``heartbeat`` is called before every query so a supervised worker
    stays visibly alive through arbitrarily long chunks.
    """
    engine_name = getattr(_WORKER_ENGINE, "name", "?")
    out = []
    for i, (s, t, c) in zip(indices, triples, strict=True):
        heartbeat()
        deadline = _fresh_deadline(deadline_ms, None)
        try:
            result = _WORKER_ENGINE.query(
                s, t, c, want_path=want_path, deadline=deadline
            )
        except ReproError as exc:
            if isinstance(exc, DeadlineExceededError):
                _note_deadline_exceeded(engine_name)
                span.add("deadline_exceeded", 1)
            out.append((i, None, (type(exc).__name__, str(exc))))
        else:
            out.append((i, result, None))
    span.set("queries", len(out))
    return out


def _run_chunk(payload):
    """Run one contiguous chunk of the sorted order in a worker.

    The payload carries plain triples (never engines), so only small
    tuples cross the process boundary; the engine came in via fork.
    With a spool attached, the chunk runs under a fresh worker-local
    tracer/registry whose contents are flushed as one spool record for
    the parent to stitch.
    """
    indices, triples, want_path, deadline_ms = payload
    spool = _WORKER_SPOOL
    if spool is None:
        return _chunk_body(
            indices, triples, want_path, deadline_ms, NULL_SPAN
        )
    with spool.observe("batch.worker-chunk") as root:
        return _chunk_body(indices, triples, want_path, deadline_ms, root)


def _fork_context():
    """The ``fork`` multiprocessing context, or ``None`` if unsupported."""
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


# ----------------------------------------------------------------------
# Supervised execution
# ----------------------------------------------------------------------
def _supervised_chunk(payload, span, heartbeat):
    """Supervised-pool entrypoint: one chunk, heartbeating per query.

    The engine arrives via the ``_WORKER_ENGINE`` global, set in the
    parent before the supervisor forks (and still set when it forks
    *respawns*); the supervisor's worker loop wraps this call in
    ``spool.observe``, so ``span`` is the chunk's spool-recorded root.
    """
    indices, triples, want_path, deadline_ms = payload
    return _chunk_body(
        indices, triples, want_path, deadline_ms, span, heartbeat
    )


def _split_chunk(payload):
    """Decompose a chunk payload into per-query singleton payloads."""
    indices, triples, want_path, deadline_ms = payload
    return [
        ([i], [triple], want_path, deadline_ms)
        for i, triple in zip(indices, triples, strict=True)
    ]


def _execute_batch_supervised(
    engine,
    queries: Sequence[QueryLike],
    order: list[int],
    want_path: bool,
    deadline_ms: float | None,
    workers: int,
    trace_id: str,
    supervision: SupervisionConfig | None,
) -> BatchReport:
    """The fan-out path with self-healing workers (see module docs)."""
    global _WORKER_ENGINE
    registry = get_registry()
    tracer = get_tracer()
    chunks = _contiguous_chunks(order, workers)
    payloads = [
        (chunk, [tuple(queries[i])[:3] for i in chunk],
         want_path, deadline_ms)
        for chunk in chunks
    ]
    spool = None
    if tracer.enabled or registry.enabled:
        spool = WorkerSpool.create(
            TraceContext(trace_id, "batch.fan-out"),
            want_spans=tracer.enabled,
            want_metrics=registry.enabled,
        )
    engine_name = getattr(engine, "name", "?")
    results: list[QueryResult | None] = [None] * len(queries)
    failures: list[BatchFailure] = []
    incidents: list = []
    _WORKER_ENGINE = engine
    try:
        with tracer.span("batch.fan-out") as parent:
            parent.set("workers", workers)
            parent.set("queries", len(queries))
            parent.set("chunks", len(chunks))
            parent.set("supervised", 1)
            pool = SupervisedPool(
                _supervised_chunk,
                workers,
                config=supervision,
                spool=spool,
                label="batch.worker-chunk",
                split=_split_chunk,
                trace_id=trace_id,
            )
            report = pool.run(payloads)
            incidents = pool.supervisor.incidents.records()
            # run() fully stopped the fleet: clean workers flushed
            # their end markers, so stitching is safe — and the pid
            # succession map is final, so truncated spans can be
            # joined to their respawned successors.
            if spool is not None:
                stitch(spool, parent=parent)
                annotate_succession(parent, pool.supervisor)
        for chunk_out in report.results.values():
            for i, result, failure in chunk_out:
                if failure is not None:
                    s, t, c = tuple(queries[i])[:3]
                    _note_failure(
                        failures, trace_id, engine_name, i,
                        CSPQuery(s, t, c), *failure,
                    )
                else:
                    results[i] = result
        for lost in report.failures:
            indices, triples, _, _ = lost.payload
            for i, (s, t, c) in zip(indices, triples, strict=True):
                _note_failure(
                    failures, trace_id, engine_name, i,
                    CSPQuery(s, t, c), lost.error,
                    f"{lost.message} (attempts: {lost.attempts})",
                )
    finally:
        _WORKER_ENGINE = None
        if spool is not None:
            spool.cleanup()
    failures.sort(key=lambda f: f.index)
    return BatchReport(
        results=results, failures=failures, trace_id=trace_id,
        incidents=incidents,
    )


# ----------------------------------------------------------------------
def execute_batch(
    engine,
    queries: Sequence[QueryLike],
    want_path: bool = False,
    deadline_ms: float | None = None,
    batch_deadline_ms: float | None = None,
    workers: int = 0,
    trace_id: str | None = None,
    supervised: bool = False,
    supervision: SupervisionConfig | None = None,
) -> BatchReport:
    """Run a whole workload through ``engine``.

    Parameters
    ----------
    engine:
        Anything with ``query(s, t, C, want_path=..., deadline=...)``.
        A :class:`~repro.perf.cached_engine.CachedQHLEngine` benefits
        most (the sorted order maximises its frontier reuse), but any
        engine gains the failure tolerance and deadline handling.
    queries:
        ``CSPQuery`` instances or plain ``(s, t, C)`` triples.
    deadline_ms:
        Per-query time budget; an over-budget query lands in
        ``failures`` and the batch continues.
    batch_deadline_ms:
        Shared budget for the whole batch; once it expires the
        remaining queries are counted in ``skipped``.  Incompatible
        with ``workers`` (a wall-clock budget cannot be shared across
        processes) — raises :class:`ValueError` if both are given.
    workers:
        ``0``/``1`` runs sequentially.  ``>= 2`` fans the sorted order
        out over a process pool: contiguous chunks of the sorted order
        (so repeated pairs stay on one worker's cache) run on
        per-worker engine handles inherited by fork.  Platforms
        without the ``fork`` start method fall back to sequential.
    trace_id:
        Joins this batch to an existing trace; minted fresh when
        omitted.  The id lands on the report and every failure row.
    supervised:
        With ``workers >= 2``, run the fan-out on a
        :class:`~repro.supervise.pool.SupervisedPool`: dead workers
        are respawned and their lost chunk retried, so a mid-batch
        SIGKILL no longer costs its chunk.  Ignored (sequential
        fallback) where ``fork`` is unavailable.
    supervision:
        Optional :class:`~repro.supervise.supervisor.
        SupervisionConfig` overriding heartbeat/restart/retry policy.
    """
    if workers >= 2 and batch_deadline_ms is not None:
        raise ValueError(
            "batch_deadline_ms cannot be combined with workers: a "
            "shared wall-clock budget does not cross process boundaries"
        )
    if trace_id is None:
        trace_id = new_trace_id()
    registry = get_registry()
    tracer = get_tracer()
    if registry.enabled:
        registry.counter(
            "qhl_batch_queries_total",
            {"engine": getattr(engine, "name", "?")},
            help="queries submitted through the batch API",
        ).inc(len(queries))
    order = sorted_batch_order(queries)
    batch_deadline = None
    if batch_deadline_ms is not None:
        from repro.service.deadline import Deadline

        batch_deadline = Deadline.from_ms(batch_deadline_ms)

    context = _fork_context() if workers >= 2 else None
    if context is None:
        if registry.enabled:
            registry.gauge(
                "qhl_batch_workers",
                help="process-pool size of the last batch run",
            ).set(1)
        with tracer.span("batch.run") as span:
            span.set("queries", len(queries))
            return _run_indices(
                engine, queries, order, want_path, deadline_ms,
                batch_deadline, trace_id=trace_id,
            )

    if registry.enabled:
        registry.gauge(
            "qhl_batch_workers",
            help="process-pool size of the last batch run",
        ).set(workers)
    if supervised:
        return _execute_batch_supervised(
            engine, queries, order, want_path, deadline_ms, workers,
            trace_id, supervision,
        )
    chunks = _contiguous_chunks(order, workers)
    spool = None
    if tracer.enabled or registry.enabled:
        spool = WorkerSpool.create(
            TraceContext(trace_id, "batch.fan-out"),
            want_spans=tracer.enabled,
            want_metrics=registry.enabled,
        )
    engine_name = getattr(engine, "name", "?")
    results: list[QueryResult | None] = [None] * len(queries)
    failures: list[BatchFailure] = []
    chunk_outs: list[list | None] = []
    try:
        with tracer.span("batch.fan-out") as parent:
            parent.set("workers", workers)
            parent.set("queries", len(queries))
            parent.set("chunks", len(chunks))
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(engine, spool),
            ) as pool:
                futures = [
                    pool.submit(
                        _run_chunk,
                        (
                            chunk,
                            [tuple(queries[i])[:3] for i in chunk],
                            want_path,
                            deadline_ms,
                        ),
                    )
                    for chunk in chunks
                ]
                for future in futures:
                    try:
                        chunk_outs.append(future.result())
                    except BrokenProcessPool:
                        chunk_outs.append(None)
            # The executor has shut down (or broken): clean workers
            # have flushed their end markers, so stitching is safe and
            # anything announced-but-unended is genuinely dead.
            if spool is not None:
                stitch(spool, parent=parent)
        for chunk, chunk_out in zip(chunks, chunk_outs, strict=True):
            if chunk_out is None:
                for i in chunk:
                    s, t, c = tuple(queries[i])[:3]
                    _note_failure(
                        failures, trace_id, engine_name, i,
                        CSPQuery(s, t, c), "WorkerCrashError",
                        "worker process died before answering "
                        "(process pool broken)",
                    )
                continue
            for i, result, failure in chunk_out:
                if failure is not None:
                    s, t, c = tuple(queries[i])[:3]
                    _note_failure(
                        failures, trace_id, engine_name, i,
                        CSPQuery(s, t, c), *failure,
                    )
                else:
                    results[i] = result
    finally:
        if spool is not None:
            spool.cleanup()
    failures.sort(key=lambda f: f.index)
    return BatchReport(
        results=results, failures=failures, trace_id=trace_id
    )


def _contiguous_chunks(order: list[int], workers: int) -> list[list[int]]:
    """Split the sorted order into at most ``workers`` contiguous runs.

    Contiguity matters: the order groups repeated pairs, so keeping
    runs intact keeps each pair's frontier on a single worker.
    """
    if not order:
        return []
    chunk_size = max(1, (len(order) + workers - 1) // workers)
    return [
        order[i:i + chunk_size] for i in range(0, len(order), chunk_size)
    ]
