"""Batched query execution.

One batch API for every engine in the package:

* :func:`sorted_batch_order` — the execution order that maximises
  skyline-cache reuse: queries sorted by normalised ``(s, t)`` pair
  (then budget), so repeated pairs run back-to-back and a cached
  frontier is hot when its siblings arrive.
* :func:`execute_batch` — run a workload through an engine, tolerant
  of per-query failures, honouring per-query and per-batch deadlines
  (the PR-2 checkpoints are preserved: the batch deadline is checked
  between queries and threaded *into* each engine call), optionally
  fanned out across a ``concurrent.futures`` process pool with a
  per-worker engine handle.

The pool uses the ``fork`` start method so workers inherit the engine
(index included) without pickling its deep provenance structures; on
platforms without ``fork`` the batch silently runs sequentially.
Results always come back in the *input* order, bit-identical to a
sequential run (each query's answer is independent of batch order).
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from dataclasses import dataclass, field
from typing import Sequence

from repro.exceptions import ReproError
from repro.observability.metrics import get_registry
from repro.perf.cache import normalize_pair
from repro.types import CSPQuery, QueryResult

QueryLike = CSPQuery | tuple[int, int, float]


@dataclass(frozen=True)
class BatchFailure:
    """One batch query that raised instead of answering."""

    index: int
    query: CSPQuery
    error: str
    message: str


@dataclass
class BatchReport:
    """Outcome of one :func:`execute_batch` run.

    ``results[i]`` answers ``queries[i]``; it is ``None`` when that
    query failed (see ``failures``) or was skipped because the batch
    deadline expired first.
    """

    results: list[QueryResult | None]
    failures: list[BatchFailure] = field(default_factory=list)
    skipped: int = 0

    @property
    def answered(self) -> int:
        """Queries that produced a result."""
        return sum(1 for r in self.results if r is not None)

    @property
    def failed(self) -> int:
        return len(self.failures)


def sorted_batch_order(queries: Sequence[QueryLike]) -> list[int]:
    """Indices of ``queries`` in cache-friendly execution order.

    Sorted by normalised pair, then budget, then input position — so
    identical pairs are adjacent (one frontier computation serves the
    whole run) and the order is deterministic.
    """
    return sorted(
        range(len(queries)),
        key=lambda i: (
            normalize_pair(queries[i][0], queries[i][1]),
            queries[i][2],
            i,
        ),
    )


# ----------------------------------------------------------------------
# Sequential execution
# ----------------------------------------------------------------------
def _run_indices(
    engine,
    queries: Sequence[QueryLike],
    indices: Sequence[int],
    want_path: bool,
    deadline_ms: float | None,
    batch_deadline,
) -> BatchReport:
    """Run the given queries in the given order, collecting failures."""
    results: list[QueryResult | None] = [None] * len(queries)
    failures: list[BatchFailure] = []
    skipped = 0
    for i in indices:
        if batch_deadline is not None and batch_deadline.expired():
            skipped += 1
            continue
        deadline = _fresh_deadline(deadline_ms, batch_deadline)
        s, t, c = queries[i]
        try:
            results[i] = engine.query(
                s, t, c, want_path=want_path, deadline=deadline
            )
        except ReproError as exc:
            failures.append(
                BatchFailure(
                    i, CSPQuery(s, t, c), type(exc).__name__, str(exc)
                )
            )
    return BatchReport(results=results, failures=failures, skipped=skipped)


def _fresh_deadline(deadline_ms: float | None, batch_deadline):
    """Per-query deadline: its own budget, else the shared batch one."""
    if deadline_ms is not None:
        from repro.service.deadline import Deadline

        return Deadline.from_ms(deadline_ms)
    return batch_deadline


# ----------------------------------------------------------------------
# Process-pool execution
# ----------------------------------------------------------------------
_WORKER_ENGINE = None


def _init_worker(engine) -> None:
    """Pool initializer: pin this worker's private engine handle."""
    global _WORKER_ENGINE
    _WORKER_ENGINE = engine


def _run_chunk(payload):
    """Run one contiguous chunk of the sorted order in a worker.

    The payload carries plain triples (never entries), so only small
    tuples cross the process boundary; the engine came in via fork.
    """
    indices, triples, want_path, deadline_ms = payload
    out = []
    for i, (s, t, c) in zip(indices, triples):
        deadline = _fresh_deadline(deadline_ms, None)
        try:
            result = _WORKER_ENGINE.query(
                s, t, c, want_path=want_path, deadline=deadline
            )
        except ReproError as exc:
            out.append((i, None, (type(exc).__name__, str(exc))))
        else:
            out.append((i, result, None))
    return out


def _fork_context():
    """The ``fork`` multiprocessing context, or ``None`` if unsupported."""
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


# ----------------------------------------------------------------------
def execute_batch(
    engine,
    queries: Sequence[QueryLike],
    want_path: bool = False,
    deadline_ms: float | None = None,
    batch_deadline_ms: float | None = None,
    workers: int = 0,
) -> BatchReport:
    """Run a whole workload through ``engine``.

    Parameters
    ----------
    engine:
        Anything with ``query(s, t, C, want_path=..., deadline=...)``.
        A :class:`~repro.perf.cached_engine.CachedQHLEngine` benefits
        most (the sorted order maximises its frontier reuse), but any
        engine gains the failure tolerance and deadline handling.
    queries:
        ``CSPQuery`` instances or plain ``(s, t, C)`` triples.
    deadline_ms:
        Per-query time budget; an over-budget query lands in
        ``failures`` and the batch continues.
    batch_deadline_ms:
        Shared budget for the whole batch; once it expires the
        remaining queries are counted in ``skipped``.  Incompatible
        with ``workers`` (a wall-clock budget cannot be shared across
        processes) — raises :class:`ValueError` if both are given.
    workers:
        ``0``/``1`` runs sequentially.  ``>= 2`` fans the sorted order
        out over a process pool: contiguous chunks of the sorted order
        (so repeated pairs stay on one worker's cache) run on
        per-worker engine handles inherited by fork.  Platforms
        without the ``fork`` start method fall back to sequential.
    """
    if workers >= 2 and batch_deadline_ms is not None:
        raise ValueError(
            "batch_deadline_ms cannot be combined with workers: a "
            "shared wall-clock budget does not cross process boundaries"
        )
    registry = get_registry()
    if registry.enabled:
        registry.counter(
            "qhl_batch_queries_total",
            {"engine": getattr(engine, "name", "?")},
            help="queries submitted through the batch API",
        ).inc(len(queries))
    order = sorted_batch_order(queries)
    batch_deadline = None
    if batch_deadline_ms is not None:
        from repro.service.deadline import Deadline

        batch_deadline = Deadline.from_ms(batch_deadline_ms)

    context = _fork_context() if workers >= 2 else None
    if context is None:
        if registry.enabled:
            registry.gauge(
                "qhl_batch_workers",
                help="process-pool size of the last batch run",
            ).set(1)
        return _run_indices(
            engine, queries, order, want_path, deadline_ms, batch_deadline
        )

    if registry.enabled:
        registry.gauge(
            "qhl_batch_workers",
            help="process-pool size of the last batch run",
        ).set(workers)
    chunks = _contiguous_chunks(order, workers)
    results: list[QueryResult | None] = [None] * len(queries)
    failures: list[BatchFailure] = []
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=_init_worker,
        initargs=(engine,),
    ) as pool:
        payloads = [
            (
                chunk,
                [tuple(queries[i])[:3] for i in chunk],
                want_path,
                deadline_ms,
            )
            for chunk in chunks
        ]
        for chunk_out in pool.map(_run_chunk, payloads):
            for i, result, failure in chunk_out:
                if failure is not None:
                    s, t, c = tuple(queries[i])[:3]
                    failures.append(
                        BatchFailure(i, CSPQuery(s, t, c), *failure)
                    )
                else:
                    results[i] = result
    failures.sort(key=lambda f: f.index)
    return BatchReport(results=results, failures=failures)


def _contiguous_chunks(order: list[int], workers: int) -> list[list[int]]:
    """Split the sorted order into at most ``workers`` contiguous runs.

    Contiguity matters: the order groups repeated pairs, so keeping
    runs intact keeps each pair's frontier on a single worker.
    """
    if not order:
        return []
    chunk_size = max(1, (len(order) + workers - 1) // workers)
    return [
        order[i:i + chunk_size] for i in range(0, len(order), chunk_size)
    ]
