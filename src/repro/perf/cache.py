"""The constraint-monotone skyline query cache.

The key observation (Liu et al.'s FHL line of work exploits the same
reuse): QHL re-derives the per-hoplink sets ``P_sh`` / ``P_ht`` for
every ``(s, t, C)`` query, yet the *full* s-t skyline frontier answers
every constraint value ``C`` for that pair at once.  On a canonical
frontier (cost-sorted, weight-decreasing, dominance-free) the optimum
for any budget ``C`` is the last entry with ``cost <= C`` — a binary
search, zero label work.  Exactness follows from the skyline dominance
invariant: every feasible s-t path is dominated by a frontier member,
so the lowest-weight frontier entry within budget *is* the CSP optimum
(see ``docs/performance.md`` for the full argument).

:class:`SkylineCache` is the storage half: an LRU over normalised
``(s, t)`` pairs (the network is undirected, so ``P_st = P_ts`` and
both orientations share one slot).  The compute half lives in
:class:`repro.perf.cached_engine.CachedQHLEngine`.

Hit/miss/eviction counters mirror into the PR-1 metrics registry when
one is live (``qhl_cache_{hits,misses,evictions}_total`` and the
``qhl_cache_entries`` gauge); the local integer counters are always
maintained so tests and reports work without a registry.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.observability.metrics import get_registry
from repro.skyline.set_ops import SkylineSet

PairKey = tuple[int, int]


def normalize_pair(s: int, t: int) -> PairKey:
    """The cache key for an unordered vertex pair.

    The network is undirected, so ``(s, t)`` and ``(t, s)`` map to the
    same frontier; the smaller vertex id goes first.
    """
    return (s, t) if s <= t else (t, s)


@dataclass
class CacheStats:
    """Point-in-time counters of one :class:`SkylineCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    capacity: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never consulted)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class SkylineCache:
    """LRU cache of full s-t skyline frontiers, keyed by vertex pair.

    Values are canonical skyline sets and are treated as immutable:
    callers must never mutate a frontier they ``get`` back, because the
    same list object is handed to every hit (and may alias a label set
    for ancestor-descendant pairs).
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[PairKey, SkylineSet] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: PairKey) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    def get(self, s: int, t: int) -> SkylineSet | None:
        """The cached frontier for the pair, or ``None`` on a miss.

        A hit refreshes the pair's LRU position.
        """
        key = normalize_pair(s, t)
        frontier = self._entries.get(key)
        registry = get_registry()
        if frontier is None:
            self.misses += 1
            if registry.enabled:
                registry.counter(
                    "qhl_cache_misses_total",
                    help="skyline cache lookups that missed",
                ).inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if registry.enabled:
            registry.counter(
                "qhl_cache_hits_total",
                help="skyline cache lookups answered from the cache",
            ).inc()
        return frontier

    def put(self, s: int, t: int, frontier: SkylineSet) -> None:
        """Store the frontier, evicting the LRU pair when full."""
        key = normalize_pair(s, t)
        registry = get_registry()
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = frontier
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            if registry.enabled:
                registry.counter(
                    "qhl_cache_evictions_total",
                    help="skyline cache LRU evictions",
                ).inc()
        if registry.enabled:
            registry.gauge(
                "qhl_cache_entries",
                help="skyline frontiers currently cached",
            ).set(len(self._entries))

    def clear(self) -> None:
        """Drop every cached frontier (counters are kept)."""
        self._entries.clear()
        registry = get_registry()
        if registry.enabled:
            registry.gauge("qhl_cache_entries").set(0)

    def invalidate_all(self) -> int:
        """Drop every frontier because the underlying labels changed.

        Unlike :meth:`clear` (a capacity/test housekeeping tool), this
        is the *coherence* hook: the dynamic repair bumps the label
        store's version, and caching engines call this so no reader is
        ever served a pre-update frontier.  Returns the number of
        entries dropped and counts one invalidation event.
        """
        dropped = len(self._entries)
        self._entries.clear()
        self.invalidations += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "qhl_cache_invalidations_total",
                help="whole-cache invalidations after label updates",
            ).inc()
            registry.gauge("qhl_cache_entries").set(0)
        return dropped

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        """A snapshot of the hit/miss/eviction counters."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            entries=len(self._entries),
            capacity=self.capacity,
            invalidations=self.invalidations,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SkylineCache({len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
