"""QHL behind a skyline-frontier cache.

:class:`CachedQHLEngine` answers ``(s, t, C)`` queries from the full
s-t skyline frontier instead of re-running the per-budget pipeline:

* **miss** — compute the exact frontier ``P_st`` once (labels +
  separator, no budget cap, *no pruning conditions*: conditions are
  budget-dependent, the frontier must hold for every budget) and cache
  it under the normalised pair;
* **hit** — answer by binary search (:func:`~repro.skyline.set_ops.
  best_under`) over the cached frontier in ``O(log k)`` with zero
  label work.

The frontier computation is exact for the same reason labels are: the
initial separator ``H`` is a vertex cut between ``s`` and ``t``, every
s-t path crosses some ``h ∈ H``, and the crossing path is dominated by
a concatenation of members of ``P_sh`` and ``P_ht``; so the skyline of
``⋃_h P_sh ⊗ P_ht`` is exactly ``P_st``.  The answer for any ``C`` is
then the lowest-weight frontier entry with ``cost <= C`` — the same
``(weight, cost)`` pair every other engine in this package returns
(they all pick the cheapest among minimum-weight answers).

``(weight, cost)`` pairs are bit-identical to the uncached
:class:`~repro.core.qhl.QHLEngine`; :class:`~repro.types.QueryStats`
are not (a hit does no label work), which is the point.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

from repro.core.separators import (
    LabelFetcher,
    estimated_cost,
    initial_separators,
)
from repro.hierarchy.lca import LCAIndex
from repro.hierarchy.tree import TreeDecomposition
from repro.labeling.labels import LabelStore
from repro.observability.metrics import get_registry, observe_query
from repro.perf.cache import SkylineCache, normalize_pair
from repro.skyline.entries import expand, zero_entry
from repro.skyline.set_ops import SkylineSet, best_under, join, merge
from repro.types import CSPQuery, QueryResult, QueryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.deadline import Deadline


class CachedQHLEngine:
    """QHL with an LRU of full s-t skyline frontiers.

    Shares the tree / labels / LCA of the index it came from (use
    :meth:`repro.core.engine.QHLIndex.cached_engine`), so cached and
    uncached engines answer over identical data.
    """

    name = "QHL+cache"

    def __init__(
        self,
        tree: TreeDecomposition,
        labels: LabelStore,
        lca: LCAIndex | None = None,
        cache: SkylineCache | int = 1024,
    ):
        self._tree = tree
        self._labels = labels
        self._lca = lca if lca is not None else LCAIndex(tree)
        self.cache = (
            cache if isinstance(cache, SkylineCache) else SkylineCache(cache)
        )
        self._label_version = getattr(labels, "version", 0)

    def _check_coherence(self) -> None:
        """Invalidate the cache if the labels moved under us.

        Every cached frontier was derived from the label store; a
        dynamic repair that changes any label bumps
        :attr:`~repro.labeling.labels.LabelStore.version`, and serving
        pre-update frontiers after that would be silently wrong (the
        stale-answer bug this guard closes).
        """
        version = getattr(self._labels, "version", 0)
        if version != self._label_version:
            self.cache.invalidate_all()
            self._label_version = version

    # ------------------------------------------------------------------
    def query(
        self,
        source: int,
        target: int,
        budget: float,
        want_path: bool = False,
        deadline: "Deadline | None" = None,
    ) -> QueryResult:
        """Answer one CSP query from the (possibly just-built) frontier."""
        query = CSPQuery(source, target, budget).validated(
            self._tree.num_vertices
        )
        stats = QueryStats()
        started = time.perf_counter()
        self._check_coherence()
        if deadline is not None:
            deadline.check(stats)
        if source == target:
            stats.seconds = time.perf_counter() - started
            return QueryResult(
                query, weight=0, cost=0,
                path=[source] if want_path else None, stats=stats,
            )
        frontier = self.cache.get(source, target)
        if frontier is None:
            frontier = self._compute_frontier(
                source, target, stats, deadline
            )
            self.cache.put(source, target, frontier)
        best = best_under(frontier, budget)
        stats.seconds = time.perf_counter() - started
        registry = get_registry()
        if registry.enabled:
            observe_query(registry, self.name, stats)
        if best is None:
            return QueryResult(query, stats=stats)
        path = expand(best, source, target) if want_path else None
        return QueryResult(
            query, weight=best[0], cost=best[1], path=path, stats=stats
        )

    def query_many(
        self,
        queries: Sequence[CSPQuery | tuple[int, int, float]],
        want_path: bool = False,
        deadline: "Deadline | None" = None,
    ) -> list[QueryResult]:
        """Batched :meth:`query`, sorted internally for cache reuse.

        Results come back in the *input* order.  See
        :func:`repro.perf.batch.execute_batch` for the failure-tolerant
        / multi-process variant.
        """
        from repro.perf.batch import sorted_batch_order

        results: list[QueryResult | None] = [None] * len(queries)
        for i in sorted_batch_order(queries):
            s, t, c = queries[i]
            results[i] = self.query(
                s, t, c, want_path=want_path, deadline=deadline
            )
        return results

    # ------------------------------------------------------------------
    def frontier(
        self,
        source: int,
        target: int,
        deadline: "Deadline | None" = None,
    ) -> SkylineSet:
        """The exact skyline frontier ``P_st``, through the cache."""
        self._check_coherence()
        if source == target:
            return [zero_entry(source, with_prov=self._labels.store_paths)]
        cached = self.cache.get(source, target)
        if cached is not None:
            return cached
        frontier = self._compute_frontier(
            source, target, QueryStats(), deadline
        )
        self.cache.put(source, target, frontier)
        return frontier

    def _compute_frontier(
        self,
        source: int,
        target: int,
        stats: QueryStats,
        deadline: "Deadline | None" = None,
    ) -> SkylineSet:
        """Compute the full exact ``P_st`` (the cache-miss path).

        Works on the normalised pair so both orientations produce the
        identical frontier object; entries expand in either direction
        (the network is undirected).
        """
        s, t = normalize_pair(source, target)
        lca_v, s_is_anc, t_is_anc = self._lca.relation(s, t)
        if s_is_anc or t_is_anc:
            # The label set *is* the frontier for ancestor pairs.
            stats.label_lookups += 1
            return self._labels.get(s, t)

        c_s, h_s, c_t, h_t = initial_separators(self._tree, lca_v, s, t)
        fetcher = LabelFetcher(self._labels, s, t)
        # Either initial separator alone is a full s-t cut; take the one
        # with the smaller estimated concatenation cost.  Pruning
        # conditions are deliberately NOT applied: a pruned separator is
        # only valid below its condition's budget threshold, while the
        # frontier must answer every budget.
        hoplinks = min(
            (h_s, h_t), key=lambda h: estimated_cost(fetcher, h)
        )
        stats.hoplinks = len(hoplinks)
        acc: SkylineSet = []
        for h in hoplinks:
            if deadline is not None:
                deadline.check(stats)
            p_sh = fetcher.from_s(h)
            p_ht = fetcher.from_t(h)
            stats.concatenations += len(p_sh) * len(p_ht)
            through_h = join(p_sh, p_ht, mid=h)
            acc = merge(acc, through_h) if acc else through_h
        stats.label_lookups += fetcher.lookups
        return acc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CachedQHLEngine({self.cache!r})"
