"""Hardened data plane: validating ingestion, resumable builds, audits.

Three pillars (see ``docs/robustness.md``, "Build hardening & index
audit"):

* :mod:`repro.resilience.ingest` — strict/lenient parsing of the DIMACS
  and CSP text formats with typed :class:`~repro.exceptions.
  GraphFormatError` (path/line/column context), explicit duplicate-edge
  and self-loop policies, and a documented largest-connected-component
  fallback for disconnected inputs.
* :mod:`repro.resilience.checkpoint` — per-level checkpoints for the
  (multi-minute on real road networks) label build, written through the
  atomic/checksummed storage envelope, so an interrupted build resumes
  from the last completed level and lands on bytes identical to a fresh
  build; plus a time/memory budget watchdog that checkpoints-then-raises.
* :mod:`repro.resilience.audit` — deep structural + semantic self-audit
  of a built or loaded index (skyline canonicality, hoplink coverage,
  tree/LCA well-formedness, seeded spot-checks against constrained
  Dijkstra), surfaced as the ``repro-qhl verify`` CLI command and the
  :class:`~repro.service.ladder.QueryService` ``require_audit`` gate.
"""

from repro.resilience.audit import AuditCheck, AuditReport, audit_index
from repro.resilience.checkpoint import (
    BuildBudget,
    CheckpointStore,
    build_labels_checkpointed,
)
from repro.resilience.ingest import (
    LENIENT,
    STRICT,
    IngestReport,
    ParsePolicy,
    load_csp_network,
    load_dimacs_network,
)

__all__ = [
    "AuditCheck",
    "AuditReport",
    "BuildBudget",
    "CheckpointStore",
    "IngestReport",
    "LENIENT",
    "ParsePolicy",
    "STRICT",
    "audit_index",
    "build_labels_checkpointed",
    "load_csp_network",
    "load_dimacs_network",
]
