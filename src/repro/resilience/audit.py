"""Deep self-audit of a built QHL index.

A QHL index is only as good as its invariants: the tree decomposition
must satisfy Definition 7 and Properties 1-2, every skyline set must be
canonical (cost strictly increasing, weight strictly decreasing — i.e.
dominance-free), every vertex's label must cover exactly its ancestor
chain, the LCA structure must agree with the raw parent pointers, and —
the only *semantic* check — a sample of queries must agree with the
exact constrained-Dijkstra baseline.

:func:`audit_index` runs all of these and returns a machine-readable
:class:`AuditReport`; the ``repro verify`` CLI command and the query
service's opt-in ``require_audit`` gate are thin wrappers around it.
Each class of corruption the storage layer cannot catch with a checksum
(a bit flip *before* the checksum was computed, a buggy build, a
hand-edited file) maps to a named check, so the corruption-matrix test
in ``tests/service/`` can assert one check — and only the right one —
trips per seeded defect.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field

from repro.observability.metrics import get_registry
from repro.observability.tracing import get_tracer

#: Per-check cap on recorded problem strings (the counts are exact; only
#: the examples are truncated).
MAX_PROBLEMS = 20


@dataclass
class AuditCheck:
    """Outcome of one named invariant check."""

    name: str
    checked: int = 0
    problem_count: int = 0
    problems: list[str] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.problem_count == 0

    def add(self, problem: str) -> None:
        self.problem_count += 1
        if len(self.problems) < MAX_PROBLEMS:
            self.problems.append(problem)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "checked": self.checked,
            "problem_count": self.problem_count,
            "problems": list(self.problems),
            "seconds": round(self.seconds, 6),
        }


@dataclass
class AuditReport:
    """Machine-readable result of :func:`audit_index`."""

    checks: list[AuditCheck] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def check(self, name: str) -> AuditCheck:
        for check in self.checks:
            if check.name == name:
                return check
        raise KeyError(name)

    def failed_checks(self) -> list[str]:
        return [check.name for check in self.checks if not check.ok]

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seconds": round(self.seconds, 6),
            "checks": [check.to_dict() for check in self.checks],
        }

    def summary(self) -> str:
        """Human-readable multi-line summary (one line per check)."""
        lines = []
        for check in self.checks:
            status = "ok" if check.ok else "FAIL"
            line = (
                f"{status:4s} {check.name:16s} "
                f"checked={check.checked}"
            )
            if not check.ok:
                line += f" problems={check.problem_count}"
            lines.append(line)
            for problem in check.problems[:3]:
                lines.append(f"       - {problem}")
            if check.problem_count > 3:
                lines.append(
                    f"       … and {check.problem_count - 3} more"
                )
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"audit {verdict} in {self.seconds:.2f}s")
        return "\n".join(lines)


def audit_index(
    index,
    queries: int = 8,
    seed: int = 0,
    deep_tree: bool | None = None,
) -> AuditReport:
    """Audit a :class:`~repro.core.engine.QHLIndex` (or a flat/mmap
    :class:`~repro.core.flat.FlatIndex`) end to end.

    Runs six named checks — seven for flat indexes, which add the
    ``flat-columns`` structural check (offset-table monotonicity and
    per-vertex hub sortedness, the invariants behind the flat engine's
    binary searches):

    ``tree-structure``
        Definition 7 plus Properties 1-2 via
        :mod:`repro.hierarchy.validation`.  The Definition-7 subtree
        check is quadratic, so it is skipped above 2000 vertices unless
        ``deep_tree=True`` (Properties 1-2 always run).
    ``label-order``
        Every stored skyline set has strictly increasing costs.
    ``label-dominance``
        Every stored skyline set has strictly decreasing weights (with
        costs increasing this is exactly dominance-freeness), and every
        entry's metrics are finite and non-negative.
    ``label-coverage``
        ``L(v)`` covers exactly the ancestor chain of ``X(v)`` — a
        dropped hoplink or a truncated label table both surface here.
    ``lca``
        The Euler-tour LCA structure agrees with a naive parent-chain
        walk on seeded random pairs.
    ``spot-check``
        ``queries`` seeded random CSP queries answered by the QHL
        engine agree (feasibility and optimal weight) with the exact
        constrained-Dijkstra baseline.

    Pure function of ``(index, queries, seed)`` — a private
    ``random.Random(seed)`` drives all sampling.  Never raises on a bad
    index; defects land in the returned report (use
    :class:`~repro.exceptions.AuditError` at the call site to escalate).
    """
    report = AuditReport()
    started = time.perf_counter()
    with get_tracer().span("audit.index") as span:
        report.checks.append(_check_tree(index, deep_tree))
        if hasattr(index.labels, "validate_structure"):
            report.checks.append(_check_flat_columns(index))
        report.checks.append(_check_label_order(index))
        report.checks.append(_check_label_dominance(index))
        report.checks.append(_check_label_coverage(index))
        report.checks.append(_check_lca(index, seed))
        report.checks.append(_check_queries(index, queries, seed))
        span.set("ok", report.ok)
        span.set("failed", ",".join(report.failed_checks()))
    report.seconds = time.perf_counter() - started

    registry = get_registry()
    if registry.enabled:
        registry.gauge(
            "audit_seconds", help="duration of the last index audit"
        ).set(report.seconds)
        registry.counter(
            "audit_runs_total",
            {"status": "pass" if report.ok else "fail"},
            help="index audits by outcome",
        ).inc()
        for check in report.checks:
            registry.counter(
                "audit_checks_total",
                {"check": check.name, "status": "pass" if check.ok else "fail"},
                help="audit checks by name and outcome",
            ).inc()
            if check.problem_count:
                registry.counter(
                    "audit_problems_total",
                    {"check": check.name},
                    help="invariant violations found by audits",
                ).inc(check.problem_count)
    return report


# ----------------------------------------------------------------------
# Individual checks
# ----------------------------------------------------------------------
def _timed(check: AuditCheck, started: float) -> AuditCheck:
    check.seconds = time.perf_counter() - started
    return check


def _check_tree(index, deep_tree: bool | None) -> AuditCheck:
    from repro.hierarchy.validation import (
        validate_definition7,
        validate_property1,
        validate_property2,
    )

    check = AuditCheck("tree-structure")
    started = time.perf_counter()
    tree = index.tree
    run_deep = (
        deep_tree
        if deep_tree is not None
        else tree.num_vertices <= 2000
    )
    try:
        problems = list(validate_property1(tree))
        problems += validate_property2(tree)
        check.checked = 2
        if run_deep:
            problems += validate_definition7(index.network, tree)
            check.checked = 3
        for problem in problems:
            check.add(problem)
    except Exception as exc:  # lint: allow=QHL002 corrupt structures can throw anywhere; the audit's job is to report, not to crash
        check.add(f"tree validation raised {type(exc).__name__}: {exc}")
    return _timed(check, started)


def _check_flat_columns(index) -> AuditCheck:
    """Structural audit of a flat label store's offset tables.

    Runs only for indexes whose labels expose ``validate_structure``
    (:class:`~repro.storage.flat.FlatLabelStore`): offset monotonicity
    and per-vertex hub sortedness — the invariants the flat engine's
    binary searches assume.  Cost-sortedness and dominance-freeness of
    the entry columns are covered by ``label-order`` /
    ``label-dominance``, which iterate the store's ``items()`` like any
    object store.
    """
    check = AuditCheck("flat-columns")
    started = time.perf_counter()
    labels = index.labels
    check.checked = labels.num_sets() + labels.num_vertices
    try:
        for problem in labels.validate_structure():
            check.add(problem)
    except Exception as exc:  # lint: allow=QHL002 corrupt offset tables can raise anywhere; the audit's job is to report, not to crash
        check.add(
            f"column validation raised {type(exc).__name__}: {exc}"
        )
    return _timed(check, started)


def _check_label_order(index) -> AuditCheck:
    check = AuditCheck("label-order")
    started = time.perf_counter()
    for v, u, entries in index.labels.items():
        check.checked += 1
        prev_cost = None
        for i, entry in enumerate(entries):
            cost = entry[1]
            if prev_cost is not None and cost <= prev_cost:
                check.add(
                    f"P({v}, {u}) entry {i}: cost {cost!r} not strictly "
                    f"above previous {prev_cost!r}"
                )
                break
            prev_cost = cost
    return _timed(check, started)


def _check_label_dominance(index) -> AuditCheck:
    check = AuditCheck("label-dominance")
    started = time.perf_counter()
    for v, u, entries in index.labels.items():
        check.checked += 1
        prev_weight = None
        for i, entry in enumerate(entries):
            weight, cost = entry[0], entry[1]
            if not (
                math.isfinite(weight)
                and math.isfinite(cost)
                and weight >= 0
                and cost >= 0
            ):
                check.add(
                    f"P({v}, {u}) entry {i}: non-finite or negative "
                    f"metrics ({weight!r}, {cost!r})"
                )
                break
            if prev_weight is not None and weight >= prev_weight:
                check.add(
                    f"P({v}, {u}) entry {i}: weight {weight!r} not "
                    f"strictly below previous {prev_weight!r} "
                    "(dominated entry)"
                )
                break
            prev_weight = weight
    return _timed(check, started)


def _check_label_coverage(index) -> AuditCheck:
    check = AuditCheck("label-coverage")
    started = time.perf_counter()
    tree = index.tree
    labels = index.labels
    for v in range(tree.num_vertices):
        check.checked += 1
        expected = set(tree.ancestors(v))
        actual = set(labels.label(v).keys())
        missing = expected - actual
        extra = actual - expected
        if missing:
            sample = sorted(missing)[:3]
            check.add(
                f"L({v}) is missing {len(missing)} ancestor hub(s), "
                f"e.g. {sample} (dropped hoplink or truncated table)"
            )
        if extra:
            sample = sorted(extra)[:3]
            check.add(
                f"L({v}) has {len(extra)} non-ancestor hub(s), "
                f"e.g. {sample}"
            )
    return _timed(check, started)


def _check_lca(index, seed: int, pairs: int = 64) -> AuditCheck:
    check = AuditCheck("lca")
    started = time.perf_counter()
    tree = index.tree
    n = tree.num_vertices
    rng = random.Random(seed)

    def naive_lca(a: int, b: int) -> int:
        while tree.depth[a] > tree.depth[b]:
            a = tree.parent[a]
        while tree.depth[b] > tree.depth[a]:
            b = tree.parent[b]
        while a != b:
            a, b = tree.parent[a], tree.parent[b]
        return a

    for _ in range(min(pairs, n * n)):
        a, b = rng.randrange(n), rng.randrange(n)
        check.checked += 1
        try:
            got = index.lca.query(a, b)
        except Exception as exc:  # lint: allow=QHL002 a corrupt LCA index can raise anything; record and keep auditing
            check.add(f"lca({a}, {b}) raised {type(exc).__name__}: {exc}")
            continue
        want = naive_lca(a, b)
        if got != want:
            check.add(f"lca({a}, {b}) = {got}, parent-chain walk says {want}")
    return _timed(check, started)


def _check_queries(index, queries: int, seed: int) -> AuditCheck:
    from repro.baselines.dijkstra_csp import constrained_dijkstra
    from repro.graph.algorithms import dijkstra, sample_connected_pair

    check = AuditCheck("spot-check")
    started = time.perf_counter()
    if queries <= 0 or index.network.num_vertices < 2:
        return _timed(check, started)
    rng = random.Random(seed)
    engine = index.qhl_engine()
    for _ in range(queries):
        s, t = sample_connected_pair(index.network, rng)
        # Budget between d_c(s, t) and 1.6 * d_c(s, t): always feasible,
        # and the spread exercises the interesting part of the skyline.
        d_cost = dijkstra(index.network, s, metric="cost", targets=[t])[t]
        budget = d_cost * (1.0 + 0.6 * rng.random())
        check.checked += 1
        expected = constrained_dijkstra(
            index.network, s, t, budget, want_path=False
        )
        try:
            got = engine.query(s, t, budget)
        except Exception as exc:  # lint: allow=QHL002 a corrupt index can raise anything; record and keep auditing
            check.add(
                f"query({s}, {t}, {budget:.6g}) raised "
                f"{type(exc).__name__}: {exc}"
            )
            continue
        if got.feasible != expected.feasible:
            check.add(
                f"query({s}, {t}, {budget:.6g}): index says "
                f"feasible={got.feasible}, baseline says "
                f"{expected.feasible}"
            )
        elif got.feasible and not math.isclose(
            got.weight, expected.weight, rel_tol=1e-9, abs_tol=1e-9
        ):
            check.add(
                f"query({s}, {t}, {budget:.6g}): index weight "
                f"{got.weight!r} != baseline {expected.weight!r}"
            )
    return _timed(check, started)
