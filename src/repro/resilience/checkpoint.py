"""Checkpointed, resumable label construction.

The label build is the expensive phase QHL inherits from CSP-2Hop (the
paper's §5 preprocessing dominates end-to-end time on real road
networks).  Before this module, a killed multi-minute build restarted
from zero.  Now the builder persists one checkpoint per completed
tree-depth level — the natural unit, because level ``k`` depends only on
levels ``< k`` (:mod:`repro.labeling.parallel`) — through the same
atomic + SHA-256-checksummed envelope the index files use, so a crash at
*any* instant leaves a directory from which ``build --resume`` continues
at the last completed level.

Equivalence guarantee: a resumed build produces a label store
*value-identical* to an uninterrupted one — identical ``(weight, cost)``
sequences for every pair and identical
:func:`repro.storage.compact.pack_labels` bytes — because restored
levels are exact (pickled) copies of what the fresh build would hold,
and every later level is computed by the same shared kernel
(:func:`repro.labeling.parallel.level_rows`).  This holds for the
sequential and the level-parallel builder alike; the kill-and-resume
suite in ``tests/service/`` asserts the byte equality.

:class:`BuildBudget` is the watchdog: time/memory limits are checked at
level boundaries and, because the previous level is already checkpointed
when the check runs, an exhausted budget raises a typed
:class:`~repro.exceptions.BuildBudgetExceededError` ("checkpoint, then
raise") instead of the build dying opaquely under an OOM kill.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import (
    BuildBudgetExceededError,
    IndexBuildError,
    SerializationError,
)
from repro.hierarchy.tree import TreeDecomposition
from repro.labeling.labels import LabelStore
from repro.observability.metrics import get_registry
from repro.observability.tracing import get_tracer
from repro.storage.serialize import load_envelope, save_envelope

CHECKPOINT_MAGIC = "repro-qhl-build-checkpoint"
MANIFEST_MAGIC = "repro-qhl-build-manifest"
_MANIFEST = "manifest.ckpt"


def _rss_mb() -> float | None:
    """Peak RSS of this process in MiB (``None`` if unmeasurable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes; normalise the plausible ranges.
    if usage > 1 << 32:  # pragma: no cover - macOS byte units
        return usage / (1 << 20)
    return usage / 1024.0


@dataclass
class BuildBudget:
    """Time/memory watchdog for the checkpointed build.

    Checked at every level boundary; an exhausted budget raises
    :class:`~repro.exceptions.BuildBudgetExceededError` *after* the last
    completed level was persisted, so nothing is lost.  ``clock`` is
    injectable for deterministic tests.
    """

    max_seconds: float | None = None
    max_rss_mb: float | None = None
    clock: Callable[[], float] = time.monotonic
    _started: float | None = field(default=None, repr=False)

    def start(self) -> "BuildBudget":
        self._started = self.clock()
        return self

    def check(self, level: int) -> None:
        """Raise if either budget is exhausted (call at level boundaries)."""
        if self._started is None:
            self.start()
        elapsed = self.clock() - self._started
        if self.max_seconds is not None and elapsed > self.max_seconds:
            raise BuildBudgetExceededError(
                f"label build exceeded its time budget "
                f"({elapsed:.1f}s > {self.max_seconds:.1f}s) at level "
                f"{level}; completed levels are checkpointed — rerun "
                "with --resume to continue",
                level=level, elapsed_s=elapsed,
            )
        if self.max_rss_mb is not None:
            rss = _rss_mb()
            if rss is not None and rss > self.max_rss_mb:
                raise BuildBudgetExceededError(
                    f"label build exceeded its memory budget "
                    f"({rss:.0f} MiB > {self.max_rss_mb:.0f} MiB) at "
                    f"level {level}; completed levels are checkpointed "
                    "— rerun with --resume to continue",
                    level=level, elapsed_s=elapsed, rss_mb=rss,
                )


def tree_fingerprint(
    tree: TreeDecomposition,
    store_paths: bool,
    max_skyline: int | None,
) -> str:
    """SHA-256 over everything the label build depends on.

    Covers the elimination order, bags, every shortcut's ``(w, c)``
    sequence, and the build parameters — so checkpoints written for one
    (network, strategy, flags) combination can never silently seed a
    build for another.
    """
    h = hashlib.sha256()
    h.update(f"v1|{tree.num_vertices}|{store_paths}|{max_skyline}|".encode())
    h.update(",".join(map(str, tree.order)).encode())
    for v in range(tree.num_vertices):
        h.update(f"|b{v}:".encode())
        h.update(",".join(map(str, tree.bag[v])).encode())
        shortcuts_v = tree.shortcuts.get(v, {})
        for w in tree.bag[v]:
            h.update(f"|s{w}:".encode())
            for entry in shortcuts_v.get(w, ()):
                h.update(f"{entry[0]!r},{entry[1]!r};".encode())
    return h.hexdigest()


class CheckpointStore:
    """A directory of per-level build checkpoints.

    Layout: ``manifest.ckpt`` (fingerprint + level count) plus one
    ``level-NNNNNN.ckpt`` per completed level, every file written
    through :func:`repro.storage.serialize.save_envelope` (atomic,
    checksummed).  A torn or corrupt level file simply truncates the
    resumable prefix — it is recomputed, never trusted.
    """

    def __init__(self, directory: str):
        self.directory = directory

    # ------------------------------------------------------------------
    def _level_path(self, level: int) -> str:
        return os.path.join(self.directory, f"level-{level:06d}.ckpt")

    def _manifest_path(self) -> str:
        return os.path.join(self.directory, _MANIFEST)

    # ------------------------------------------------------------------
    def write_manifest(self, fingerprint: str, num_levels: int) -> None:
        save_envelope(
            self._manifest_path(),
            MANIFEST_MAGIC,
            {"fingerprint": fingerprint, "num_levels": num_levels},
        )

    def read_manifest(self) -> dict | None:
        """The manifest dict, or ``None`` when missing/unreadable."""
        try:
            return load_envelope(self._manifest_path(), MANIFEST_MAGIC)
        except SerializationError:
            return None

    def write_level(self, level: int, rows) -> None:
        save_envelope(
            self._level_path(level),
            CHECKPOINT_MAGIC,
            {"level": level, "rows": rows},
        )

    def read_level(self, level: int):
        """The persisted rows of one level, or ``None`` if unusable."""
        try:
            inner = load_envelope(self._level_path(level), CHECKPOINT_MAGIC)
        except SerializationError:
            return None
        if inner.get("level") != level:
            return None
        return inner.get("rows")

    def clear(self) -> None:
        """Delete every checkpoint file (after a successful build)."""
        if not os.path.isdir(self.directory):
            return
        for name in os.listdir(self.directory):
            if name.endswith(".ckpt"):
                try:
                    os.remove(os.path.join(self.directory, name))
                except OSError:  # pragma: no cover - best effort
                    pass


def build_labels_checkpointed(
    tree: TreeDecomposition,
    checkpoint: CheckpointStore | str,
    store_paths: bool = True,
    max_skyline: int | None = None,
    workers: int = 1,
    resume: bool = False,
    budget: BuildBudget | None = None,
    supervised: bool = False,
    supervision=None,
) -> LabelStore:
    """:func:`repro.labeling.builder.build_labels` with per-level
    checkpoints.

    ``resume=True`` restores every consecutive completed level found in
    ``checkpoint`` (fingerprint-validated) and continues from there;
    ``resume=False`` clears the directory and starts fresh.  The result
    is value-identical to an uninterrupted build — identical
    ``pack_labels`` bytes — for any interruption point and any
    ``workers`` setting.

    Raises
    ------
    IndexBuildError
        When resuming against checkpoints built for a different
        network / strategy / flags combination.
    BuildBudgetExceededError
        When ``budget`` runs out; the last completed level is already
        persisted, so a subsequent ``resume=True`` continues there.
    """
    from repro.labeling.parallel import depth_levels, level_rows
    from repro.service.faults import get_injector

    if isinstance(checkpoint, str):
        checkpoint = CheckpointStore(checkpoint)
    os.makedirs(checkpoint.directory, exist_ok=True)

    started = time.perf_counter()
    fingerprint = tree_fingerprint(tree, store_paths, max_skyline)
    levels = depth_levels(tree)

    completed = 0
    if resume:
        manifest = checkpoint.read_manifest()
        if manifest is not None:
            if manifest.get("fingerprint") != fingerprint:
                raise IndexBuildError(
                    f"checkpoints in {checkpoint.directory!r} were "
                    "written for a different network/strategy/flags "
                    "combination; delete the directory or drop --resume"
                )
        else:
            checkpoint.write_manifest(fingerprint, len(levels))
    else:
        checkpoint.clear()
        checkpoint.write_manifest(fingerprint, len(levels))

    store = LabelStore(tree.num_vertices, store_paths=store_paths)
    registry = get_registry()
    injector = get_injector()
    restored_vertices = 0

    with get_tracer().span("labels.checkpointed-sweep") as span:
        if resume:
            # Restore the longest consecutive prefix of usable levels.
            while completed < len(levels):
                rows_by_vertex = checkpoint.read_level(completed)
                if rows_by_vertex is None:
                    break
                for v, rows in rows_by_vertex:
                    for u, acc in rows:
                        store.set(v, u, acc)
                    restored_vertices += 1
                completed += 1

        if budget is not None:
            budget.start()
        for k in range(completed, len(levels)):
            if budget is not None:
                budget.check(k)
            rows_by_vertex, _joins = level_rows(
                tree, store, levels[k], max_skyline, workers,
                supervised=supervised, supervision=supervision,
            )
            for v, rows in rows_by_vertex:
                for u, acc in rows:
                    store.set(v, u, acc)
            if injector.enabled:
                injector.fire("build-level", level=k, stage="computed")
            checkpoint.write_level(k, rows_by_vertex)
            if injector.enabled:
                injector.fire("build-level", level=k, stage="checkpointed")

        span.set("vertices", tree.num_vertices)
        span.set("levels", len(levels))
        span.set("resumed_levels", completed)
        span.set("restored_vertices", restored_vertices)

    store.build_seconds = time.perf_counter() - started
    if registry.enabled:
        registry.gauge("qhl_label_build_seconds").set(store.build_seconds)
        registry.counter(
            "build_checkpoint_levels_total",
            help="label-build levels persisted as checkpoints",
        ).inc(len(levels) - completed)
        registry.counter(
            "build_resume_levels_restored_total",
            help="label-build levels restored from checkpoints",
        ).inc(completed)
        registry.gauge(
            "build_resume_restored_vertices",
            help="vertices whose labels came from checkpoints "
            "in the last build",
        ).set(restored_vertices)
    return store
