"""Validating ingestion for road-network files.

The original parsers in :mod:`repro.graph.io` trusted their input: a
junk token crashed with a bare ``ValueError``, a zero-weight edge
surfaced as an :class:`~repro.exceptions.InvalidGraphError` with no file
position, and a disconnected network parsed fine only to kill the index
build much later.  This module is the hardened layer those parsers now
delegate to:

* every malformed byte raises a typed
  :class:`~repro.exceptions.GraphFormatError` carrying the file path and
  the 1-based line/column of the offending token — never a bare
  ``ValueError``/``IndexError``, never a silently wrong graph;
* edge pathologies (self loops, non-positive or non-finite metrics,
  duplicate edges, out-of-range endpoints) are governed by an explicit
  :class:`ParsePolicy` — strict mode rejects, lenient mode drops and
  counts;
* disconnected inputs get a *documented* largest-connected-component
  fallback (:attr:`ParsePolicy.lcc_fallback`) instead of undefined
  behaviour downstream, with every dropped vertex/edge counted in the
  :class:`IngestReport` and the metrics registry.

Everything observable lands in the returned :class:`IngestReport` and,
when a live registry is installed, in ``ingest_*`` metrics.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Iterator, TextIO

from repro.exceptions import DisconnectedGraphError, GraphFormatError
from repro.graph.network import RoadNetwork
from repro.observability.metrics import get_registry

_TOKEN = re.compile(r"\S+")

#: Cap on enumerated examples inside one error message.
_MAX_EXAMPLES = 5


@dataclass(frozen=True)
class ParsePolicy:
    """How the parser treats questionable input.

    The default (:data:`STRICT`) preserves the historical contract of
    :func:`repro.graph.io.read_csp_text` / ``read_dimacs_pair``: reject
    self loops and non-positive metrics, keep parallel edges, demand a
    connected result only when asked.

    Attributes
    ----------
    strict:
        ``True`` rejects unknown record types and malformed lines;
        ``False`` skips them (counted in ``IngestReport.skipped_lines``).
    duplicate_edges:
        Policy for an edge repeating a previous ``(u, v, w, c)`` exactly
        (endpoints normalised): ``"keep"`` stores it as a parallel edge,
        ``"dedupe"`` drops the repeat, ``"reject"`` raises.  Parallel
        edges with *different* metrics are always kept — distinct
        trade-offs matter for skylines.
    self_loops:
        ``"reject"`` raises on ``u == v``; ``"drop"`` discards the edge.
    bad_metrics:
        Edges with non-positive or non-finite weight/cost:
        ``"reject"`` raises; ``"drop"`` discards the edge.
    lcc_fallback:
        When the parsed network is disconnected, keep only the largest
        connected component (vertices re-numbered densely, original ids
        recorded in ``IngestReport.vertex_map``) instead of returning a
        network no index can be built on.
    require_connected:
        Raise :class:`~repro.exceptions.DisconnectedGraphError` if the
        *final* network (after any LCC fallback) is disconnected.
    """

    strict: bool = True
    duplicate_edges: str = "keep"
    self_loops: str = "reject"
    bad_metrics: str = "reject"
    lcc_fallback: bool = False
    require_connected: bool = False

    def __post_init__(self) -> None:
        if self.duplicate_edges not in ("keep", "dedupe", "reject"):
            raise ValueError(
                f"duplicate_edges must be keep/dedupe/reject, "
                f"got {self.duplicate_edges!r}"
            )
        for name in ("self_loops", "bad_metrics"):
            value = getattr(self, name)
            if value not in ("reject", "drop"):
                raise ValueError(
                    f"{name} must be reject/drop, got {value!r}"
                )


#: Historical behaviour: everything suspicious is an error.
STRICT = ParsePolicy()

#: Salvage what can be salvaged: drop junk lines, self loops, bad
#: metrics and exact duplicates, fall back to the largest component.
LENIENT = ParsePolicy(
    strict=False,
    duplicate_edges="dedupe",
    self_loops="drop",
    bad_metrics="drop",
    lcc_fallback=True,
)


@dataclass
class IngestReport:
    """What ingestion did to one input (machine-readable)."""

    path: str
    format: str
    lines: int = 0
    skipped_lines: int = 0
    edges_kept: int = 0
    duplicate_edges_dropped: int = 0
    self_loops_dropped: int = 0
    bad_metric_edges_dropped: int = 0
    components: int = 1
    lcc_applied: bool = False
    vertices_dropped: int = 0
    edges_dropped_disconnected: int = 0
    #: With LCC fallback: ``vertex_map[new_id] == original_id``.
    vertex_map: list[int] | None = field(default=None, repr=False)

    def to_dict(self) -> dict:
        """Plain-data form (for ``--json`` style consumers)."""
        out = {
            k: v for k, v in self.__dict__.items() if k != "vertex_map"
        }
        out["remapped"] = self.vertex_map is not None
        return out


# ----------------------------------------------------------------------
# Tokenising with positions
# ----------------------------------------------------------------------
def _tokens(raw: str) -> list[tuple[str, int]]:
    """``(token, 1-based column)`` pairs of one line."""
    return [(m.group(), m.start() + 1) for m in _TOKEN.finditer(raw)]


def _parse_int(
    token: str, col: int, what: str, path: str, lineno: int
) -> int:
    try:
        return int(token)
    except ValueError:
        raise GraphFormatError(
            f"{what} must be an integer, got {token!r}",
            path=path, line=lineno, column=col,
        ) from None


def _parse_metric(
    token: str, col: int, what: str, path: str, lineno: int
) -> float:
    try:
        value = float(token)
    except ValueError:
        raise GraphFormatError(
            f"{what} must be a number, got {token!r}",
            path=path, line=lineno, column=col,
        ) from None
    if value.is_integer() and math.isfinite(value):
        return int(value)
    return value


# ----------------------------------------------------------------------
# Edge admission under a policy
# ----------------------------------------------------------------------
class _EdgeSink:
    """Applies the :class:`ParsePolicy` edge rules, keeping counts."""

    def __init__(
        self,
        num_vertices: int,
        policy: ParsePolicy,
        report: IngestReport,
        path: str,
    ):
        self.num_vertices = num_vertices
        self.policy = policy
        self.report = report
        self.path = path
        self.edges: list[tuple[int, int, float, float]] = []
        self._seen: set[tuple[int, int, float, float]] = set()

    def add(
        self, u: int, v: int, w: float, c: float, lineno: int, col: int
    ) -> None:
        """Admit one edge, or drop/raise per policy."""
        policy, report = self.policy, self.report
        for endpoint, name in ((u, "u"), (v, "v")):
            if not 0 <= endpoint < self.num_vertices:
                raise GraphFormatError(
                    f"vertex {name}={endpoint} out of range "
                    f"[0, {self.num_vertices - 1}]",
                    path=self.path, line=lineno, column=col,
                )
        if u == v:
            if policy.self_loops == "reject":
                raise GraphFormatError(
                    f"self loop at vertex {u}",
                    path=self.path, line=lineno, column=col,
                )
            report.self_loops_dropped += 1
            return
        if not (
            math.isfinite(w) and math.isfinite(c) and w > 0 and c > 0
        ):
            if policy.bad_metrics == "reject":
                raise GraphFormatError(
                    f"edge ({u}, {v}) must have finite positive metrics, "
                    f"got weight={w}, cost={c}",
                    path=self.path, line=lineno, column=col,
                )
            report.bad_metric_edges_dropped += 1
            return
        key = (min(u, v), max(u, v), w, c)
        if policy.duplicate_edges != "keep" and key in self._seen:
            if policy.duplicate_edges == "reject":
                raise GraphFormatError(
                    f"duplicate edge ({u}, {v}, w={w}, c={c})",
                    path=self.path, line=lineno, column=col,
                )
            report.duplicate_edges_dropped += 1
            return
        self._seen.add(key)
        self.edges.append((u, v, w, c))
        report.edges_kept += 1


# ----------------------------------------------------------------------
# CSP text format
# ----------------------------------------------------------------------
def load_csp_network(
    path: str, policy: ParsePolicy = STRICT
) -> tuple[RoadNetwork, IngestReport]:
    """Parse a ``csp`` text file under ``policy``.

    Returns the network plus the :class:`IngestReport` of everything
    that was dropped, deduplicated, or remapped on the way in.

    Raises
    ------
    GraphFormatError
        On any malformed content the policy does not allow dropping,
        with path/line/column context.
    DisconnectedGraphError
        When ``policy.require_connected`` and the final network is not
        connected.
    """
    report = IngestReport(path=path, format="csp")
    try:
        with open(path) as stream:
            network = _parse_csp_stream(stream, path, policy, report)
    except OSError as exc:
        raise GraphFormatError(f"cannot read file: {exc}", path=path) from exc
    network = _finish(network, policy, report)
    _record_metrics(report)
    return network, report


def _parse_csp_stream(
    stream: TextIO, path: str, policy: ParsePolicy, report: IngestReport
) -> RoadNetwork:
    sink: _EdgeSink | None = None
    declared_edges = 0
    stated_edges = 0
    for lineno, raw in enumerate(stream, start=1):
        report.lines += 1
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = _tokens(raw)
        kind = tokens[0][0]
        if kind == "csp":
            if sink is not None:
                raise GraphFormatError(
                    "repeated 'csp' header",
                    path=path, line=lineno, column=tokens[0][1],
                )
            if len(tokens) != 3:
                raise GraphFormatError(
                    f"header needs 'csp <n> <m>', got {line!r}",
                    path=path, line=lineno, column=tokens[0][1],
                )
            n = _parse_int(*tokens[1], "vertex count", path, lineno)
            declared_edges = _parse_int(
                *tokens[2], "edge count", path, lineno
            )
            if n <= 0:
                raise GraphFormatError(
                    f"vertex count must be positive, got {n}",
                    path=path, line=lineno, column=tokens[1][1],
                )
            if declared_edges < 0:
                raise GraphFormatError(
                    f"edge count must be non-negative, got {declared_edges}",
                    path=path, line=lineno, column=tokens[2][1],
                )
            sink = _EdgeSink(n, policy, report, path)
        elif kind == "e":
            if sink is None:
                raise GraphFormatError(
                    "edge before 'csp' header",
                    path=path, line=lineno, column=tokens[0][1],
                )
            if len(tokens) != 5:
                raise GraphFormatError(
                    f"edge needs 'e <u> <v> <weight> <cost>', got {line!r}",
                    path=path, line=lineno, column=tokens[0][1],
                )
            u = _parse_int(*tokens[1], "vertex u", path, lineno)
            v = _parse_int(*tokens[2], "vertex v", path, lineno)
            w = _parse_metric(*tokens[3], "weight", path, lineno)
            c = _parse_metric(*tokens[4], "cost", path, lineno)
            stated_edges += 1
            sink.add(u, v, w, c, lineno, tokens[0][1])
        else:
            if policy.strict:
                raise GraphFormatError(
                    f"unknown record type {kind!r}",
                    path=path, line=lineno, column=tokens[0][1],
                )
            report.skipped_lines += 1
    if sink is None:
        raise GraphFormatError("missing 'csp' header line", path=path)
    if stated_edges != declared_edges:
        raise GraphFormatError(
            f"header declares {declared_edges} edges, file has "
            f"{stated_edges}",
            path=path,
        )
    return RoadNetwork.from_edges(sink.num_vertices, sink.edges)


# ----------------------------------------------------------------------
# DIMACS .gr pairs
# ----------------------------------------------------------------------
def load_dimacs_network(
    weight_path: str,
    cost_path: str,
    policy: ParsePolicy = STRICT,
) -> tuple[RoadNetwork, IngestReport]:
    """Parse a DIMACS ``(weight, cost)`` file pair under ``policy``.

    The two files must describe the **same arc multiset** over the same
    vertex count; arcs are matched positionally when the files list them
    in the same order, and by ``(u, v)`` occurrence otherwise, so a
    reordered-but-equal pair still loads.  A genuine edge-set mismatch
    (an arc present in one file and absent in the other) is reported
    explicitly, with up to five examples — never papered over into an
    inconsistent network.
    """
    report = IngestReport(
        path=f"{weight_path} + {cost_path}", format="dimacs"
    )
    n_w, arcs_w, m_w = _parse_dimacs_file(weight_path, policy, report)
    n_c, arcs_c, m_c = _parse_dimacs_file(cost_path, policy, report)
    if n_w != n_c:
        raise GraphFormatError(
            f"weight file declares {n_w} vertices but cost file "
            f"declares {n_c}",
            path=cost_path,
        )
    if policy.strict:
        for path, declared, arcs in (
            (weight_path, m_w, arcs_w),
            (cost_path, m_c, arcs_c),
        ):
            if declared != len(arcs):
                raise GraphFormatError(
                    f"problem line declares {declared} arcs, file has "
                    f"{len(arcs)}",
                    path=path,
                )
    paired = _pair_arcs(arcs_w, arcs_c, weight_path, cost_path)

    sink = _EdgeSink(n_w, policy, report, report.path)
    # DIMACS road networks list each undirected edge as two opposite
    # arcs; collapse exact opposite/duplicate arcs into one edge.
    seen: set[tuple[int, int, float, float]] = set()
    for (u, v, w, c, lineno, col) in paired:
        key = (min(u, v), max(u, v), w, c)
        if key in seen:
            continue
        seen.add(key)
        sink.add(u, v, w, c, lineno, col)
    network = RoadNetwork.from_edges(n_w, sink.edges)
    network = _finish(network, policy, report)
    _record_metrics(report)
    return network, report


def _parse_dimacs_file(
    path: str, policy: ParsePolicy, report: IngestReport
) -> tuple[int, list[tuple[int, int, float, int, int]], int]:
    """One ``.gr`` file → ``(n, [(u, v, value, line, col)], declared_m)``."""
    try:
        with open(path) as stream:
            return _parse_dimacs_stream(stream, path, policy, report)
    except OSError as exc:
        raise GraphFormatError(f"cannot read file: {exc}", path=path) from exc


def _parse_dimacs_stream(
    stream: TextIO, path: str, policy: ParsePolicy, report: IngestReport
) -> tuple[int, list[tuple[int, int, float, int, int]], int]:
    n = -1
    declared_m = 0
    arcs: list[tuple[int, int, float, int, int]] = []
    for lineno, raw in enumerate(stream, start=1):
        report.lines += 1
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        tokens = _tokens(raw)
        kind = tokens[0][0]
        if kind == "p":
            if n >= 0:
                raise GraphFormatError(
                    "repeated problem line",
                    path=path, line=lineno, column=tokens[0][1],
                )
            if len(tokens) != 4 or tokens[1][0] != "sp":
                raise GraphFormatError(
                    f"problem line needs 'p sp <n> <m>', got {line!r}",
                    path=path, line=lineno, column=tokens[0][1],
                )
            n = _parse_int(*tokens[2], "vertex count", path, lineno)
            declared_m = _parse_int(*tokens[3], "arc count", path, lineno)
            if n <= 0:
                raise GraphFormatError(
                    f"vertex count must be positive, got {n}",
                    path=path, line=lineno, column=tokens[2][1],
                )
        elif kind == "a":
            if n < 0:
                raise GraphFormatError(
                    "arc before 'p sp' problem line",
                    path=path, line=lineno, column=tokens[0][1],
                )
            if len(tokens) != 4:
                raise GraphFormatError(
                    f"arc needs 'a <u> <v> <value>', got {line!r}",
                    path=path, line=lineno, column=tokens[0][1],
                )
            u = _parse_int(*tokens[1], "vertex u", path, lineno) - 1
            v = _parse_int(*tokens[2], "vertex v", path, lineno) - 1
            value = _parse_metric(*tokens[3], "metric", path, lineno)
            arcs.append((u, v, value, lineno, tokens[0][1]))
        else:
            if policy.strict:
                raise GraphFormatError(
                    f"unknown record type {kind!r}",
                    path=path, line=lineno, column=tokens[0][1],
                )
            report.skipped_lines += 1
    if n < 0:
        raise GraphFormatError("missing 'p sp' problem line", path=path)
    return n, arcs, declared_m


def _pair_arcs(
    arcs_w: list[tuple[int, int, float, int, int]],
    arcs_c: list[tuple[int, int, float, int, int]],
    weight_path: str,
    cost_path: str,
) -> Iterator[tuple[int, int, float, float, int, int]]:
    """Match the two files' arcs into ``(u, v, w, c, line, col)``.

    Fast path: the files list the same ``(u, v)`` sequence and arcs pair
    positionally.  Otherwise arcs are matched by the i-th occurrence of
    each ``(u, v)`` endpoint pair, which tolerates reordered files; a
    genuine multiset mismatch raises with explicit per-arc counts.
    """
    if len(arcs_w) != len(arcs_c):
        raise GraphFormatError(
            f"edge-set mismatch: weight file has {len(arcs_w)} arcs, "
            f"cost file has {len(arcs_c)}",
            path=cost_path,
        )
    if all(
        (aw[0], aw[1]) == (ac[0], ac[1])
        for aw, ac in zip(arcs_w, arcs_c, strict=True)
    ):
        for aw, ac in zip(arcs_w, arcs_c, strict=True):
            yield (aw[0], aw[1], aw[2], ac[2], aw[3], aw[4])
        return

    # Reordered files: match occurrence-by-occurrence per (u, v) key.
    by_key: dict[tuple[int, int], list[tuple[int, int, float, int, int]]]
    by_key = {}
    for arc in arcs_c:
        by_key.setdefault((arc[0], arc[1]), []).append(arc)
    unmatched_w: list[tuple[int, int]] = []
    pairs: list[tuple[int, int, float, float, int, int]] = []
    for arc in arcs_w:
        bucket = by_key.get((arc[0], arc[1]))
        if not bucket:
            unmatched_w.append((arc[0], arc[1]))
            continue
        mate = bucket.pop(0)
        pairs.append((arc[0], arc[1], arc[2], mate[2], arc[3], arc[4]))
    unmatched_c = [key for key, bucket in by_key.items() for _ in bucket]
    if unmatched_w or unmatched_c:
        raise GraphFormatError(
            "edge-set mismatch between weight and cost files: "
            + _mismatch_examples(unmatched_w, unmatched_c),
            path=cost_path,
        )
    yield from pairs


def _mismatch_examples(
    only_weight: list[tuple[int, int]], only_cost: list[tuple[int, int]]
) -> str:
    parts = []
    for name, arcs in (
        ("weight", only_weight), ("cost", only_cost)
    ):
        if arcs:
            shown = ", ".join(
                f"({u + 1}, {v + 1})" for u, v in arcs[:_MAX_EXAMPLES]
            )
            more = (
                f" (+{len(arcs) - _MAX_EXAMPLES} more)"
                if len(arcs) > _MAX_EXAMPLES
                else ""
            )
            parts.append(
                f"{len(arcs)} arc(s) only in the {name} file: "
                f"{shown}{more}"
            )
    return "; ".join(parts)


# ----------------------------------------------------------------------
# Connectivity handling
# ----------------------------------------------------------------------
def _finish(
    network: RoadNetwork, policy: ParsePolicy, report: IngestReport
) -> RoadNetwork:
    """Apply the connectivity policy to a freshly parsed network."""
    from repro.graph.algorithms import connected_components

    components = connected_components(network)
    report.components = len(components)
    if len(components) > 1 and policy.lcc_fallback:
        keep = max(components, key=lambda comp: (len(comp), -min(comp)))
        keep_sorted = sorted(keep)
        remap = {old: new for new, old in enumerate(keep_sorted)}
        edges = [
            (remap[u], remap[v], w, c)
            for u, v, w, c in network.edges()
            if u in remap and v in remap
        ]
        report.lcc_applied = True
        report.vertices_dropped = network.num_vertices - len(keep_sorted)
        report.edges_dropped_disconnected = (
            network.num_edges - len(edges)
        )
        report.vertex_map = keep_sorted
        network = RoadNetwork.from_edges(len(keep_sorted), edges)
    if policy.require_connected and not network.is_connected():
        raise DisconnectedGraphError(
            f"{report.path}: network has {report.components} connected "
            "components (enable lcc_fallback to keep the largest)"
        )
    return network


def _record_metrics(report: IngestReport) -> None:
    registry = get_registry()
    if not registry.enabled:
        return
    fmt = {"format": report.format}
    registry.counter(
        "ingest_files_total", fmt, help="network files ingested"
    ).inc()
    registry.counter(
        "ingest_edges_total", {**fmt, "action": "kept"},
        help="edges by ingestion outcome",
    ).inc(report.edges_kept)
    for action, count in (
        ("duplicate-dropped", report.duplicate_edges_dropped),
        ("self-loop-dropped", report.self_loops_dropped),
        ("bad-metric-dropped", report.bad_metric_edges_dropped),
        ("disconnected-dropped", report.edges_dropped_disconnected),
    ):
        if count:
            registry.counter(
                "ingest_edges_total", {**fmt, "action": action},
                help="edges by ingestion outcome",
            ).inc(count)
    if report.skipped_lines:
        registry.counter(
            "ingest_skipped_lines_total", fmt,
            help="unparseable lines skipped in lenient mode",
        ).inc(report.skipped_lines)
    if report.lcc_applied:
        registry.counter(
            "ingest_lcc_fallback_total", fmt,
            help="disconnected inputs reduced to their largest component",
        ).inc()
        registry.counter(
            "ingest_vertices_dropped_total", fmt,
            help="vertices outside the kept largest component",
        ).inc(report.vertices_dropped)
