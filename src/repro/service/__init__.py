"""Resilient serving layer: deadlines, degradation ladder, fault injection.

See :mod:`repro.service.ladder` for the service itself,
:mod:`repro.service.deadline` for cooperative time budgets,
:mod:`repro.service.breaker` for the per-tier circuit breaker, and
:mod:`repro.service.faults` for the deterministic chaos harness.
Narrative documentation lives in ``docs/robustness.md``.
"""

from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.deadline import Deadline
from repro.service.faults import (
    INJECTION_POINTS,
    NULL_INJECTOR,
    FaultInjector,
    FaultyLabelStore,
    get_injector,
    set_injector,
    use_injector,
)
from repro.service.ladder import (
    DEFAULT_TIERS,
    QueryService,
    ServiceConfig,
)

__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "DEFAULT_TIERS",
    "Deadline",
    "FaultInjector",
    "FaultyLabelStore",
    "HALF_OPEN",
    "INJECTION_POINTS",
    "NULL_INJECTOR",
    "OPEN",
    "QueryService",
    "ServiceConfig",
    "get_injector",
    "set_injector",
    "use_injector",
]
