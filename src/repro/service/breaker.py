"""A per-tier circuit breaker for the degradation ladder.

Classic three-state breaker:

* **closed** — calls flow; consecutive failures are counted and
  ``failure_threshold`` of them opens the breaker.
* **open** — calls are refused (the ladder skips the tier) until
  ``reset_timeout`` seconds have passed, then the breaker half-opens.
* **half-open** — the next call is a probe: success closes the breaker
  (and resets the backoff), failure re-opens it with the timeout grown
  by ``backoff_factor`` (capped at ``max_timeout``).

The clock is injectable for deterministic tests, and an optional
``on_transition(state)`` callback lets the owner count transitions in a
metrics registry without the breaker knowing about metrics.
"""

from __future__ import annotations

import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with exponential half-open backoff."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        backoff_factor: float = 2.0,
        max_timeout: float = 300.0,
        clock: Callable[[], float] | None = None,
        on_transition: Callable[[str], None] | None = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.backoff_factor = backoff_factor
        self.max_timeout = max_timeout
        self._clock = clock if clock is not None else time.monotonic
        self._on_transition = on_transition
        self.state = CLOSED
        self.consecutive_failures = 0
        self._current_timeout = reset_timeout
        self._opened_at = 0.0

    # ------------------------------------------------------------------
    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        if self._on_transition is not None:
            self._on_transition(state)

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether a call may proceed right now.

        An open breaker whose backoff has elapsed half-opens as a side
        effect and lets the (probe) call through.
        """
        if self.state == OPEN:
            if self._clock() - self._opened_at >= self._current_timeout:
                self._transition(HALF_OPEN)
                return True
            return False
        return True

    def record_success(self) -> None:
        """A call succeeded: close and reset the backoff."""
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self._current_timeout = self.reset_timeout
            self._transition(CLOSED)

    def record_failure(self) -> None:
        """A call failed: count it; maybe open (or re-open with backoff)."""
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            # Failed probe: back off harder before the next one.
            self._current_timeout = min(
                self._current_timeout * self.backoff_factor,
                self.max_timeout,
            )
            self._opened_at = self._clock()
            self._transition(OPEN)
        elif (
            self.state == CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._opened_at = self._clock()
            self._transition(OPEN)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self.consecutive_failures}, "
            f"timeout={self._current_timeout:g}s)"
        )
