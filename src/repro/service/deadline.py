"""Cooperative time budgets for queries and batches.

A :class:`Deadline` is created once (per query, or once for a whole
batch and shared) and threaded down into the engines, which call
:meth:`Deadline.check` at cooperative checkpoints — per hoplink in the
label-based engines, every :data:`HEAP_CHECK_MASK` + 1 pops in the
Dijkstra-style heap loops.  When the budget is gone, ``check`` raises
:class:`~repro.exceptions.DeadlineExceededError` carrying the partial
:class:`~repro.types.QueryStats` accumulated so far.

The clock is injectable (any zero-argument callable returning seconds),
which is what the fault harness' ``clock`` injection point and the unit
tests use; the default is :func:`time.monotonic`.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.exceptions import DeadlineExceededError

#: Heap loops check the deadline when ``pops & HEAP_CHECK_MASK == 0`` —
#: every 256 pops, bounding overshoot without a clock read per pop.
HEAP_CHECK_MASK = 0xFF

Clock = Callable[[], float]


class Deadline:
    """A monotonic expiry time with a ``check()`` that raises on expiry."""

    __slots__ = ("seconds", "_clock", "_started", "_expires_at")

    def __init__(self, seconds: float, clock: Clock | None = None):
        self.seconds = float(seconds)
        self._clock = clock if clock is not None else time.monotonic
        self._started = self._clock()
        self._expires_at = self._started + self.seconds

    @classmethod
    def from_ms(cls, milliseconds: float, clock: Clock | None = None
                ) -> "Deadline":
        """A deadline ``milliseconds`` from now."""
        return cls(milliseconds / 1e3, clock=clock)

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Seconds since the deadline was armed."""
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds left in the budget (negative once expired)."""
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        """Whether the budget is exhausted (no exception)."""
        return self._clock() >= self._expires_at

    def check(self, stats=None) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is gone.

        ``stats`` (a :class:`~repro.types.QueryStats` or ``None``) rides
        along on the exception so callers see the partial work done.
        """
        now = self._clock()
        if now >= self._expires_at:
            elapsed_ms = (now - self._started) * 1e3
            raise DeadlineExceededError(
                f"deadline of {self.seconds * 1e3:.3f} ms exceeded "
                f"after {elapsed_ms:.3f} ms",
                budget_ms=self.seconds * 1e3,
                elapsed_ms=elapsed_ms,
                stats=stats,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline({self.seconds:.6f}s, "
            f"remaining={self.remaining():.6f}s)"
        )
