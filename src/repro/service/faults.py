"""Deterministic fault injection for chaos testing.

The harness mirrors the observability module's activation pattern: a
process-wide injector that defaults to an inert null object, swapped in
scoped via :func:`use_injector`.  Production code pays one attribute
check (``injector.enabled``) on the cold paths that fire points; the
hot query loops are untouched — per-engine faults are injected at the
service boundary, and label-fetch faults through the
:class:`FaultyLabelStore` wrapper.

Injection points (:data:`INJECTION_POINTS`):

``index-load``
    Fired by :func:`repro.storage.serialize.load_index_with_retry` at
    the start of every attempt — inject transient ``OSError`` to
    exercise the retry/backoff path.
``save-index``
    Fired by the atomic writer at each write stage (``ctx["stage"]`` is
    ``"write"`` / ``"fsync"`` / ``"replace"``) — inject to prove a
    crash at any stage never corrupts the destination file.
``label-fetch``
    Fired by :class:`FaultyLabelStore` on every label access.
``engine-query``
    Fired by :class:`repro.service.ladder.QueryService` before
    delegating to a tier (``ctx["engine"]`` is the tier name) — the
    degradation ladder's primary chaos hook.
``build-level``
    Fired by :func:`repro.resilience.checkpoint.
    build_labels_checkpointed` twice per depth level (``ctx["level"]``
    is the level index, ``ctx["stage"]`` is ``"computed"`` — before the
    level's checkpoint is written — or ``"checkpointed"`` — after) —
    the kill-and-resume suite's hook for crashing a build at every
    level boundary.
``worker-spawn``
    Fired by :class:`repro.supervise.supervisor.Supervisor` before
    forking each worker process (``ctx["worker"]`` is the worker name,
    ``ctx["restarts"]`` its death count) — inject to exercise the
    spawn-failed → backoff → respawn path without real processes dying.
``worker-heartbeat``
    Fired inside a supervised worker before every heartbeat touch
    (``ctx["worker"]``) — an injected fault *suppresses the touch*
    instead of propagating, which is how chaos tests fake a wedged
    worker and drive the parent's stall detector.
``worker-task``
    Fired inside a supervised worker before running each leased task
    (``ctx["worker"]``, ``ctx["task"]`` is the task id) — inject a
    process-killing factory to lose in-flight work deterministically
    and exercise the requeue/quarantine ladder.
``update-journal-append``
    Fired by :meth:`repro.dynamic.journal.UpdateJournal.append` at each
    append stage (``ctx["stage"]`` is ``"write"`` or ``"fsync"``) —
    inject to prove a crash while journalling a delta batch never
    corrupts previously acknowledged records.
``update-repair``
    Fired by :class:`repro.dynamic.epochs.EpochManager` after cloning
    the current epoch, before the incremental repair sweep runs on the
    clone (``ctx["seq"]`` is the journal sequence number) — inject to
    exercise rollback-on-failed-repair.
``update-publish``
    Fired by the epoch manager after a successful repair (and audit),
    immediately before the atomic epoch pointer swap (``ctx["seq"]``,
    ``ctx["epoch"]`` is the would-be epoch id) — inject to prove a
    crash between repair and publish leaves the batch pending and the
    old epoch serving.
``clock``
    Not an exception point: setting :attr:`FaultInjector.clock` makes
    the service build deadlines on the injected clock, so tests can
    jump time deterministically.

Schedules are deterministic: a rule fails the ``after``-th through
``after + times - 1``-th *matching* calls of its point (``times=None``
means forever), so a chaos test replays identically every run.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Iterator

#: Every named injection point the harness knows about.
INJECTION_POINTS: tuple[str, ...] = (
    "index-load",
    "save-index",
    "label-fetch",
    "engine-query",
    "build-level",
    "worker-spawn",
    "worker-heartbeat",
    "worker-task",
    "update-journal-append",
    "update-repair",
    "update-publish",
)


@dataclass
class _Rule:
    """One deterministic failure schedule at one point."""

    exc: BaseException | type[BaseException] | Callable[[], BaseException]
    times: int | None
    after: int
    match: dict | None
    seen: int = field(default=0)

    def fires(self) -> bool:
        index = self.seen
        self.seen += 1
        if index < self.after:
            return False
        return self.times is None or index < self.after + self.times

    def make(self, point: str) -> BaseException:
        if isinstance(self.exc, BaseException):
            return self.exc
        if isinstance(self.exc, type):
            return self.exc(f"injected fault at {point!r}")
        return self.exc()


class FaultInjector:
    """A live injector: registered rules fire at named points."""

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self._rules: dict[str, list[_Rule]] = {}
        self._calls: dict[str, int] = {}
        #: Optional clock override consumed by the service layer
        #: (the ``clock`` injection point).
        self.clock = clock

    # ------------------------------------------------------------------
    def fail(
        self,
        point: str,
        exc: BaseException | type[BaseException] | Callable[
            [], BaseException
        ] = OSError,
        times: int | None = 1,
        after: int = 0,
        match: dict | None = None,
    ) -> None:
        """Schedule ``exc`` at ``point``.

        ``exc`` may be an exception class, instance, or zero-argument
        factory.  ``match`` restricts the rule to calls whose context
        contains every given key/value (e.g. ``{"engine": "QHL"}`` or
        ``{"stage": "fsync"}``).
        """
        if point not in INJECTION_POINTS:
            raise ValueError(
                f"unknown injection point {point!r}; "
                f"known: {', '.join(INJECTION_POINTS)}"
            )
        self._rules.setdefault(point, []).append(
            _Rule(exc=exc, times=times, after=after, match=match)
        )

    def fire(self, point: str, **ctx) -> None:
        """Count one call at ``point``; raise if a rule's schedule says so."""
        self._calls[point] = self._calls.get(point, 0) + 1
        for rule in self._rules.get(point, ()):
            if rule.match is not None and any(
                ctx.get(key) != value for key, value in rule.match.items()
            ):
                continue
            if rule.fires():
                raise rule.make(point)

    def calls(self, point: str) -> int:
        """How many times ``point`` has fired (matching or not)."""
        return self._calls.get(point, 0)

    def reset(self) -> None:
        """Drop all rules and counters."""
        self._rules.clear()
        self._calls.clear()


class NullInjector:
    """The disabled default: never raises, counts nothing."""

    enabled = False
    clock = None

    def fail(self, point, exc=OSError, times=1, after=0, match=None) -> None:
        raise NotImplementedError(
            "cannot register faults on the null injector; install one "
            "with use_injector(FaultInjector())"
        )

    def fire(self, point: str, **ctx) -> None:
        pass

    def calls(self, point: str) -> int:
        return 0

    def reset(self) -> None:
        pass


NULL_INJECTOR = NullInjector()

_active_injector: FaultInjector | NullInjector = NULL_INJECTOR


def get_injector() -> FaultInjector | NullInjector:
    """The process-wide active injector (the inert one by default)."""
    return _active_injector


def set_injector(
    injector: FaultInjector | NullInjector,
) -> FaultInjector | NullInjector:
    """Install ``injector``; returns the previous one."""
    global _active_injector
    previous = _active_injector
    _active_injector = injector
    return previous


@contextlib.contextmanager
def use_injector(
    injector: FaultInjector | NullInjector,
) -> Iterator[FaultInjector | NullInjector]:
    """Scoped :func:`set_injector`; restores the previous injector."""
    previous = set_injector(injector)
    try:
        yield injector
    finally:
        set_injector(previous)


class FaultyLabelStore:
    """A label-store proxy firing ``label-fetch`` on every access.

    Wrap an index's :class:`~repro.labeling.labels.LabelStore` and build
    an engine on the wrapper to chaos-test label I/O without touching
    the store itself::

        engine = QHLEngine(tree, FaultyLabelStore(labels), lca, pruning)
    """

    def __init__(self, inner):
        self._inner = inner

    def get(self, x: int, y: int):
        get_injector().fire("label-fetch", x=x, y=y)
        return self._inner.get(x, y)

    def label(self, v: int):
        get_injector().fire("label-fetch", v=v)
        return self._inner.label(v)

    def __getattr__(self, name):
        return getattr(self._inner, name)
