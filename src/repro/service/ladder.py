"""The fault-tolerant query service: deadline + degradation ladder.

:class:`QueryService` wraps the engines this repo already has into the
ladder related systems use (FHL/MCSP-style forest labelings fall back
to skyline Dijkstra when labels are absent; COLA-style overlays degrade
to plain constrained search):

    QHL  →  CSP-2Hop  →  SkyDijkstra (index-free, always available)

Every tier answers the *exact* optimum — degradation trades speed, not
correctness — so stepping down on an engine exception or a missing /
corrupt index is always safe.  Each tier sits behind its own
:class:`~repro.service.breaker.CircuitBreaker`: consecutive failures
open the breaker (the ladder skips the tier without paying the failure
again), and after a backoff it half-opens to probe recovery.

Observability (PR-1 registry, when one is installed):

* ``service_queries_total{tier}`` — answers per tier,
* ``service_fallback_total{from,to,reason}`` — every ladder step down,
* ``service_deadline_exceeded_total{engine}`` — budget exhaustions,
* ``service_breaker_transitions_total{tier,state}`` — breaker flips,
* ``service_index_load_failures_total`` — degraded-from-birth starts.

PR-6 adds the query flight recorder: every query leaves one
:class:`~repro.observability.flight.FlightRecord` (trace id, tier
used, cache hit/miss, deadline margin, op counters, outcome) in the
service's bounded ring (``ServiceConfig.flight_records``), and breaker
trips / fully failed ladders automatically dump the ring to
``ServiceConfig.flight_dump_dir`` so a production incident leaves
forensic evidence behind.

Deadlines are *not* tier failures: a query that exhausts its budget on
the fastest tier would only get slower below, so
:class:`~repro.exceptions.DeadlineExceededError` propagates to the
caller immediately.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.baselines.sky_dijkstra import SkyDijkstraEngine
from repro.core.engine import QHLIndex
from repro.exceptions import (
    DeadlineExceededError,
    QueryError,
    ReproError,
    SerializationError,
    ServiceUnavailableError,
)
from repro.graph.network import RoadNetwork
from repro.observability.flight import (
    FlightRecorder,
    get_flight_recorder,
)
from repro.observability.metrics import get_registry
from repro.observability.propagation import new_trace_id
from repro.service.breaker import CircuitBreaker
from repro.service.deadline import Deadline
from repro.service.faults import get_injector
from repro.storage.serialize import load_index_with_retry
from repro.types import CSPQuery, QueryResult

#: Ladder order: fastest first, index-free last resort last.
DEFAULT_TIERS: tuple[str, ...] = ("QHL", "CSP-2Hop", "SkyDijkstra")


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for :class:`QueryService`."""

    #: Default per-query budget in milliseconds (``None`` = no deadline).
    deadline_ms: float | None = None
    #: Ladder tiers, tried in order; unknown names raise at build time.
    tiers: tuple[str, ...] = DEFAULT_TIERS
    #: Consecutive failures that open a tier's breaker.
    breaker_failure_threshold: int = 3
    #: Seconds an open breaker waits before half-opening.
    breaker_reset_s: float = 30.0
    #: Half-open probe failure multiplies the wait by this factor…
    breaker_backoff_factor: float = 2.0
    #: …capped here.
    breaker_max_reset_s: float = 300.0
    #: Attempts for loading an index from ``index_path``.
    load_attempts: int = 3
    #: Verify the SHA-256 payload checksum when loading an index.
    verify_checksum: bool = True
    #: Skyline-frontier cache capacity for the QHL tier (pairs);
    #: ``0`` disables caching and keeps the plain QHL engine.
    cache_size: int = 0
    #: Audit the index (structural invariants + seeded spot-checks
    #: against constrained Dijkstra) before serving from it; an index
    #: that fails is dropped and the service degrades to its index-free
    #: tier, with the report kept in ``service.audit_report``.
    require_audit: bool = False
    #: Spot-check queries the audit gate runs (see
    #: :func:`repro.resilience.audit.audit_index`).
    audit_queries: int = 8
    #: Seed for the audit gate's sampling.
    audit_seed: int = 0
    #: Flight-recorder ring capacity for this service; ``0`` gives the
    #: service no recorder of its own — it then reports into whatever
    #: recorder is globally installed (the inert one by default).
    flight_records: int = 256
    #: Slow-query threshold in milliseconds for the flight recorder's
    #: slow/failed side log (``None`` = no slow classification).
    flight_slow_ms: float | None = None
    #: Directory for automatic flight dumps on breaker-open and
    #: service-unavailable; ``None`` disables the automatic dumps.
    flight_dump_dir: str | None = None
    #: With an ``epoch_manager`` attached: when its journal backlog
    #: exceeds this many batches, the labeled tiers (serving the lagging
    #: epoch) are shed and queries step down to the index-free tier on
    #: the *live* metric state — fresh answers at search latency instead
    #: of fast answers at unbounded staleness.  ``None`` never sheds.
    max_update_backlog: int | None = None


class _EpochTierEngine:
    """A ladder tier that re-resolves the serving epoch on every call.

    The manager's epoch pointer swaps atomically on publish; binding it
    per query means the service picks up a freshly published epoch
    without being rebuilt, and a query that already resolved the old
    epoch finishes on that consistent view.  The index-free tier runs
    on :meth:`~repro.dynamic.epochs.EpochManager.live_network` — the
    metric state including *pending* batches — so shed traffic gets
    fresh answers.
    """

    def __init__(self, manager, name: str):
        self._manager = manager
        self.name = name
        self._live_engine = None
        self._live_net = None

    def query(
        self,
        source: int,
        target: int,
        budget: float,
        want_path: bool = False,
        deadline: Deadline | None = None,
    ) -> QueryResult:
        if self.name == "SkyDijkstra":
            net = self._manager.live_network()
            if self._live_net is not net:
                self._live_engine = SkyDijkstraEngine(net)
                self._live_net = net
            return self._live_engine.query(
                source, target, budget,
                want_path=want_path, deadline=deadline,
            )
        return self._manager.epoch.tier_engine(self.name).query(
            source, target, budget, want_path=want_path, deadline=deadline
        )


class _Tier:
    """One rung of the ladder: an engine plus its breaker."""

    __slots__ = ("name", "engine", "breaker")

    def __init__(self, name: str, engine, breaker: CircuitBreaker):
        self.name = name
        self.engine = engine
        self.breaker = breaker


class QueryService:
    """Resilient CSP serving over the QHL degradation ladder.

    Build from an in-memory index, an index path (load failures degrade
    the service to its index-free tier instead of killing it), or a
    bare network (index-free from the start)::

        service = QueryService(index=index)
        service = QueryService(index_path="ny.idx", network=network)
        service = QueryService(network=network)

    ``engines`` overrides the auto-built tier engines (for tests and
    custom ladders); each needs ``name`` and
    ``query(s, t, budget, want_path=..., deadline=...)``.  The service
    itself satisfies the harness'
    :class:`~repro.instrument.harness.QueryEngine` protocol.
    """

    name = "service"

    def __init__(
        self,
        index: QHLIndex | None = None,
        network: RoadNetwork | None = None,
        index_path: str | None = None,
        config: ServiceConfig | None = None,
        engines: Sequence | None = None,
        clock: Callable[[], float] | None = None,
        epoch_manager=None,
    ):
        self.config = config or ServiceConfig()
        #: Optional :class:`~repro.dynamic.epochs.EpochManager`; when
        #: set, tier engines resolve the manager's *current* epoch per
        #: query (so a publish is picked up without rebuilding the
        #: service) and ``max_update_backlog`` governs backlog shedding.
        self.epoch_manager = epoch_manager
        self._clock = clock if clock is not None else time.monotonic
        self.index_load_error: ReproError | None = None
        #: The service's own flight recorder (``None`` when
        #: ``flight_records == 0``; the global recorder is used then).
        self.flight: FlightRecorder | None = (
            FlightRecorder(
                self.config.flight_records,
                slow_ms=self.config.flight_slow_ms,
            )
            if self.config.flight_records > 0
            else None
        )
        #: Path of the most recent automatic flight dump, if any.
        self.last_flight_dump: str | None = None
        self._dump_seq = itertools.count(1)
        self._last_flight = None
        #: The :class:`~repro.resilience.audit.AuditReport` of the
        #: ``require_audit`` gate (``None`` when the gate is off or no
        #: index was available to audit).
        self.audit_report = None
        if index is None and index_path is not None:
            index = self._load_index(index_path)
        if index is None and epoch_manager is not None:
            index = epoch_manager.epoch.dyn.index
        if network is None and index is not None:
            network = index.network
        if index is not None and self.config.require_audit:
            index = self._audit_gate(index)
        if network is None and index is None and not engines:
            if self.index_load_error is not None:
                # Nothing to degrade to: surface the typed load error.
                raise self.index_load_error
            raise ValueError(
                "QueryService needs an index, an index_path, a network, "
                "or explicit engines"
            )
        self.index = index
        self.network = network
        self._tiers = [
            _Tier(engine.name, engine, self._make_breaker(engine.name))
            for engine in (
                engines if engines is not None else self._build_engines()
            )
        ]
        if not self._tiers:
            if self.index_load_error is not None:
                raise self.index_load_error
            raise ValueError("QueryService ended up with no tiers")

    # ------------------------------------------------------------------
    def _load_index(self, path: str) -> QHLIndex | None:
        try:
            return load_index_with_retry(
                path,
                attempts=self.config.load_attempts,
                verify_checksum=self.config.verify_checksum,
            )
        except (SerializationError, OSError) as exc:
            # Degrade instead of dying: the index is a rebuildable cache
            # over the always-available online search.
            self.index_load_error = (
                exc
                if isinstance(exc, ReproError)
                else SerializationError(str(exc))
            )
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "service_index_load_failures_total",
                    help="index loads that failed and degraded the service",
                ).inc()
            return None

    def _audit_gate(self, index: QHLIndex) -> QHLIndex | None:
        """Run the opt-in index audit; drop a failing index.

        Degradation, not death: like a corrupt index file, an index
        that fails its self-audit is treated as a rebuildable cache —
        the service keeps running on the index-free tier, the typed
        :class:`~repro.exceptions.AuditError` (with the full report)
        lands in ``index_load_error``, and the report is kept in
        ``audit_report`` either way.
        """
        from repro.exceptions import AuditError
        from repro.resilience.audit import audit_index

        report = audit_index(
            index,
            queries=self.config.audit_queries,
            seed=self.config.audit_seed,
        )
        self.audit_report = report
        if report.ok:
            return index
        self.index_load_error = AuditError(
            "index failed its self-audit "
            f"({', '.join(report.failed_checks())}); "
            "serving index-free",
            report=report,
        )
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "service_index_audit_failures_total",
                help="indexes rejected by the require_audit gate",
            ).inc()
        return None

    def _build_engines(self) -> list:
        if self.epoch_manager is not None:
            return [
                _EpochTierEngine(self.epoch_manager, name)
                for name in self.config.tiers
            ]
        engines = []
        for name in self.config.tiers:
            if name == "QHL":
                if self.index is not None:
                    engines.append(
                        self.index.cached_engine(self.config.cache_size)
                        if self.config.cache_size > 0
                        else self.index.qhl_engine()
                    )
            elif name == "CSP-2Hop":
                if self.index is not None:
                    engines.append(self.index.csp2hop_engine())
            elif name == "SkyDijkstra":
                if self.network is not None:
                    engines.append(SkyDijkstraEngine(self.network))
            else:
                raise ValueError(
                    f"unknown tier {name!r}; known: "
                    f"{', '.join(DEFAULT_TIERS)}"
                )
        return engines

    def _make_breaker(self, tier: str) -> CircuitBreaker:
        def on_transition(state: str, _tier: str = tier) -> None:
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "service_breaker_transitions_total",
                    {"tier": _tier, "state": state},
                    help="circuit breaker state transitions",
                ).inc()
            if state == "open":
                # A tripped breaker is exactly when forensic evidence
                # matters: dump the flight ring before it rolls over.
                self._auto_dump(self._recorder(), f"breaker-open-{_tier}")

        return CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            reset_timeout=self.config.breaker_reset_s,
            backoff_factor=self.config.breaker_backoff_factor,
            max_timeout=self.config.breaker_max_reset_s,
            clock=self._clock,
            on_transition=on_transition,
        )

    # ------------------------------------------------------------------
    def _recorder(self):
        """The flight recorder this service reports into."""
        return self.flight if self.flight is not None else (
            get_flight_recorder()
        )

    def _auto_dump(self, recorder, reason: str) -> None:
        """Dump the flight ring to ``flight_dump_dir`` (best-effort)."""
        directory = self.config.flight_dump_dir
        if directory is None or not recorder.enabled:
            return
        if not recorder.records():
            return
        name = (
            f"flight-{os.getpid()}-{next(self._dump_seq):04d}-"
            f"{reason}.jsonl"
        )
        path = os.path.join(directory, name)
        try:
            os.makedirs(directory, exist_ok=True)
            recorder.dump(path, reason=reason)
        except OSError:
            return
        self.last_flight_dump = path

    # ------------------------------------------------------------------
    @property
    def tiers(self) -> list[str]:
        """The active ladder, fastest first."""
        return [tier.name for tier in self._tiers]

    def breaker(self, tier: str) -> CircuitBreaker:
        """The circuit breaker guarding ``tier`` (KeyError if absent)."""
        for candidate in self._tiers:
            if candidate.name == tier:
                return candidate.breaker
        raise KeyError(tier)

    # ------------------------------------------------------------------
    def query(
        self,
        source: int,
        target: int,
        budget: float,
        want_path: bool = False,
        deadline_ms: float | None = None,
        deadline: Deadline | None = None,
    ) -> QueryResult:
        """Answer one CSP query through the ladder.

        ``deadline_ms`` arms a fresh per-query deadline (defaulting to
        the config's); pass an existing ``deadline`` instead to share a
        per-batch budget across queries.  The answer's
        :attr:`~repro.types.QueryResult.engine` names the tier that
        produced it.

        Raises
        ------
        QueryError
            Malformed queries fail fast — no tier could answer them.
        DeadlineExceededError
            The budget ran out (falling back would only be slower).
        ServiceUnavailableError
            Every tier failed or had an open breaker.
        """
        recorder = self._recorder()
        flight_on = recorder.enabled
        trace_id = new_trace_id() if flight_on else None
        started = time.perf_counter() if flight_on else 0.0
        self._last_flight = None

        def note(
            engine: str,
            outcome: str,
            result: QueryResult | None = None,
            error: BaseException | None = None,
            cache_hit: bool | None = None,
        ) -> None:
            stats = getattr(result, "stats", None)
            if stats is None and error is not None:
                stats = getattr(error, "stats", None)
            margin = (
                deadline.remaining() * 1000.0
                if deadline is not None else None
            )
            self._last_flight = recorder.record(
                engine=engine,
                source=source,
                target=target,
                budget=budget,
                outcome=outcome,
                seconds=time.perf_counter() - started,
                trace_id=trace_id,
                cache_hit=cache_hit,
                deadline_margin_ms=margin,
                stats=stats,
                error=str(error) if error is not None else "",
            )

        num_vertices = (
            self.network.num_vertices if self.network is not None else None
        )
        if num_vertices is not None:
            try:
                CSPQuery(source, target, budget).validated(num_vertices)
            except QueryError as exc:
                if flight_on:
                    note("none", type(exc).__name__, error=exc)
                raise
        if deadline is None:
            ms = deadline_ms if deadline_ms is not None else (
                self.config.deadline_ms
            )
            if ms is not None:
                deadline = Deadline.from_ms(ms, clock=self._deadline_clock())
        injector = get_injector()
        registry = get_registry()
        last_error: BaseException | None = None
        shed_stale = (
            self.epoch_manager is not None
            and self.config.max_update_backlog is not None
            and self.epoch_manager.backlog() > self.config.max_update_backlog
            # Shedding only makes sense when the index-free tier is in
            # the ladder to land on; with a labeled-only ladder, a
            # lagging-but-healthy answer beats a guaranteed outage.
            and any(t.name == "SkyDijkstra" for t in self._tiers)
        )
        for position, tier in enumerate(self._tiers):
            next_name = (
                self._tiers[position + 1].name
                if position + 1 < len(self._tiers)
                else None
            )
            if shed_stale and tier.name != "SkyDijkstra":
                # The labeled tiers serve the lagging epoch; past the
                # backlog threshold, prefer fresh-but-slower answers
                # from the index-free tier on the live metrics.
                self._record_fallback(
                    registry, tier.name, next_name, "update-backlog"
                )
                continue
            if not tier.breaker.allow():
                self._record_fallback(
                    registry, tier.name, next_name, "breaker-open"
                )
                continue
            cache = (
                getattr(tier.engine, "cache", None) if flight_on else None
            )
            hits_before = getattr(cache, "hits", 0)
            try:
                if injector.enabled:
                    injector.fire("engine-query", engine=tier.name)
                result = tier.engine.query(
                    source, target, budget,
                    want_path=want_path, deadline=deadline,
                )
            except DeadlineExceededError as exc:
                # Not a tier fault: the query is out of time everywhere.
                if registry.enabled:
                    registry.counter(
                        "service_deadline_exceeded_total",
                        {"engine": tier.name},
                        help="queries that exhausted their time budget",
                    ).inc()
                if flight_on:
                    note(tier.name, type(exc).__name__, error=exc)
                raise
            except QueryError as exc:
                if flight_on:
                    note(tier.name, type(exc).__name__, error=exc)
                raise
            except Exception as exc:  # lint: allow=QHL002 the ladder's contract is to absorb any tier crash and fall through; the cause is kept in last_error
                last_error = exc
                tier.breaker.record_failure()
                self._record_fallback(
                    registry, tier.name, next_name, type(exc).__name__
                )
                continue
            tier.breaker.record_success()
            result.engine = tier.name
            if registry.enabled:
                registry.counter(
                    "service_queries_total",
                    {"tier": tier.name},
                    help="queries answered, by ladder tier",
                ).inc()
            if flight_on:
                note(
                    tier.name,
                    "ok" if result.feasible else "infeasible",
                    result=result,
                    cache_hit=(
                        cache.hits > hits_before
                        if cache is not None else None
                    ),
                )
            return result
        error = ServiceUnavailableError(
            f"no tier could answer query ({source}, {target}, {budget}); "
            f"tried {', '.join(self.tiers)}; last error: {last_error}",
            last_error=last_error,
        )
        if flight_on:
            note("none", type(error).__name__, error=error)
            self._auto_dump(recorder, "service-unavailable")
        raise error

    # ------------------------------------------------------------------
    def query_batch(
        self,
        queries: Sequence,
        want_path: bool = False,
        deadline_ms: float | None = None,
        batch_deadline_ms: float | None = None,
    ):
        """Answer a whole workload through the ladder.

        Queries run in cache-friendly order (sorted by normalised
        ``(s, t)`` pair, so a cache-enabled QHL tier answers repeated
        pairs from one frontier) but results come back in *input*
        order, in a :class:`~repro.perf.batch.BatchReport`.

        The PR-2 deadline checkpoints are preserved inside the batch
        loop: ``deadline_ms`` arms a fresh per-query deadline,
        ``batch_deadline_ms`` arms one shared deadline — it is checked
        between queries (remaining queries land in ``skipped``) and
        threaded into every engine, so a single slow query cannot
        overrun the batch budget unchecked.  Per-query failures —
        including deadline expiries and a fully failed ladder — become
        :class:`~repro.perf.batch.BatchFailure` rows instead of
        aborting the batch.
        """
        from repro.perf.batch import BatchFailure, BatchReport
        from repro.perf.batch import sorted_batch_order

        batch_deadline = (
            Deadline.from_ms(batch_deadline_ms, clock=self._deadline_clock())
            if batch_deadline_ms is not None
            else None
        )
        results: list[QueryResult | None] = [None] * len(queries)
        failures: list[BatchFailure] = []
        skipped = 0
        for i in sorted_batch_order(queries):
            if batch_deadline is not None and batch_deadline.expired():
                skipped += 1
                continue
            s, t, c = queries[i]
            per_query = (
                Deadline.from_ms(deadline_ms, clock=self._deadline_clock())
                if deadline_ms is not None
                else batch_deadline
            )
            try:
                results[i] = self.query(
                    s, t, c, want_path=want_path, deadline=per_query
                )
            except ReproError as exc:
                # Join the failure row to the flight record query()
                # just wrote for it (None when no recorder is active).
                entry = self._last_flight
                failures.append(
                    BatchFailure(
                        i, CSPQuery(s, t, c), type(exc).__name__,
                        str(exc),
                        trace_id=(
                            entry.trace_id if entry is not None else None
                        ),
                        flight_seq=(
                            entry.seq if entry is not None else None
                        ),
                    )
                )
        failures.sort(key=lambda f: f.index)
        return BatchReport(
            results=results, failures=failures, skipped=skipped
        )

    # ------------------------------------------------------------------
    def _deadline_clock(self) -> Callable[[], float]:
        injector = get_injector()
        if injector.enabled and injector.clock is not None:
            return injector.clock
        return self._clock

    @staticmethod
    def _record_fallback(registry, frm: str, to: str | None, reason: str
                         ) -> None:
        if registry.enabled:
            registry.counter(
                "service_fallback_total",
                {"from": frm, "to": to or "none", "reason": reason},
                help="degradation ladder step-downs",
            ).inc()
