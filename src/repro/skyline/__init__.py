"""Skyline path algebra: entries with provenance, canonical skyline sets,
and the multi-constraint generalisation."""

from repro.skyline.entries import (
    EDGE,
    Entry,
    edge_entry,
    expand,
    join_entry,
    path_of_pairs,
    zero_entry,
)
from repro.skyline.multi import (
    MultiEntry,
    m_best_under,
    m_dominates,
    m_join,
    m_skyline,
)
from repro.skyline.set_ops import (
    SkylineSet,
    best_under,
    cartesian_entries,
    dominated_by_set,
    dominates,
    filter_under,
    is_canonical,
    join,
    merge,
    skyline_of,
    truncate,
)

__all__ = [
    "EDGE",
    "Entry",
    "edge_entry",
    "expand",
    "join_entry",
    "path_of_pairs",
    "zero_entry",
    "MultiEntry",
    "m_best_under",
    "m_dominates",
    "m_join",
    "m_skyline",
    "SkylineSet",
    "best_under",
    "cartesian_entries",
    "dominated_by_set",
    "dominates",
    "filter_under",
    "is_canonical",
    "join",
    "merge",
    "skyline_of",
    "truncate",
]
