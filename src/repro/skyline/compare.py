"""Sanctioned weight/cost comparison helpers for skyline code.

Skyline canonicality and dominance (paper Definitions 4-6) hinge on
comparing weight/cost values, and the exactness guarantee hinges on
those comparisons being *consistent everywhere*.  On the paper's road
networks the metrics are integers and plain ``==`` is exact; but the
engines accept float metrics too, and an ad-hoc ``==`` scattered
through a hot loop is exactly where a future "almost equal after ten
additions" bug would hide (the Forest-Hop-Labeling line of MCSP work
shows how easily dominance invariants drift).

Policy therefore lives in one place: these helpers are the *only*
sanctioned equality comparisons on weight/cost values in
``repro.skyline`` and ``repro.core`` — lint rule **QHL006**
(``repro.lint``) flags every other ``==`` / ``!=`` on weight/cost
operands in those packages.  Today the helpers compare exactly
(deliberately: an epsilon would *break* exactness on integer metrics by
merging distinct skyline entries); if accumulated-float metrics ever
need tolerance-aware handling, this module is the single switch point.
"""

from __future__ import annotations

from typing import Sequence


def weights_equal(a: float, b: float) -> bool:
    """Whether two path weights are equal under the comparison policy."""
    return a == b


def costs_equal(a: float, b: float) -> bool:
    """Whether two path costs are equal under the comparison policy."""
    return a == b


def pairs_equal(
    a: Sequence[float], b: Sequence[float]
) -> bool:
    """Whether two ``(weight, cost)`` pairs are equal component-wise.

    The membership test of paper Algorithm 6 (is this skyline path
    present in the concatenation set ``P''``?) reduces to this.
    """
    return a[0] == b[0] and a[1] == b[1]
