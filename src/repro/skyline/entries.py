"""Skyline entries and concrete-path provenance.

A *skyline entry* represents one non-dominated path as a plain tuple
``(weight, cost, provenance)``.  Plain tuples keep the inner loops of the
index build and of Algorithm 5 as cheap as pure Python allows.

The paper stores only weight-cost pairs in the labels "for efficiency" and
defers path retrieval to the CSP-2Hop paper.  We implement retrieval with
*provenance*: every entry optionally remembers how it was formed —

* ``("edge", u, v)`` — a single edge between ``u`` and ``v``;
* ``("zero", v)`` — the empty path at ``v``;
* ``("join", mid, left, right)`` — the concatenation at vertex ``mid`` of
  two child entries.

Provenance references child entries *by object*, so expansion is a simple
recursion that survives skyline-set re-sorting.  Because the network is
undirected, a set built for the pair ``(a, b)`` may be looked up as
``(b, a)``; expansion therefore orients each recursive segment by the
junction vertex rather than trusting build order.  Building without
provenance (``prov=None``) halves memory for pure benchmark runs.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.exceptions import ReproError

Entry = tuple[float, float, Any]
"""``(weight, cost, provenance)`` — provenance may be ``None``."""

EDGE = "edge"
ZERO = "zero"
JOIN = "join"


def edge_entry(
    weight: float, cost: float, u: int, v: int, with_prov: bool = True
) -> Entry:
    """An entry for a direct edge between ``u`` and ``v``."""
    return (weight, cost, (EDGE, u, v) if with_prov else None)


def join_entry(left: Entry, right: Entry, mid: int) -> Entry:
    """The concatenation of two entries meeting at vertex ``mid``.

    Weight and cost are additive (paper, after Definition 2).  Provenance
    is recorded only when both children carry provenance.
    """
    if left[2] is None or right[2] is None:
        prov = None
    else:
        prov = (JOIN, mid, left, right)
    return (left[0] + right[0], left[1] + right[1], prov)


def zero_entry(vertex: int | None = None, with_prov: bool = True) -> Entry:
    """The empty path at ``vertex``: identity element of concatenation."""
    return (0, 0, (ZERO, vertex) if with_prov else None)


def _expand_any(entry: Entry) -> list[int]:
    """Unfold an entry into a vertex path in *some* orientation."""
    prov = entry[2]
    if prov is None:
        raise ReproError(
            "path retrieval requested but the index was built with "
            "store_paths=False"
        )
    tag = prov[0]
    if tag == EDGE:
        return [prov[1], prov[2]]
    if tag == ZERO:
        if prov[1] is None:
            raise ReproError("anonymous zero-length entry cannot expand")
        return [prov[1]]
    _tag, mid, left, right = prov
    head = _expand_any(left)
    tail = _expand_any(right)
    # Orient both segments around the junction vertex.
    if head[-1] != mid:
        head.reverse()
    if head[-1] != mid:
        raise ReproError(f"join segment does not touch junction {mid}")
    if tail[0] != mid:
        tail.reverse()
    if tail[0] != mid:
        raise ReproError(f"join segment does not touch junction {mid}")
    return head + tail[1:]


def expand(entry: Entry, source: int, target: int) -> list[int]:
    """Unfold an entry into the concrete vertex path ``source .. target``.

    Works in either direction because the network is undirected.

    Raises
    ------
    ReproError
        If the entry was built without provenance, or its endpoints do
        not match ``source`` / ``target``.
    """
    path = _expand_any(entry)
    if path[0] == source and path[-1] == target:
        return path
    path.reverse()
    if path[0] == source and path[-1] == target:
        return path
    raise ReproError(
        f"expanded path connects ({path[-1]}, {path[0]}), "
        f"not ({source}, {target})"
    )


def path_of_pairs(entries: Sequence[Entry]) -> list[tuple[float, float]]:
    """Strip provenance: the ``(w, c)`` pairs of a sequence of entries."""
    return [(e[0], e[1]) for e in entries]
