"""Skyline kernels as index arithmetic over flat label columns.

These are the hot-path twins of :func:`repro.skyline.set_ops.best_under`
and :func:`repro.core.concatenation.concat_best_under`, operating on the
cost-sorted ``weights`` / ``costs`` columns of a
:class:`~repro.storage.flat.FlatLabelStore` instead of lists of entry
tuples.  A skyline set is addressed as a half-open slice ``[lo, hi)``
into both columns; canonical ordering (cost strictly increasing, weight
strictly decreasing) is what makes both kernels correct.

Answer semantics are *bit-identical* to the object kernels: both return
the lexicographically smallest feasible ``(weight, cost)`` pair.  Only
the ``inspected`` operation count may be smaller here — the sweep
binary-searches its start/end bounds, skipping pairs that are provably
over budget — and operation counters are not part of the cross-engine
identity contract (the differential harness diffs
``(feasible, weight, cost)`` triples).

The columns may be ``array('d')`` objects or ``memoryview('d')`` casts
over an ``mmap``; both support subscripting and :func:`bisect.bisect_right`
with ``lo`` / ``hi`` bounds, so nothing here materialises a per-call key
list the way ``best_under`` does.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence

#: Either an ``array('d')`` or a ``memoryview`` cast to ``'d'``.
FloatColumn = Sequence[float]


def best_under_cols(
    costs: FloatColumn, lo: int, hi: int, budget: float
) -> int:
    """Index of the best entry with ``cost <= budget`` in ``[lo, hi)``.

    Canonical ordering makes the *last* within-budget entry the
    minimum-weight feasible one, so this is a pure binary search over
    the cost column — no per-call key-list allocation.  Returns ``-1``
    when no entry fits the budget.
    """
    idx = bisect_right(costs, budget, lo, hi) - 1
    return idx if idx >= lo else -1


def sweep_best_pair(
    s_weights: FloatColumn,
    s_costs: FloatColumn,
    s_lo: int,
    s_hi: int,
    t_weights: FloatColumn,
    t_costs: FloatColumn,
    t_lo: int,
    t_hi: int,
    budget: float,
    best_weight: float,
    best_cost: float,
) -> tuple[float, float, int]:
    """Algorithm 5's two-pointer sweep over two column slices.

    ``[s_lo, s_hi)`` addresses ``P_sh`` and ``[t_lo, t_hi)`` addresses
    ``P_ht``.  ``(best_weight, best_cost)`` is the current global best
    (``inf, inf`` when none), playing the role of ``prune`` in
    :func:`~repro.core.concatenation.concat_best_under`: a feasible pair
    only wins by being lexicographically smaller.

    Returns ``(best_weight, best_cost, inspected)`` — the possibly
    improved best pair and the number of pairs inspected.

    The sweep bounds are tightened by binary search before walking:
    right parts too costly to fit the budget even with the *cheapest*
    left part can never be feasible, and likewise left parts against
    the cheapest right part.  Every excluded pair is infeasible, so the
    minimum over feasible pairs — the answer — is untouched.
    """
    if s_lo >= s_hi or t_lo >= t_hi:
        return best_weight, best_cost, 0
    j = bisect_right(t_costs, budget - s_costs[s_lo], t_lo, t_hi) - 1
    i_hi = bisect_right(s_costs, budget - t_costs[t_lo], s_lo, s_hi)
    i = s_lo
    inspected = 0
    if i >= i_hi or j < t_lo:
        return best_weight, best_cost, 0
    # The current-cell costs are kept in locals: each loop iteration
    # moves only one pointer, so only one column read is needed per
    # step (column subscripts box a fresh float each time).
    s_cost = s_costs[i]
    t_cost = t_costs[j]
    while True:
        inspected += 1
        cost = s_cost + t_cost
        if cost <= budget:
            weight = s_weights[i] + t_weights[j]
            if (weight, cost) < (best_weight, best_cost):
                best_weight = weight
                best_cost = cost
            i += 1
            if i >= i_hi:
                break
            s_cost = s_costs[i]
        else:
            j -= 1
            if j < t_lo:
                break
            t_cost = t_costs[j]
    return best_weight, best_cost, inspected
