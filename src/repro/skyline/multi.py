"""Multi-constraint skyline algebra (paper §1, §6.2: CSP-2Hop "can also
handle the case where multiple constraints are imposed").

Entries generalise to ``(weight, costs)`` where ``costs`` is a tuple of
``k`` constrained metrics.  With ``k >= 2`` the Pareto front is no longer
a simple cost-sorted chain, so the canonical-list tricks of
:mod:`repro.skyline.set_ops` do not apply; this module provides the
general (quadratic-filter) algebra plus the query-side feasibility check.
The multi-constraint exact baseline built on top of it lives in
:mod:`repro.baselines.dijkstra_csp`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

MultiEntry = tuple[float, tuple[float, ...]]
"""``(weight, costs)`` with ``costs`` a tuple of constrained metrics."""


def m_dominates(a: MultiEntry, b: MultiEntry) -> bool:
    """Vector dominance: no-worse everywhere, strictly better somewhere."""
    if a[0] > b[0]:
        return False
    if any(ac > bc for ac, bc in zip(a[1], b[1], strict=True)):
        return False
    return a[0] < b[0] or any(
        ac < bc for ac, bc in zip(a[1], b[1], strict=True)
    )


def m_skyline(entries: Iterable[MultiEntry]) -> list[MultiEntry]:
    """The Pareto front of a collection of multi-cost entries.

    Sorts by ``(weight, costs)`` and keeps entries not dominated by an
    already-kept entry.  Because kept entries have non-decreasing weight,
    a kept entry can only be dominated by an earlier kept one, so one pass
    suffices.
    """
    result: list[MultiEntry] = []
    seen: set[MultiEntry] = set()
    for entry in sorted(set(entries)):
        if entry in seen:
            continue
        if any(m_dominates(kept, entry) for kept in result):
            continue
        result.append(entry)
        seen.add(entry)
    return result


def m_join(
    a: Sequence[MultiEntry],
    b: Sequence[MultiEntry],
    budgets: Sequence[float] | None = None,
) -> list[MultiEntry]:
    """Pareto front of all pairwise concatenations.

    ``budgets`` optionally drops concatenations violating any budget.
    """
    products: list[MultiEntry] = []
    for lw, lcosts in a:
        for rw, rcosts in b:
            costs = tuple(
                lc + rc for lc, rc in zip(lcosts, rcosts, strict=True)
            )
            if budgets is not None and any(
                c > budget for c, budget in zip(costs, budgets, strict=True)
            ):
                continue
            products.append((lw + rw, costs))
    return m_skyline(products)


def m_best_under(
    entries: Sequence[MultiEntry], budgets: Sequence[float]
) -> MultiEntry | None:
    """Minimum-weight entry meeting every budget, or ``None``."""
    best: MultiEntry | None = None
    for entry in entries:
        if any(
            c > budget for c, budget in zip(entry[1], budgets, strict=True)
        ):
            continue
        if best is None or entry[0] < best[0]:
            best = entry
    return best
