"""Operations on skyline path sets (paper §2.2).

A *skyline set* is the canonical representation of ``P_st``: a list of
entries sorted by strictly increasing cost and therefore strictly
decreasing weight, with no entry dominated by another (Definitions 4-6).
One representative is kept per ``(w, c)`` pair — the paper's queries only
ever need one optimal path per pair.

This module is the hot kernel of the whole reproduction: the tree
decomposition's shortcut maintenance, the label construction, and every
baseline query reduce to :func:`merge` and :func:`join` calls.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

from repro.skyline.compare import costs_equal
from repro.skyline.entries import Entry, join_entry

SkylineSet = list[Entry]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether path pair ``a`` dominates ``b`` (Definition 4).

    ``a ≺ b`` iff a is at least as good on both metrics and strictly
    better on one.
    """
    return a[0] <= b[0] and a[1] <= b[1] and (a[0] < b[0] or a[1] < b[1])


def is_canonical(entries: Sequence[Entry]) -> bool:
    """Whether a list is a canonical skyline set.

    Canonical means: sorted by strictly increasing cost and strictly
    decreasing weight.  (Those two conditions already imply
    dominance-freeness.)
    """
    for prev, cur in zip(entries, entries[1:], strict=False):
        if not (prev[1] < cur[1] and prev[0] > cur[0]):
            return False
    return True


def skyline_of(entries: Iterable[Entry]) -> SkylineSet:
    """The canonical skyline of an arbitrary collection of entries.

    Sorts by ``(cost, weight)`` and keeps each entry whose weight strictly
    improves on everything cheaper — the classic 2-D Pareto sweep.
    """
    result: SkylineSet = []
    best_weight: float | None = None
    last_cost: float | None = None
    for entry in sorted(entries, key=lambda e: (e[1], e[0])):
        w, c = entry[0], entry[1]
        if best_weight is not None and w >= best_weight:
            continue
        if last_cost is not None and costs_equal(c, last_cost):
            # Same cost, smaller weight: replace the previous entry.
            result[-1] = entry
        else:
            result.append(entry)
        best_weight = w
        last_cost = c
    return result


def merge(a: Sequence[Entry], b: Sequence[Entry]) -> SkylineSet:
    """Skyline of the union of two canonical skyline sets.

    Linear two-pointer merge on cost followed by the Pareto sweep; used to
    fold path-through-v shortcuts into existing shortcut sets during the
    tree decomposition.
    """
    if not a:
        return list(b)
    if not b:
        return list(a)
    merged: list[Entry] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if (a[i][1], a[i][0]) <= (b[j][1], b[j][0]):
            merged.append(a[i])
            i += 1
        else:
            merged.append(b[j])
            j += 1
    merged.extend(a[i:])
    merged.extend(b[j:])

    result: SkylineSet = []
    best_weight: float | None = None
    last_cost: float | None = None
    for entry in merged:
        w, c = entry[0], entry[1]
        if best_weight is not None and w >= best_weight:
            continue
        if last_cost is not None and costs_equal(c, last_cost):
            result[-1] = entry
        else:
            result.append(entry)
        best_weight = w
        last_cost = c
    return result


def join(
    a: Sequence[Entry],
    b: Sequence[Entry],
    mid: int,
    budget: float | None = None,
) -> SkylineSet:
    """Skyline of all pairwise concatenations of two skyline sets at ``mid``.

    This is the paper's ``{p1 ⊕ p2 : p1 ∈ P_su, p2 ∈ P_uh}`` followed by a
    skyline filter.  ``budget`` optionally drops concatenations whose cost
    exceeds it (used when an overall budget is known during queries, never
    during index construction).

    Complexity is ``O(|a| |b| log)`` — the Cartesian product the paper's
    CSP-2Hop pays at query time and QHL moves to index time.
    """
    if not a or not b:
        return []
    products: list[Entry] = []
    for left in a:
        lw, lc = left[0], left[1]
        if budget is not None and lc + b[0][1] > budget:
            # b is cost-sorted: every concatenation with this left
            # overshoots the budget.
            continue
        for right in b:
            if budget is not None and lc + right[1] > budget:
                break
            products.append(join_entry(left, right, mid))
    return skyline_of(products)


def cartesian_entries(
    a: Sequence[Entry], b: Sequence[Entry], mid: int
) -> list[Entry]:
    """All pairwise concatenations, *unfiltered* and sorted by ``(c, w)``.

    Algorithm 6 of the paper needs the raw concatenation set ``P''`` in
    cost order (it checks membership of skyline paths in it, and dominated
    members still count as members).
    """
    products = [
        join_entry(left, right, mid) for left in a for right in b
    ]
    products.sort(key=lambda e: (e[1], e[0]))
    return products


def filter_under(entries: Sequence[Entry], theta: float) -> SkylineSet:
    """``P^θ = {p ∈ P : c(p) < θ}`` (strict, as defined before Theorem 1)."""
    keys = [e[1] for e in entries]
    cut = bisect.bisect_left(keys, theta)
    return list(entries[:cut])


def best_under(entries: Sequence[Entry], budget: float) -> Entry | None:
    """The minimum-weight entry with ``cost <= budget``.

    On a canonical skyline set this is simply the *last* entry within
    budget (larger cost ⇒ smaller weight), found by binary search — this
    is the paper's observation in §2.2 used for the ancestor-descendant
    query case.
    """
    keys = [e[1] for e in entries]
    idx = bisect.bisect_right(keys, budget) - 1
    if idx < 0:
        return None
    return entries[idx]


def dominated_by_set(entry: Entry, entries: Sequence[Entry]) -> bool:
    """Whether some member of a canonical set dominates ``entry``."""
    keys = [e[1] for e in entries]
    idx = bisect.bisect_right(keys, entry[1]) - 1
    if idx < 0:
        return False
    candidate = entries[idx]
    return dominates(candidate, entry)


def truncate(entries: SkylineSet, max_size: int) -> SkylineSet:
    """Keep at most ``max_size`` entries, evenly spread across the set.

    An *approximation* knob (not used by default): large real networks can
    grow skyline sets into the thousands; truncation bounds index size at
    the price of exactness.  The first and last entries (cost-optimal and
    weight-optimal paths) are always kept.
    """
    if max_size < 2:
        raise ValueError("max_size must be at least 2")
    n = len(entries)
    if n <= max_size:
        return entries
    step = (n - 1) / (max_size - 1)
    picked = [entries[round(i * step)] for i in range(max_size)]
    # Rounding can collide on tiny sets; dedupe while keeping order.
    result: SkylineSet = []
    for e in picked:
        if not result or result[-1] is not e:
            result.append(e)
    return result
