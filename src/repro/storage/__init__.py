"""Index persistence: versioned save/load, a compact array-packed
format, and the flat (version 3) envelope whose columns mmap in with
zero copies."""

from repro.storage.compact import CompactLabels, pack_labels, unpack_labels
from repro.storage.flat import FlatLabelStore
from repro.storage.flatfile import (
    FLAT_FORMAT_VERSION,
    load_flat_index,
    save_flat_index,
)
from repro.storage.serialize import (
    FORMAT_VERSION,
    load_compact_index,
    load_index,
    load_index_with_retry,
    save_compact_index,
    save_index,
)

__all__ = [
    "CompactLabels",
    "FLAT_FORMAT_VERSION",
    "FORMAT_VERSION",
    "FlatLabelStore",
    "load_compact_index",
    "load_flat_index",
    "load_index",
    "load_index_with_retry",
    "pack_labels",
    "save_compact_index",
    "save_flat_index",
    "save_index",
    "unpack_labels",
]
