"""Index persistence: versioned save/load, plus a compact array-packed
format for shipping large indexes."""

from repro.storage.compact import CompactLabels, pack_labels, unpack_labels
from repro.storage.serialize import (
    FORMAT_VERSION,
    load_compact_index,
    load_index,
    load_index_with_retry,
    save_compact_index,
    save_index,
)

__all__ = [
    "CompactLabels",
    "FORMAT_VERSION",
    "load_compact_index",
    "load_index",
    "load_index_with_retry",
    "pack_labels",
    "save_compact_index",
    "save_index",
    "unpack_labels",
]
