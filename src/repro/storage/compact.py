"""Compact array-packed label storage.

Packs a :class:`~repro.labeling.labels.LabelStore` into five flat
arrays — numeric payloads in ``array('d')``, topology in ``array('q')``
— a schema'd plain-data form with no Python object graph.  Gzip
compresses the arrays better than the equivalent pickle (regular 8-byte
strides vs. varint soup), so the compact index file is the smaller one
on disk; see ``tests/test_compact_storage.py`` for the measured
comparison.

Packing keeps only the ``(weight, cost)`` payloads: provenance (path
retrieval) does not survive, mirroring the paper's labels which store
weight-cost pairs only.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.exceptions import SerializationError
from repro.labeling.labels import LabelStore


@dataclass
class CompactLabels:
    """Flat-array form of a label store.

    Layout: for vertex ``v``, its label sets occupy the slice
    ``set_offsets[v] : set_offsets[v + 1]`` of ``hubs`` /
    ``entry_offsets``; set ``i`` holds entries
    ``entry_offsets[i] : entry_offsets[i + 1]`` of ``weights`` /
    ``costs`` (cost-sorted, as the canonical invariant requires).
    """

    num_vertices: int
    set_offsets: array[int]  # 'q', len = num_vertices + 1
    hubs: array[int]         # 'q', one per stored set
    entry_offsets: array[int]  # 'q', len = num_sets + 1
    weights: array[float]    # 'd', one per entry
    costs: array[float]      # 'd', one per entry

    def size_bytes(self) -> int:
        """Actual in-memory payload size of the arrays."""
        return sum(
            arr.itemsize * len(arr)
            for arr in (
                self.set_offsets, self.hubs, self.entry_offsets,
                self.weights, self.costs,
            )
        )


def pack_labels(store: LabelStore) -> CompactLabels:
    """Pack a label store into flat arrays (drops provenance)."""
    set_offsets = array("q", [0])
    hubs = array("q")
    entry_offsets = array("q", [0])
    weights = array("d")
    costs = array("d")

    for v in range(store.num_vertices):
        label = store.label(v)
        for u in store.hubs_of(v):
            entries = label[u]
            hubs.append(u)
            for entry in entries:
                weights.append(entry[0])
                costs.append(entry[1])
            entry_offsets.append(len(weights))
        set_offsets.append(len(hubs))

    return CompactLabels(
        num_vertices=store.num_vertices,
        set_offsets=set_offsets,
        hubs=hubs,
        entry_offsets=entry_offsets,
        weights=weights,
        costs=costs,
    )


def unpack_labels(compact: CompactLabels) -> LabelStore:
    """Rebuild a queryable label store from the flat arrays.

    Integral metrics are restored as ints so answers compare exactly
    against indexes built from integer networks.
    """
    if len(compact.set_offsets) != compact.num_vertices + 1:
        raise SerializationError("compact labels: bad set_offsets length")
    if len(compact.entry_offsets) != len(compact.hubs) + 1:
        raise SerializationError("compact labels: bad entry_offsets length")

    store = LabelStore(compact.num_vertices, store_paths=False)
    weights = compact.weights
    costs = compact.costs
    entry_offsets = compact.entry_offsets

    set_index = 0
    for v in range(compact.num_vertices):
        start, stop = compact.set_offsets[v], compact.set_offsets[v + 1]
        for i in range(start, stop):
            u = compact.hubs[i]
            lo, hi = entry_offsets[set_index], entry_offsets[set_index + 1]
            entries = [
                (_restore(weights[j]), _restore(costs[j]), None)
                for j in range(lo, hi)
            ]
            store.set(v, u, entries)
            set_index += 1
    return store


def _restore(x: float) -> float:
    return int(x) if x.is_integer() else x
