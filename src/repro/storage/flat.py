"""Flat columnar label store — the query-time twin of ``CompactLabels``.

:class:`FlatLabelStore` holds the five ``pack_labels`` arrays (or
``memoryview`` casts over an ``mmap``) and serves skyline sets as
half-open column slices instead of per-entry tuple lists, so the flat
query engine (:class:`~repro.core.flat.FlatQHLEngine`) touches no
Python object graph on the hot path.

Layout (identical to :class:`~repro.storage.compact.CompactLabels`):
vertex ``v``'s sets occupy ``set_offsets[v] : set_offsets[v + 1]`` of
``hubs`` / ``entry_offsets``; hubs are sorted per vertex (``pack_labels``
iterates ``sorted(label)``), so set lookup is a binary search; set ``i``
holds entries ``entry_offsets[i] : entry_offsets[i + 1]`` of
``weights`` / ``costs``, cost-sorted as the canonical invariant
requires.

The store also speaks the :class:`~repro.labeling.labels.LabelStore`
read API — ``label(v)`` returns a lazy hub→entries mapping, ``get(x, y)``
materialises entry tuples, plus the counting/iteration helpers — so
consumers built against the object store (the frontier cache, the index
audit) run over flat or mmap-backed labels unmodified.  Materialised
entries carry ``None`` provenance, exactly like a compact-loaded store.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from operator import sub
from typing import Any, Iterator, Mapping

from repro.exceptions import IndexBuildError, SerializationError
from repro.labeling.labels import LabelStore
from repro.skyline.entries import Entry
from repro.storage.compact import CompactLabels, _restore, pack_labels

#: The zero-length path — concatenation identity, no provenance.
_ZERO: list[Entry] = [(0, 0, None)]


class FlatLabelStore:
    """Skyline labels as five flat columns with offset tables."""

    #: Flat columns never keep provenance (mirrors compact storage).
    store_paths = False

    def __init__(
        self,
        num_vertices: int,
        set_offsets: Any,
        hubs: Any,
        entry_offsets: Any,
        weights: Any,
        costs: Any,
        backing: Any = None,
    ):
        if len(set_offsets) != num_vertices + 1:
            raise SerializationError("flat labels: bad set_offsets length")
        if len(entry_offsets) != len(hubs) + 1:
            raise SerializationError("flat labels: bad entry_offsets length")
        if len(weights) != len(costs):
            raise SerializationError(
                "flat labels: weight/cost column lengths differ"
            )
        if set_offsets[0] != 0 or set_offsets[num_vertices] != len(hubs):
            raise SerializationError("flat labels: set_offsets out of range")
        if entry_offsets[0] != 0 or entry_offsets[len(hubs)] != len(weights):
            raise SerializationError("flat labels: entry_offsets out of range")
        self.num_vertices = num_vertices
        self.set_offsets = set_offsets
        self.hubs = hubs
        self.entry_offsets = entry_offsets
        self.weights = weights
        self.costs = costs
        self.build_seconds = 0.0
        # Keeps the mmap (and through it the shared pages) alive for as
        # long as the store's column views reference it.
        self._backing = backing
        # Lazily built hub → row-index / hub → set-size dicts, one per
        # *queried* vertex (see :meth:`hub_rows` / :meth:`hub_sizes`);
        # derived data, never serialized.
        self._hub_rows: dict[int, dict[int, int]] = {}
        self._hub_sizes: dict[int, dict[int, int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_compact(cls, compact: CompactLabels) -> "FlatLabelStore":
        """Wrap ``pack_labels`` output; the arrays are shared, not copied."""
        return cls(
            compact.num_vertices,
            compact.set_offsets,
            compact.hubs,
            compact.entry_offsets,
            compact.weights,
            compact.costs,
        )

    @classmethod
    def from_store(cls, store: LabelStore) -> "FlatLabelStore":
        """Pack an object-graph label store into fresh flat columns."""
        flat = cls.from_compact(pack_labels(store))
        flat.build_seconds = store.build_seconds
        return flat

    def to_compact(self) -> CompactLabels:
        """Fresh ``array`` copies of the columns (``pack_labels`` form).

        Because the layout is byte-for-byte the ``pack_labels`` layout,
        a store loaded from an mmap repacks to the identical bytes — the
        round-trip identity the storage tests pin.
        """
        return CompactLabels(
            num_vertices=self.num_vertices,
            set_offsets=_as_array("q", self.set_offsets),
            hubs=_as_array("q", self.hubs),
            entry_offsets=_as_array("q", self.entry_offsets),
            weights=_as_array("d", self.weights),
            costs=_as_array("d", self.costs),
        )

    # ------------------------------------------------------------------
    # Hot-path slice lookup (no entry materialisation)
    # ------------------------------------------------------------------
    def find_set(self, v: int, u: int) -> int:
        """Row index of ``P_vu`` within ``L(v)``, or ``-1`` if absent."""
        lo, hi = self.set_offsets[v], self.set_offsets[v + 1]
        i = bisect_left(self.hubs, u, lo, hi)
        if i < hi and self.hubs[i] == u:
            return i
        return -1

    def hub_rows(self, v: int) -> dict[int, int]:
        """Hub → row-index dict for ``L(v)``, built once per vertex.

        The flat twin of the object store's per-vertex label dicts: the
        first query touching ``v`` pays one C-speed ``dict(zip(...))``
        over its hub slice, every later lookup is O(1).  Purely derived
        from the columns (never serialized), tiny — two ints per hub —
        and forked workers either inherit built entries or rebuild
        locally, leaving the mapped columns untouched.
        """
        rows = self._hub_rows.get(v)
        if rows is None:
            lo, hi = self.set_offsets[v], self.set_offsets[v + 1]
            rows = dict(zip(self.hubs[lo:hi], range(lo, hi), strict=True))
            self._hub_rows[v] = rows
        return rows

    def hub_sizes(self, v: int) -> dict[int, int]:
        """Hub → skyline-set-size dict for ``L(v)``, built once per
        vertex.

        Hoplink cost estimation probes ``|P_vh|`` tens of times per
        query; with this dict each probe is one O(1) lookup, matching
        the object store's ``len(label[h])``.  Built entirely at C
        speed (``dict(zip(..., map(sub, ...)))``) from the offset
        table; derived data like :meth:`hub_rows`.
        """
        sizes = self._hub_sizes.get(v)
        if sizes is None:
            lo, hi = self.set_offsets[v], self.set_offsets[v + 1]
            offsets = self.entry_offsets
            sizes = dict(zip(
                self.hubs[lo:hi],
                map(sub, offsets[lo + 1:hi + 1], offsets[lo:hi]),
                strict=True,
            ))
            self._hub_sizes[v] = sizes
        return sizes

    def set_bounds(self, v: int, u: int) -> tuple[int, int]:
        """Half-open ``[lo, hi)`` into the entry columns for ``P_vu``.

        Raises :class:`IndexBuildError` when ``L(v)`` holds no set for
        hub ``u`` (the flat analogue of ``LabelFetcher``'s KeyError).
        """
        i = self.find_set(v, u)
        if i < 0:
            raise IndexBuildError(
                f"L({v}) has no skyline set for hub {u}; its tree node "
                "is not an ancestor"
            )
        return self.entry_offsets[i], self.entry_offsets[i + 1]

    def pair_bounds(self, x: int, y: int) -> tuple[int, int]:
        """Entry-column bounds for ``P_xy``, wherever it is stored.

        Symmetric like :meth:`LabelStore.get` — checks ``L(x)`` then
        ``L(y)`` — and raises :class:`IndexBuildError` when neither
        label holds the pair.
        """
        i = self.find_set(x, y)
        if i < 0:
            i = self.find_set(y, x)
        if i < 0:
            raise IndexBuildError(
                f"no label covers the pair ({x}, {y}); their tree nodes "
                "are not in an ancestor chain"
            )
        return self.entry_offsets[i], self.entry_offsets[i + 1]

    # ------------------------------------------------------------------
    # LabelStore-compatible read API (materialises entry tuples)
    # ------------------------------------------------------------------
    def label(self, v: int) -> "_FlatLabel":
        """``L(v)`` as a lazy hub → skyline-set mapping."""
        return _FlatLabel(self, v)

    def get(self, x: int, y: int) -> list[Entry]:
        """``P_xy`` as entry tuples (``None`` provenance)."""
        if x == y:
            return _ZERO
        lo, hi = self.pair_bounds(x, y)
        return self.entries(lo, hi)

    def has(self, x: int, y: int) -> bool:
        """Whether ``P_xy`` is available."""
        return x == y or self.find_set(x, y) >= 0 or self.find_set(y, x) >= 0

    def entries(self, lo: int, hi: int) -> list[Entry]:
        """Materialise the entry slice ``[lo, hi)`` as tuples.

        Integral metrics come back as ints (like ``unpack_labels``) so
        answers compare exactly against object-graph indexes built from
        integer networks.
        """
        weights, costs = self.weights, self.costs
        return [
            (_restore(weights[i]), _restore(costs[i]), None)
            for i in range(lo, hi)
        ]

    def hubs_of(self, v: int) -> list[int]:
        """The sorted hub vertices of ``L(v)``."""
        lo, hi = self.set_offsets[v], self.set_offsets[v + 1]
        return [self.hubs[i] for i in range(lo, hi)]

    # ------------------------------------------------------------------
    # Size accounting / iteration (LabelStore parity)
    # ------------------------------------------------------------------
    def num_entries(self) -> int:
        return len(self.weights)

    def num_sets(self) -> int:
        return len(self.hubs)

    def size_bytes(self) -> int:
        """Actual payload size of the five columns (8 bytes per item)."""
        return 8 * (
            len(self.set_offsets)
            + len(self.hubs)
            + len(self.entry_offsets)
            + len(self.weights)
            + len(self.costs)
        )

    def max_set_size(self) -> int:
        offsets = self.entry_offsets
        return max(
            (offsets[i + 1] - offsets[i] for i in range(len(self.hubs))),
            default=0,
        )

    def average_set_size(self) -> float:
        count = self.num_sets()
        return self.num_entries() / count if count else 0.0

    def items(self) -> Iterator[tuple[int, int, list[Entry]]]:
        """Iterate ``(v, u, P_vu)`` over every stored set."""
        offsets = self.entry_offsets
        for v in range(self.num_vertices):
            lo, hi = self.set_offsets[v], self.set_offsets[v + 1]
            for i in range(lo, hi):
                yield v, self.hubs[i], self.entries(offsets[i], offsets[i + 1])

    # ------------------------------------------------------------------
    def validate_structure(self) -> list[str]:
        """Structural problems in the offset tables and hub ordering.

        Checks what the constructor's cheap length checks cannot: offset
        monotonicity and per-vertex hub sortedness.  Cost-sortedness and
        dominance-freeness of the entry columns are the audit's
        ``label-order`` / ``label-dominance`` checks, which iterate
        :meth:`items` and therefore cover flat stores too.
        """
        problems: list[str] = []
        set_offsets, entry_offsets = self.set_offsets, self.entry_offsets
        for v in range(self.num_vertices):
            if set_offsets[v + 1] < set_offsets[v]:
                problems.append(
                    f"set_offsets not monotone at vertex {v}: "
                    f"{set_offsets[v]} -> {set_offsets[v + 1]}"
                )
        for i in range(len(self.hubs)):
            if entry_offsets[i + 1] < entry_offsets[i]:
                problems.append(
                    f"entry_offsets not monotone at set {i}: "
                    f"{entry_offsets[i]} -> {entry_offsets[i + 1]}"
                )
        hubs = self.hubs
        for v in range(self.num_vertices):
            lo, hi = set_offsets[v], set_offsets[v + 1]
            for i in range(lo + 1, hi):
                if hubs[i] <= hubs[i - 1]:
                    problems.append(
                        f"L({v}) hubs not strictly increasing at row {i}: "
                        f"{hubs[i - 1]} then {hubs[i]} "
                        "(binary-search lookup would miss sets)"
                    )
                    break
        return problems

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "mmap" if self._backing is not None else "array"
        return (
            f"FlatLabelStore(|V|={self.num_vertices}, "
            f"sets={self.num_sets()}, entries={self.num_entries()}, "
            f"backing={kind})"
        )


class _FlatLabel(Mapping[int, list[Entry]]):
    """Lazy ``L(v)`` view: hub vertex → materialised skyline set."""

    __slots__ = ("_store", "_lo", "_hi")

    def __init__(self, store: FlatLabelStore, v: int):
        self._store = store
        self._lo = store.set_offsets[v]
        self._hi = store.set_offsets[v + 1]

    def __getitem__(self, u: int) -> list[Entry]:
        store = self._store
        i = bisect_left(store.hubs, u, self._lo, self._hi)
        if i >= self._hi or store.hubs[i] != u:
            raise KeyError(u)
        return store.entries(
            store.entry_offsets[i], store.entry_offsets[i + 1]
        )

    def __iter__(self) -> Iterator[int]:
        hubs = self._store.hubs
        for i in range(self._lo, self._hi):
            yield hubs[i]

    def __len__(self) -> int:
        return self._hi - self._lo


def _as_array(typecode: str, column: Any) -> "array[Any]":
    """A fresh ``array`` holding ``column``'s exact bytes."""
    out: "array[Any]" = array(typecode)
    out.frombytes(column.tobytes())
    return out
