"""Format version 3: the flat index envelope with zero-copy mmap load.

Versions 1/2 (:mod:`repro.storage.serialize`) pickle an object graph —
loading deserialises every skyline entry back into tuples, and a forked
worker pool un-shares the whole index the moment reference counts are
touched.  Version 3 stores the ``pack_labels`` columns *verbatim* as raw
little-endian bytes behind a fixed binary header, so loading is::

    header parse -> SHA-256 verify -> mmap -> memoryview casts

Near-zero startup (no per-entry work) and, because the entry columns are
read through an ``mmap``, the kernel shares their physical pages across
fork-based worker pools — object-graph indexes cannot share pages
because refcount writes copy them.

File layout (all integers little-endian)::

    [0:80)    header: magic "RQHLFLT1", version=3, flags,
              meta_offset, meta_length, data_offset, data_length,
              sha256(meta bytes + data bytes)
    [meta)    pickled metadata dict: graph edges, elimination order,
              bags, pruning conditions, build timings, and one
              (name, typecode, count, offset) descriptor per column
    [data)    the five raw column byte-strings, 8-byte aligned

Truncation, bit flips (header, metadata, or columns), version or
endianness mismatches all raise :class:`SerializationError`; writes go
through the same atomic temp-file + fsync + ``os.replace`` primitive as
every other save, firing the ``save-index`` fault points.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import pickle
import struct
import sys
from array import array
from typing import TYPE_CHECKING, Any

from repro.exceptions import SerializationError
from repro.storage.compact import pack_labels
from repro.storage.flat import FlatLabelStore
from repro.storage.serialize import _PICKLE_ERRORS, _atomic_write_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.flat import FlatIndex

FLAT_MAGIC = b"RQHLFLT1"
FLAT_FORMAT_VERSION = 3

#: Header flag bit: the column bytes are little-endian.  Arrays are
#: written in native byte order (that is what makes the load zero-copy),
#: so a file written on a big-endian machine refuses to load on a
#: little-endian one instead of silently mangling every number.
_FLAG_LITTLE_ENDIAN = 1

#: magic, version, flags, meta_offset, meta_length, data_offset,
#: data_length, sha256 digest.
_HEADER = struct.Struct("<8sII4Q32s")

#: Column serialisation order; every item is 8 bytes wide, so columns
#: packed back to back stay 8-byte aligned for the memoryview casts.
_COLUMNS = (
    ("set_offsets", "q"),
    ("hubs", "q"),
    ("entry_offsets", "q"),
    ("weights", "d"),
    ("costs", "d"),
)


def save_flat_index(index: Any, path: str) -> int:
    """Write ``index`` in the flat (version 3) format; returns file size.

    Accepts a :class:`~repro.core.engine.QHLIndex` (labels are packed)
    or a :class:`~repro.core.flat.FlatIndex` (columns are written as
    held, preserving byte identity across save/load cycles).  Like the
    compact format, provenance and elimination shortcuts are dropped.
    """
    labels = index.labels
    compact = (
        labels.to_compact()
        if isinstance(labels, FlatLabelStore)
        else pack_labels(labels)
    )
    descriptors: list[tuple[str, str, int, int]] = []
    chunks: list[bytes] = []
    offset = 0
    for name, typecode in _COLUMNS:
        raw = getattr(compact, name).tobytes()
        descriptors.append((name, typecode, len(raw) // 8, offset))
        chunks.append(raw)
        offset += len(raw)
    data = b"".join(chunks)

    tree = index.tree
    meta_bytes = pickle.dumps(
        {
            "num_vertices": tree.num_vertices,
            "edges": list(index.network.edges()),
            "order": list(tree.order),
            "bags": {v: list(tree.bag[v]) for v in range(tree.num_vertices)},
            "columns": descriptors,
            "label_build_seconds": labels.build_seconds,
            "conditions": dict(index.pruning._conditions),
            "pruning_build_seconds": index.pruning.build_seconds,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    meta_offset = _HEADER.size
    data_offset = _align8(meta_offset + len(meta_bytes))
    digest = hashlib.sha256()
    digest.update(meta_bytes)
    digest.update(data)
    flags = _FLAG_LITTLE_ENDIAN if sys.byteorder == "little" else 0
    header = _HEADER.pack(
        FLAT_MAGIC,
        FLAT_FORMAT_VERSION,
        flags,
        meta_offset,
        len(meta_bytes),
        data_offset,
        len(data),
        digest.digest(),
    )
    padding = b"\x00" * (data_offset - meta_offset - len(meta_bytes))
    _atomic_write_bytes(path, b"".join((header, meta_bytes, padding, data)))
    return os.path.getsize(path)


def load_flat_index(
    path: str, verify_checksum: bool = True, use_mmap: bool = True
) -> "FlatIndex":
    """Load a flat index written by :func:`save_flat_index`.

    With ``use_mmap=True`` (the default) the column views are
    ``memoryview`` casts straight over the mapped file — no copy, and
    the pages are shared with forked children.  ``use_mmap=False``
    reads the file and builds mutable ``array`` columns instead (same
    answers; used by tests and corruption drills).

    Raises
    ------
    SerializationError
        On missing files, directories, foreign or truncated files,
        version/endianness mismatches, or checksum failures.
    """
    from repro.core.flat import FlatIndex
    from repro.core.pruning import PruningConditionIndex
    from repro.graph.network import RoadNetwork
    from repro.hierarchy.lca import LCAIndex
    from repro.hierarchy.tree import TreeDecomposition

    buf, backing = _open_columns_file(path, use_mmap)
    (
        magic, version, flags,
        meta_offset, meta_length, data_offset, data_length,
        stored_digest,
    ) = _HEADER.unpack_from(buf, 0)
    if magic != FLAT_MAGIC:
        raise SerializationError(f"{path!r} is not a flat repro index")
    if version != FLAT_FORMAT_VERSION:
        raise SerializationError(
            f"unsupported flat index format version {version} "
            f"(this build reads version {FLAT_FORMAT_VERSION})"
        )
    little = bool(flags & _FLAG_LITTLE_ENDIAN)
    if little != (sys.byteorder == "little"):
        raise SerializationError(
            f"{path!r} was written on a machine with different "
            "endianness; the raw columns cannot be mapped here"
        )
    total = len(buf)
    if (
        meta_offset < _HEADER.size
        or meta_offset + meta_length > total
        or data_offset < meta_offset + meta_length
        or data_offset + data_length > total
    ):
        raise SerializationError(
            f"{path!r} is truncated or has a corrupt header"
        )
    meta_view = buf[meta_offset:meta_offset + meta_length]
    data_view = buf[data_offset:data_offset + data_length]
    if verify_checksum:
        digest = hashlib.sha256()
        digest.update(meta_view)
        digest.update(data_view)
        if digest.digest() != stored_digest:
            raise SerializationError(
                f"{path!r} failed checksum verification (stored "
                f"{stored_digest.hex()[:12]}…, computed "
                f"{digest.hexdigest()[:12]}…); the file is corrupt"
            )
    try:
        meta = pickle.loads(bytes(meta_view))
    except _PICKLE_ERRORS as exc:
        raise SerializationError(
            f"{path!r} flat metadata is not readable: {exc}"
        ) from exc
    if not isinstance(meta, dict):
        raise SerializationError(f"{path!r} has malformed flat metadata")

    try:
        columns: dict[str, Any] = {}
        for name, typecode, count, offset in meta["columns"]:
            nbytes = count * 8
            if offset < 0 or offset + nbytes > data_length:
                raise SerializationError(
                    f"{path!r} column {name!r} overruns the data region"
                )
            view = data_view[offset:offset + nbytes]
            if use_mmap:
                columns[name] = view.cast(typecode)
            else:
                arr: "array[Any]" = array(typecode)
                arr.frombytes(view.tobytes())
                columns[name] = arr
        labels = FlatLabelStore(
            meta["num_vertices"],
            columns["set_offsets"],
            columns["hubs"],
            columns["entry_offsets"],
            columns["weights"],
            columns["costs"],
            backing=backing,
        )
        labels.build_seconds = meta["label_build_seconds"]
        network = RoadNetwork.from_edges(meta["num_vertices"], meta["edges"])
        tree = TreeDecomposition(
            meta["num_vertices"],
            meta["order"],
            {v: tuple(bag) for v, bag in meta["bags"].items()},
            {},
        )
        pruning = PruningConditionIndex()
        for (child, v_end), bounds in meta["conditions"].items():
            pruning.add(child, v_end, bounds)
        pruning.build_seconds = meta["pruning_build_seconds"]
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"{path!r} flat payload is incomplete: {exc}"
        ) from exc
    return FlatIndex(network, tree, labels, LCAIndex(tree), pruning)


def _open_columns_file(
    path: str, use_mmap: bool
) -> tuple[memoryview, Any]:
    """Map (or read) ``path``; returns ``(buffer, backing)``.

    ``backing`` is the ``mmap`` object to keep alive alongside any view
    into it, or ``None`` for the plain-read path.
    """
    if not os.path.exists(path):
        raise SerializationError(f"index file {path!r} does not exist")
    if os.path.isdir(path):
        raise SerializationError(
            f"{path!r} is a directory, not an index file"
        )
    with open(path, "rb") as f:
        size = os.fstat(f.fileno()).st_size
        if size < _HEADER.size:
            raise SerializationError(
                f"{path!r} is truncated: {size} bytes is smaller than "
                f"the {_HEADER.size}-byte flat header"
            )
        if use_mmap:
            mapped = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
            return memoryview(mapped), mapped
        return memoryview(f.read()), None


def _align8(offset: int) -> int:
    return (offset + 7) & ~7
