"""Index persistence.

Saves/loads a complete :class:`~repro.core.engine.QHLIndex` with a
versioned, checksummed envelope.  Skyline-entry provenance is a deep
recursive tuple structure (depth grows with path length), so
(de)serialisation temporarily raises the interpreter recursion limit —
capped at :data:`_RECURSION_LIMIT` because each pickle level also burns
C stack, and a runaway limit trades a catchable ``RecursionError`` for
a hard interpreter crash.  Provenance deeper than the cap fails with
:class:`SerializationError` pointing at the compact format (which drops
provenance and never recurses).

Crash safety: every save goes through :func:`_atomic_write_bytes` —
temp file in the destination directory, flush + ``fsync``, then
``os.replace`` — so a crash at any point leaves either the old file or
no file at the destination, never a truncated one.  Format version 2
adds a SHA-256 checksum of the pickled payload, verified on load;
version-1 files (no checksum) still load.

By default the elimination shortcuts are dropped on save: queries only
need the tree structure, labels, LCA and pruning conditions; shortcuts
are an index-construction intermediate (and label provenance keeps alive
exactly the shortcut entries it references, so path retrieval still
works).
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import random
import sys
import time
from typing import Any, Callable, Mapping

from repro.core.engine import QHLIndex
from repro.exceptions import SerializationError

MAGIC = "repro-qhl-index"
COMPACT_MAGIC = "repro-qhl-compact"
FORMAT_VERSION = 2

#: Capped recursion-limit bump for pickling provenance trees.  Each
#: pickle recursion level also consumes C stack (~hundreds of bytes), so
#: limits much past this risk a segfault instead of a RecursionError on
#: the default 8 MB stack; paths on road networks stay far below it.
_RECURSION_LIMIT = 20_000

_PICKLE_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    ValueError,
    TypeError,
    KeyError,
    RecursionError,
)


class _raised_recursion_limit:
    def __enter__(self) -> None:
        self._old = sys.getrecursionlimit()
        sys.setrecursionlimit(max(self._old, _RECURSION_LIMIT))

    def __exit__(self, *exc_info: object) -> None:
        sys.setrecursionlimit(self._old)


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _fire_fault(point: str, **ctx: object) -> None:
    """Fire a fault-injection point (inert unless a harness is active)."""
    from repro.service.faults import get_injector

    injector = get_injector()
    if injector.enabled:
        injector.fire(point, **ctx)


def _atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` crash-safely.

    The bytes land in a temp file in the destination directory, are
    flushed and fsynced, and only then renamed over ``path`` with
    ``os.replace`` (atomic on POSIX).  On any failure the temp file is
    removed; the destination keeps its previous content (or absence).
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as f:
            _fire_fault("save-index", stage="write", path=path)
            f.write(data)
            f.flush()
            _fire_fault("save-index", stage="fsync", path=path)
            os.fsync(f.fileno())
        _fire_fault("save-index", stage="replace", path=path)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.remove(tmp)
        raise
    # Make the rename itself durable (best effort; not all filesystems
    # support fsyncing a directory handle).
    with contextlib.suppress(OSError):
        dir_fd = os.open(directory or ".", os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)


def _dumps_payload(obj: object, what: str) -> bytes:
    """Pickle ``obj`` under the raised (capped) recursion limit."""
    try:
        with _raised_recursion_limit():
            return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except RecursionError as exc:
        raise SerializationError(
            f"{what} is too deeply nested to pickle even at the capped "
            f"recursion limit ({_RECURSION_LIMIT}); provenance depth "
            "grows with path length — save with save_compact_index "
            "(drops provenance) or rebuild with store_paths=False"
        ) from exc


def save_envelope(path: str, magic: str, obj: Mapping[str, object]) -> int:
    """Write any plain dict through the atomic + checksummed envelope.

    The generic primitive behind :func:`save_index` and the build
    checkpoints (:mod:`repro.resilience.checkpoint`): pickle under the
    capped recursion limit, wrap in a ``{magic, version, checksum,
    payload}`` envelope, and land it with temp-file + fsync +
    ``os.replace``.  Returns the file size in bytes.
    """
    payload = _dumps_payload(obj, f"{magic} payload")
    envelope = {
        "magic": magic,
        "version": FORMAT_VERSION,
        "checksum": _sha256(payload),
        "payload": payload,
    }
    _atomic_write_bytes(
        path, pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
    )
    return os.path.getsize(path)


def load_envelope(
    path: str, magic: str, verify_checksum: bool = True
) -> dict[str, Any]:
    """Read a dict written by :func:`save_envelope`.

    Raises
    ------
    SerializationError
        On missing files, foreign pickles, checksum mismatches, or
        version mismatches — the same contract as :func:`load_index`.
    """
    if not os.path.exists(path):
        raise SerializationError(f"file {path!r} does not exist")
    if os.path.isdir(path):
        raise SerializationError(f"{path!r} is a directory, not a file")
    try:
        with _raised_recursion_limit(), open(path, "rb") as f:
            envelope = pickle.load(f)
    except _PICKLE_ERRORS as exc:
        raise SerializationError(
            f"{path!r} is not a readable {magic} file: {exc}"
        ) from exc
    return _open_envelope(envelope, path, magic, verify_checksum, magic)


def save_index(
    index: QHLIndex, path: str, keep_shortcuts: bool = False
) -> int:
    """Serialise an index to ``path``; returns the file size in bytes.

    The write is atomic (temp file + fsync + ``os.replace``) and the
    payload carries a SHA-256 checksum verified by :func:`load_index`.

    Raises
    ------
    SerializationError
        When provenance is too deep for the capped recursion limit
        (use the compact format instead of crashing the interpreter).
    """
    shortcuts = index.tree.shortcuts
    try:
        if not keep_shortcuts:
            index.tree.shortcuts = {}
        payload = _dumps_payload({"index": index}, "index provenance")
    finally:
        index.tree.shortcuts = shortcuts
    envelope = {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "checksum": _sha256(payload),
        "payload": payload,
    }
    _atomic_write_bytes(
        path, pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
    )
    return os.path.getsize(path)


def save_compact_index(index: QHLIndex, path: str) -> int:
    """Serialise an index as gzip-compressed plain data with
    array-packed labels.

    Smaller on disk than :func:`save_index` and structurally simple:
    the payload is arrays and dicts of numbers, not a pickled object
    graph, so the format is stable across refactors of the in-memory
    classes.  Provenance (path retrieval) and elimination shortcuts are
    not kept — the trade documented in :mod:`repro.storage.compact`.
    Writes are atomic and checksummed like :func:`save_index`.
    """
    import gzip

    from repro.storage.compact import pack_labels

    tree = index.tree
    payload = pickle.dumps(
        {
            "num_vertices": tree.num_vertices,
            "edges": list(index.network.edges()),
            "order": list(tree.order),
            "bags": {v: list(tree.bag[v]) for v in range(tree.num_vertices)},
            "labels": pack_labels(index.labels),
            "label_build_seconds": index.labels.build_seconds,
            "conditions": dict(index.pruning._conditions),
            "pruning_build_seconds": index.pruning.build_seconds,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    envelope = {
        "magic": COMPACT_MAGIC,
        "version": FORMAT_VERSION,
        "checksum": _sha256(payload),
        "payload": payload,
    }
    data = gzip.compress(
        pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL),
        compresslevel=6,
    )
    _atomic_write_bytes(path, data)
    return os.path.getsize(path)


def _open_envelope(
    envelope: object,
    path: str,
    magic: str,
    verify_checksum: bool,
    kind: str,
) -> dict[str, Any]:
    """Validate an envelope and return the inner payload dict.

    Handles both format versions: v1 keeps the fields inline (no
    checksum to verify), v2 nests them as checksummed pickled bytes.
    """
    if not isinstance(envelope, dict) or envelope.get("magic") != magic:
        raise SerializationError(f"{path!r} is not a {kind} file")
    version = envelope.get("version")
    if version == 1:
        return envelope
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported {kind} format version {version} "
            f"(this build reads versions 1..{FORMAT_VERSION})"
        )
    payload = envelope.get("payload")
    if not isinstance(payload, (bytes, bytearray)):
        raise SerializationError(f"{path!r} has a malformed payload")
    if verify_checksum:
        digest = _sha256(bytes(payload))
        if digest != envelope.get("checksum"):
            raise SerializationError(
                f"{path!r} failed checksum verification (stored "
                f"{str(envelope.get('checksum'))[:12]}…, computed "
                f"{digest[:12]}…); the file is corrupt"
            )
    try:
        with _raised_recursion_limit():
            inner = pickle.loads(bytes(payload))
    except _PICKLE_ERRORS as exc:
        raise SerializationError(
            f"{path!r} payload is not readable: {exc}"
        ) from exc
    if not isinstance(inner, dict):
        raise SerializationError(f"{path!r} has a malformed payload")
    return inner


def load_index(path: str, verify_checksum: bool = True) -> QHLIndex:
    """Load an index previously written by :func:`save_index`.

    ``verify_checksum=False`` skips the SHA-256 verification of
    version-2 files (version-1 files carry no checksum).

    Raises
    ------
    SerializationError
        On missing files, directories, foreign pickles, checksum
        mismatches, or version mismatches.
    """
    if not os.path.exists(path):
        raise SerializationError(f"index file {path!r} does not exist")
    if os.path.isdir(path):
        raise SerializationError(f"{path!r} is a directory, not an index file")
    try:
        with _raised_recursion_limit(), open(path, "rb") as f:
            envelope = pickle.load(f)
    except _PICKLE_ERRORS as exc:
        raise SerializationError(
            f"{path!r} is not a readable repro index: {exc}"
        ) from exc
    inner = _open_envelope(
        envelope, path, MAGIC, verify_checksum, "repro index"
    )
    index = inner.get("index")
    if not isinstance(index, QHLIndex):
        raise SerializationError(f"{path!r} does not contain a QHLIndex")
    return index


def load_compact_index(path: str, verify_checksum: bool = True) -> QHLIndex:
    """Load an index written by :func:`save_compact_index`."""
    import gzip

    from repro.core.pruning import PruningConditionIndex
    from repro.graph.network import RoadNetwork
    from repro.hierarchy.lca import LCAIndex
    from repro.hierarchy.tree import TreeDecomposition
    from repro.storage.compact import unpack_labels

    if not os.path.exists(path):
        raise SerializationError(f"index file {path!r} does not exist")
    if os.path.isdir(path):
        raise SerializationError(f"{path!r} is a directory, not an index file")
    try:
        with gzip.open(path, "rb") as f:
            envelope = pickle.load(f)
    except (*_PICKLE_ERRORS, gzip.BadGzipFile, OSError) as exc:
        raise SerializationError(
            f"{path!r} is not a readable compact index: {exc}"
        ) from exc
    payload = _open_envelope(
        envelope, path, COMPACT_MAGIC, verify_checksum, "compact repro index"
    )
    try:
        network = RoadNetwork.from_edges(
            payload["num_vertices"], payload["edges"]
        )
        tree = TreeDecomposition(
            payload["num_vertices"],
            payload["order"],
            {v: tuple(bag) for v, bag in payload["bags"].items()},
            {},
        )
        labels = unpack_labels(payload["labels"])
        labels.build_seconds = payload["label_build_seconds"]
        pruning = PruningConditionIndex()
        for (child, v_end), bounds in payload["conditions"].items():
            pruning.add(child, v_end, bounds)
        pruning.build_seconds = payload["pruning_build_seconds"]
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"{path!r} compact payload is incomplete: {exc}"
        ) from exc
    return QHLIndex(network, tree, labels, LCAIndex(tree), pruning)


def load_index_with_retry(
    path: str,
    attempts: int = 3,
    base_delay: float = 0.05,
    max_delay: float = 1.0,
    jitter: float = 0.25,
    verify_checksum: bool = True,
    compact: bool = False,
    sleep: Callable[[float], object] = time.sleep,
    rng: random.Random | None = None,
) -> QHLIndex:
    """:func:`load_index` with bounded exponential backoff on ``OSError``.

    Transient I/O errors (NFS hiccups, slow attach of a volume) are
    retried up to ``attempts`` times with delay
    ``min(base_delay * 2**i, max_delay)`` plus up to ``jitter`` fraction
    of random extra.  :class:`SerializationError` (missing, corrupt, or
    wrong-version files) is permanent and never retried.  ``sleep`` and
    ``rng`` are injectable for deterministic tests; the ``index-load``
    fault point fires at the start of every attempt.  When a
    :class:`~repro.service.faults.FaultInjector` with an injected clock
    is active, the default ``rng`` is seeded (``random.Random(0)``) so
    chaos tests see reproducible backoff sequences; outside a fault
    harness the jitter stays nondeterministic on purpose (it exists to
    decorrelate concurrent retriers).
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    if rng is None:
        from repro.service.faults import get_injector

        injector = get_injector()
        if injector.enabled and injector.clock is not None:
            rng = random.Random(0)
        else:
            rng = random.Random()  # lint: allow=QHL003 backoff jitter is the one place nondeterminism is wanted; tests inject rng
    loader = load_compact_index if compact else load_index
    last: OSError | None = None
    for attempt in range(attempts):
        try:
            _fire_fault("index-load", path=path, attempt=attempt)
            return loader(path, verify_checksum=verify_checksum)
        except SerializationError:
            raise
        except OSError as exc:
            last = exc
            if attempt + 1 < attempts:
                delay = min(base_delay * (2 ** attempt), max_delay)
                sleep(delay * (1.0 + jitter * rng.random()))
    raise SerializationError(
        f"could not read {path!r} after {attempts} attempts: {last}"
    ) from last
