"""Index persistence.

Saves/loads a complete :class:`~repro.core.engine.QHLIndex` with a
versioned pickle envelope.  Skyline-entry provenance is a deep recursive
tuple structure (depth grows with path length), so (de)serialisation
temporarily raises the interpreter recursion limit.

By default the elimination shortcuts are dropped on save: queries only
need the tree structure, labels, LCA and pruning conditions; shortcuts
are an index-construction intermediate (and label provenance keeps alive
exactly the shortcut entries it references, so path retrieval still
works).
"""

from __future__ import annotations

import os
import pickle
import sys

from repro.core.engine import QHLIndex
from repro.exceptions import SerializationError

MAGIC = "repro-qhl-index"
FORMAT_VERSION = 1

_RECURSION_LIMIT = 1_000_000


class _raised_recursion_limit:
    def __enter__(self):
        self._old = sys.getrecursionlimit()
        sys.setrecursionlimit(max(self._old, _RECURSION_LIMIT))

    def __exit__(self, *exc_info):
        sys.setrecursionlimit(self._old)


def save_index(
    index: QHLIndex, path: str, keep_shortcuts: bool = False
) -> int:
    """Serialise an index to ``path``; returns the file size in bytes."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    shortcuts = index.tree.shortcuts
    try:
        if not keep_shortcuts:
            index.tree.shortcuts = {}
        payload = {
            "magic": MAGIC,
            "version": FORMAT_VERSION,
            "index": index,
        }
        with _raised_recursion_limit(), open(path, "wb") as f:
            pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        index.tree.shortcuts = shortcuts
    return os.path.getsize(path)


COMPACT_MAGIC = "repro-qhl-compact"


def save_compact_index(index: QHLIndex, path: str) -> int:
    """Serialise an index as gzip-compressed plain data with
    array-packed labels.

    Smaller on disk than :func:`save_index` and structurally simple:
    the payload is arrays and dicts of numbers, not a pickled object
    graph, so the format is stable across refactors of the in-memory
    classes.  Provenance (path retrieval) and elimination shortcuts are
    not kept — the trade documented in :mod:`repro.storage.compact`.
    """
    import gzip

    from repro.storage.compact import pack_labels

    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tree = index.tree
    payload = {
        "magic": COMPACT_MAGIC,
        "version": FORMAT_VERSION,
        "num_vertices": tree.num_vertices,
        "edges": list(index.network.edges()),
        "order": list(tree.order),
        "bags": {v: list(tree.bag[v]) for v in range(tree.num_vertices)},
        "labels": pack_labels(index.labels),
        "label_build_seconds": index.labels.build_seconds,
        "conditions": dict(index.pruning._conditions),
        "pruning_build_seconds": index.pruning.build_seconds,
    }
    with gzip.open(path, "wb", compresslevel=6) as f:
        pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)
    return os.path.getsize(path)


def load_compact_index(path: str) -> QHLIndex:
    """Load an index written by :func:`save_compact_index`."""
    import gzip

    from repro.core.pruning import PruningConditionIndex
    from repro.graph.network import RoadNetwork
    from repro.hierarchy.lca import LCAIndex
    from repro.hierarchy.tree import TreeDecomposition
    from repro.storage.compact import unpack_labels

    if not os.path.exists(path):
        raise SerializationError(f"index file {path!r} does not exist")
    try:
        with gzip.open(path, "rb") as f:
            payload = pickle.load(f)
    except (pickle.UnpicklingError, EOFError, AttributeError,
            gzip.BadGzipFile, OSError) as exc:
        raise SerializationError(
            f"{path!r} is not a readable compact index: {exc}"
        ) from exc
    if not isinstance(payload, dict) or payload.get("magic") != COMPACT_MAGIC:
        raise SerializationError(f"{path!r} is not a compact repro index")
    if payload.get("version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported compact index version {payload.get('version')}"
        )

    network = RoadNetwork.from_edges(
        payload["num_vertices"], payload["edges"]
    )
    tree = TreeDecomposition(
        payload["num_vertices"],
        payload["order"],
        {v: tuple(bag) for v, bag in payload["bags"].items()},
        {},
    )
    labels = unpack_labels(payload["labels"])
    labels.build_seconds = payload["label_build_seconds"]
    pruning = PruningConditionIndex()
    for (child, v_end), bounds in payload["conditions"].items():
        pruning.add(child, v_end, bounds)
    pruning.build_seconds = payload["pruning_build_seconds"]
    return QHLIndex(network, tree, labels, LCAIndex(tree), pruning)


def load_index(path: str) -> QHLIndex:
    """Load an index previously written by :func:`save_index`.

    Raises
    ------
    SerializationError
        On missing files, foreign pickles, or version mismatches.
    """
    if not os.path.exists(path):
        raise SerializationError(f"index file {path!r} does not exist")
    try:
        with _raised_recursion_limit(), open(path, "rb") as f:
            payload = pickle.load(f)
    except (pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise SerializationError(
            f"{path!r} is not a readable repro index: {exc}"
        ) from exc
    if not isinstance(payload, dict) or payload.get("magic") != MAGIC:
        raise SerializationError(f"{path!r} is not a repro index file")
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported index format version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    index = payload["index"]
    if not isinstance(index, QHLIndex):
        raise SerializationError(f"{path!r} does not contain a QHLIndex")
    return index
