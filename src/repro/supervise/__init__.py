"""Self-healing worker supervision (spawn / heartbeat / restart).

The process substrate the ROADMAP's sharded index server will run on:
:class:`Supervisor` keeps named forked workers alive (heartbeat stall
detection, jittered-backoff restarts behind a circuit breaker, graceful
drain), :class:`SupervisedPool` layers task leases on top so work lost
to a dead worker is requeued — bounded retries, then poison-task
quarantine — and :mod:`~repro.supervise.incidents` is the black box
recording every death, restart, and requeue.
"""

from repro.supervise.incidents import (
    INCIDENT_KINDS,
    Incident,
    IncidentLog,
    NULL_INCIDENT_LOG,
    NullIncidentLog,
    get_incident_log,
    load_incidents,
    set_incident_log,
    summarize,
    use_incident_log,
)
from repro.supervise.pool import (
    FAILURE_REASONS,
    PoolFailure,
    PoolReport,
    SupervisedPool,
)
from repro.supervise.supervisor import (
    DeathEvent,
    SupervisionConfig,
    Supervisor,
    annotate_succession,
)

__all__ = [
    "INCIDENT_KINDS",
    "Incident",
    "IncidentLog",
    "NULL_INCIDENT_LOG",
    "NullIncidentLog",
    "get_incident_log",
    "load_incidents",
    "set_incident_log",
    "summarize",
    "use_incident_log",
    "FAILURE_REASONS",
    "PoolFailure",
    "PoolReport",
    "SupervisedPool",
    "DeathEvent",
    "SupervisionConfig",
    "Supervisor",
    "annotate_succession",
]
