"""Supervision incident records: the black box of the worker fleet.

Every noteworthy lifecycle event of a supervised worker — spawn,
death, heartbeat stall, restart, breaker trip, task requeue, poison
quarantine — leaves one :class:`Incident`.  Incidents serve three
audiences at once:

* the owning :class:`~repro.supervise.supervisor.Supervisor` keeps its
  own bounded log (``supervisor.incidents``) so a pool run can report
  exactly what happened to it;
* a process-wide *sink* (installed with :func:`use_incident_log`, inert
  by default like the metrics registry and the flight recorder)
  accumulates incidents across supervisors so the CLI's
  ``--incident-out`` captures a whole ``bench``/``build`` run;
* each incident is bridged into the flight recorder (when one is live)
  as a ``supervisor-<kind>`` record, so worker deaths show up in the
  same forensic ring as the queries they interrupted.

Incidents serialise to JSON-lines (:meth:`IncidentLog.dump` /
:func:`load_incidents`), which is what ``repro-qhl supervise status``
reads.
"""

from __future__ import annotations

import collections
import contextlib
import itertools
import json
from dataclasses import asdict, dataclass, fields
from typing import Iterator

#: Incident kinds a supervisor emits, in rough lifecycle order,
#: followed by the live-update lifecycle kinds the
#: :class:`~repro.dynamic.epochs.EpochManager` records through the
#: same sink.
INCIDENT_KINDS: tuple[str, ...] = (
    "spawn",
    "restart",
    "death",
    "stall",
    "breaker-open",
    "requeue",
    "quarantine",
    "stop",
    "update-journal-torn",
    "update-rollback",
    "update-quarantined",
)


@dataclass(frozen=True)
class Incident:
    """One worker-lifecycle event."""

    seq: int
    kind: str
    worker: str
    pid: int | None
    detail: str
    trace_id: str | None = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Incident":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class IncidentLog:
    """A bounded, append-only incident buffer."""

    enabled = True

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._records: collections.deque[Incident] = collections.deque(
            maxlen=capacity
        )
        self._seq = itertools.count(1)
        self.total = 0

    def new(
        self,
        kind: str,
        worker: str,
        pid: int | None,
        detail: str,
        trace_id: str | None = None,
    ) -> Incident:
        """Mint, store, and return one incident."""
        incident = Incident(
            seq=next(self._seq),
            kind=kind,
            worker=worker,
            pid=pid,
            detail=detail,
            trace_id=trace_id,
        )
        self.append(incident)
        return incident

    def append(self, incident: Incident) -> None:
        self._records.append(incident)
        self.total += 1

    def records(self) -> list[Incident]:
        """The log's contents, oldest first."""
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()

    def dump(self, path: str) -> int:
        """Write the log as JSON-lines to ``path``; returns the count."""
        entries = self.records()
        with open(path, "w", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(
                    json.dumps(entry.to_dict(), sort_keys=True) + "\n"
                )
        return len(entries)


class NullIncidentLog:
    """The disabled default sink: every method is a cheap no-op."""

    enabled = False
    capacity = 0
    total = 0

    def new(self, kind, worker, pid, detail, trace_id=None) -> None:
        return None

    def append(self, incident: Incident) -> None:
        pass

    def records(self) -> list:
        return []

    def clear(self) -> None:
        pass

    def dump(self, path: str) -> int:
        return 0


NULL_INCIDENT_LOG = NullIncidentLog()

_active_log: IncidentLog | NullIncidentLog = NULL_INCIDENT_LOG


def get_incident_log() -> IncidentLog | NullIncidentLog:
    """The process-wide incident sink (the inert one by default)."""
    return _active_log


def set_incident_log(
    log: IncidentLog | NullIncidentLog,
) -> IncidentLog | NullIncidentLog:
    """Install ``log`` as the active sink; returns the previous one."""
    global _active_log
    previous = _active_log
    _active_log = log
    return previous


@contextlib.contextmanager
def use_incident_log(
    log: IncidentLog | NullIncidentLog,
) -> Iterator[IncidentLog | NullIncidentLog]:
    """Scoped :func:`set_incident_log`; restores the previous sink."""
    previous = set_incident_log(log)
    try:
        yield log
    finally:
        set_incident_log(previous)


def load_incidents(path: str) -> list[Incident]:
    """Read an :meth:`IncidentLog.dump` file back into records."""
    entries: list[Incident] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                entries.append(Incident.from_dict(json.loads(line)))
    return entries


def summarize(incidents: list[Incident]) -> dict:
    """Per-worker tallies for the ``supervise status`` CLI.

    Returns ``{"workers": {name: {kind: count, ...}}, "totals": {...}}``
    with every kind from :data:`INCIDENT_KINDS` present (zero-filled),
    so callers can format fixed-width tables without key checks.
    """
    workers: dict[str, dict[str, int]] = {}
    totals = {kind: 0 for kind in INCIDENT_KINDS}
    for incident in incidents:
        row = workers.setdefault(
            incident.worker, {kind: 0 for kind in INCIDENT_KINDS}
        )
        if incident.kind not in row:
            row[incident.kind] = 0
        if incident.kind not in totals:
            totals[incident.kind] = 0
        row[incident.kind] += 1
        totals[incident.kind] += 1
    return {"workers": workers, "totals": totals}
