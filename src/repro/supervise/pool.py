"""Supervised task pool: leases, lost-work requeue, poison quarantine.

:class:`SupervisedPool` drives a :class:`~repro.supervise.supervisor.
Supervisor` fleet through a list of task payloads and guarantees that a
worker death loses **at most its one leased task**, which is requeued
and retried on a respawned worker instead of surfacing as a failure:

* **Leases** — each worker holds at most one in-flight task, so "which
  work did this death lose?" always has a single, exact answer.
* **Requeue** — a task whose worker died goes back to the *front* of
  the queue with its attempt count bumped.  If the task is splittable
  (a multi-query chunk) the first death splits it into singleton tasks
  so a single poisonous element cannot take healthy neighbours down
  with it on every retry.
* **Quarantine** — a task that has crashed its worker more than
  ``max_task_retries`` times is poison: it is pulled out of rotation as
  a ``quarantined`` failure (with an incident + metric) and the worker
  is *forgiven* — its restart breaker resets, because the root cause
  was the task, not the process — so the rest of the batch completes
  even on a one-worker fleet.  No crash-loop.
* **Exhaustion** — if the whole fleet is down and every restart breaker
  refuses a respawn, remaining tasks are returned as ``exhausted``
  failures rather than spinning forever; a real-time watchdog backstops
  the loop against frozen injected clocks.

Results are deterministic-by-construction: tasks carry stable ids, the
pool only *schedules* — it never reorders or merges result values — so
callers (batch execution, the parallel label build) reassemble output
in task order and stay bit-identical to their sequential paths no
matter which workers died along the way.
"""

from __future__ import annotations

import collections
import time
from typing import Any, Callable, NamedTuple

from repro.observability.metrics import get_registry
from repro.observability.propagation import WorkerSpool
from repro.supervise.supervisor import (
    Entrypoint,
    SupervisionConfig,
    Supervisor,
)

#: ``reason`` values a :class:`PoolFailure` can carry.
FAILURE_REASONS = ("task-error", "quarantined", "exhausted")

#: Hard real-time ceiling on a pool iteration making zero progress with
#: zero live workers — a backstop against frozen injected clocks, not a
#: tunable (normal respawns are bounded by ``backoff_max_s``).
_DEADLOCK_GRACE_S = 30.0


class PoolFailure(NamedTuple):
    """One task the pool could not complete."""

    task_id: int
    payload: Any
    attempts: int
    reason: str  # one of FAILURE_REASONS
    error: str
    message: str


class PoolReport(NamedTuple):
    """Everything :meth:`SupervisedPool.run` produced."""

    results: dict[int, Any]  # task_id -> entrypoint return value
    failures: list[PoolFailure]
    payloads: dict[int, Any]  # task_id -> payload (incl. split children)
    requeues: int
    splits: int

    @property
    def quarantined(self) -> list[PoolFailure]:
        return [f for f in self.failures if f.reason == "quarantined"]

    @property
    def exhausted(self) -> list[PoolFailure]:
        return [f for f in self.failures if f.reason == "exhausted"]


class _Task:
    __slots__ = ("task_id", "payload", "attempts", "splittable")

    def __init__(
        self, task_id: int, payload: Any, attempts: int, splittable: bool
    ) -> None:
        self.task_id = task_id
        self.payload = payload
        self.attempts = attempts
        self.splittable = splittable


class SupervisedPool:
    """Run payloads through supervised workers with lost-work requeue.

    ``split(payload)`` (optional) decomposes a multi-element payload
    into independent sub-payloads; it is invoked the first time that
    payload's worker dies.  Returning a single-element list marks the
    payload unsplittable and it is retried whole.
    """

    def __init__(
        self,
        entrypoint: Entrypoint,
        workers: int,
        config: SupervisionConfig | None = None,
        spool: WorkerSpool | None = None,
        label: str = "supervise.worker-chunk",
        split: Callable[[Any], list[Any]] | None = None,
        trace_id: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._split = split
        self.supervisor = Supervisor(
            entrypoint,
            config=config,
            spool=spool,
            label=label,
            trace_id=trace_id,
        )
        for index in range(workers):
            self.supervisor.add_worker(f"w{index}")

    def run(self, payloads: list[Any]) -> PoolReport:
        """Execute every payload; returns results + failure taxonomy.

        Workers are spawned on entry and fully stopped (drain →
        SIGTERM → SIGKILL) before this returns, even on error.
        """
        supervisor = self.supervisor
        config = supervisor.config
        next_id = len(payloads)
        pending: collections.deque[_Task] = collections.deque(
            _Task(i, payload, 0, self._split is not None)
            for i, payload in enumerate(payloads)
        )
        tasks: dict[int, _Task] = {t.task_id: t for t in pending}
        leases: dict[str, _Task] = {}
        results: dict[int, Any] = {}
        failures: list[PoolFailure] = []
        requeues = 0
        splits = 0
        registry = get_registry()
        last_progress = time.monotonic()
        supervisor.start()
        try:
            while pending or leases:
                progressed = False
                # 1) Harvest completed results *before* looking for
                # deaths, so a worker that finished its task and then
                # died does not get that task spuriously requeued.
                for task_id, worker, status, value in supervisor.harvest():
                    task = tasks.get(task_id)
                    if task is None or task_id in results:
                        continue
                    progressed = True
                    lease = leases.get(worker)
                    if lease is not None and lease.task_id == task_id:
                        del leases[worker]
                    if worker in supervisor.workers:
                        supervisor.note_success(worker)
                    if status == "ok":
                        results[task_id] = value
                    else:
                        error, message = value
                        failures.append(
                            PoolFailure(
                                task_id, task.payload, task.attempts + 1,
                                "task-error", error, message,
                            )
                        )
                # 2) Detect deaths and requeue each dead worker's lease.
                for death in supervisor.poll():
                    progressed = True
                    task = leases.pop(death.worker, None)
                    if task is None:
                        continue
                    task.attempts += 1
                    if task.attempts > config.max_task_retries:
                        if registry.enabled:
                            registry.counter(
                                "supervisor_quarantined_total",
                                help="poison tasks pulled from rotation",
                            ).inc()
                        supervisor.incident(
                            "quarantine", death.worker, death.pid,
                            f"task {task.task_id} crashed its worker "
                            f"{task.attempts} times; quarantined",
                        )
                        failures.append(
                            PoolFailure(
                                task.task_id, task.payload, task.attempts,
                                "quarantined",
                                "TaskQuarantinedError",
                                f"crashed worker {death.worker} on "
                                f"attempt {task.attempts} "
                                f"({death.reason}): {death.detail}",
                            )
                        )
                        # The task was the root cause, not the worker:
                        # forgive it so its respawn is not held hostage
                        # to the poison task's death count.
                        supervisor.forgive(death.worker)
                    elif (
                        task.splittable
                        and self._split is not None
                        and len(parts := self._split(task.payload)) > 1
                    ):
                        splits += 1
                        children: list[_Task] = []
                        for part in parts:
                            child = _Task(
                                next_id, part, task.attempts, False
                            )
                            next_id += 1
                            tasks[child.task_id] = child
                            children.append(child)
                        pending.extendleft(reversed(children))
                        requeues += 1
                        if registry.enabled:
                            registry.counter(
                                "supervisor_requeues_total",
                                help="tasks requeued after a worker death",
                            ).inc()
                        supervisor.incident(
                            "requeue", death.worker, death.pid,
                            f"task {task.task_id} split into "
                            f"{len(children)} singletons after "
                            f"{death.reason}",
                        )
                    else:
                        task.splittable = False
                        pending.appendleft(task)
                        requeues += 1
                        if registry.enabled:
                            registry.counter(
                                "supervisor_requeues_total",
                                help="tasks requeued after a worker death",
                            ).inc()
                        supervisor.incident(
                            "requeue", death.worker, death.pid,
                            f"task {task.task_id} requeued "
                            f"(attempt {task.attempts + 1}) after "
                            f"{death.reason}",
                        )
                # 3) Dispatch: one lease per idle, live worker.
                for worker in supervisor.idle_alive_workers(set(leases)):
                    if not pending:
                        break
                    task = pending.popleft()
                    leases[worker] = task
                    supervisor.submit(worker, task.task_id, task.payload)
                    progressed = True
                if not pending and not leases:
                    break
                now = time.monotonic()
                if progressed:
                    last_progress = now
                fleet_down = not supervisor.idle_alive_workers(set())
                if (not supervisor.can_make_progress()) or (
                    fleet_down and not leases
                    and now - last_progress > _DEADLOCK_GRACE_S
                ):
                    for task in list(pending) + list(leases.values()):
                        failures.append(
                            PoolFailure(
                                task.task_id, task.payload, task.attempts,
                                "exhausted",
                                "WorkerRestartExhaustedError",
                                "no live worker and every restart "
                                "breaker refused a respawn",
                            )
                        )
                    break
                time.sleep(config.poll_interval_s)
        finally:
            supervisor.stop()
        return PoolReport(
            results,
            failures,
            {task_id: task.payload for task_id, task in tasks.items()},
            requeues,
            splits,
        )
